//! End-to-end integration: the full paper pipeline on a scaled-down r1,
//! asserting the qualitative results of §5 across crate boundaries.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{fig4, fig6, run_pipeline, DEFAULT_STRENGTHS};
use gcr_workloads::{Benchmark, TsayBenchmark, Workload, WorkloadParams};

fn quick_params() -> WorkloadParams {
    WorkloadParams {
        stream_len: 5_000,
        ..WorkloadParams::default()
    }
}

/// Figure 3's ordering on the real r1 benchmark: full gating loses to the
/// buffered baseline (star routing overhead), gate reduction wins by a
/// wide margin, and area overhead survives reduction.
#[test]
fn fig3_ordering_on_r1() {
    let tech = Technology::default();
    let w = Workload::generate(TsayBenchmark::R1, &quick_params()).unwrap();
    let r = run_pipeline(&w, &tech, DEFAULT_STRENGTHS).unwrap();

    assert!(
        r.gated.total_switched_cap > r.buffered.total_switched_cap,
        "fully gated {} must exceed buffered {}",
        r.gated.total_switched_cap,
        r.buffered.total_switched_cap
    );
    let ratio = r.reduced.total_switched_cap / r.buffered.total_switched_cap;
    assert!(
        ratio < 0.85,
        "gate reduction should save >15% over buffered, got ratio {ratio}"
    );
    assert!(
        ratio > 0.4,
        "savings bounded by the ~40% average activity, got ratio {ratio}"
    );
    // Area ordering: buffered < reduced < fully gated.
    assert!(r.buffered.total_area < r.reduced.total_area);
    assert!(r.reduced.total_area < r.gated.total_area);
    // A majority of gates lose their control at the optimum.
    assert!(r.reduction_fraction > 0.4, "got {}", r.reduction_fraction);
}

/// Every tree the pipeline produces is zero-skew under the independent
/// Elmore oracle.
#[test]
fn all_pipeline_trees_are_zero_skew() {
    let tech = Technology::default();
    let bench = Benchmark::uniform(64, 20_000.0, 3);
    let w = Workload::for_benchmark(bench, &quick_params()).unwrap();
    let r = run_pipeline(&w, &tech, &[0.2, 0.5]).unwrap();
    for (name, report) in [
        ("buffered", &r.buffered),
        ("gated", &r.gated),
        ("reduced", &r.reduced),
    ] {
        assert!(
            report.skew <= 1e-9 * report.delay.max(1.0),
            "{name}: skew {} vs delay {}",
            report.skew,
            report.delay
        );
    }
}

/// Figure 4's trend on real workloads: the gated advantage decays
/// monotonically (within noise) as average module activity rises.
#[test]
fn fig4_trend_holds() {
    let tech = Technology::default();
    let rows = fig4(
        &[0.15, 0.45, 0.8],
        TsayBenchmark::R1,
        &quick_params(),
        &tech,
    )
    .unwrap();
    let ratios: Vec<f64> = rows.iter().map(|r| r.gate_reduced / r.buffered).collect();
    assert!(
        ratios[0] < ratios[1] && ratios[1] < ratios[2],
        "advantage must decay with activity: {ratios:?}"
    );
    // Near the paper's floor at low activity.
    assert!(ratios[0] < 0.5, "low-activity ratio {}", ratios[0]);
}

/// §6 on a routed benchmark: distributing the controller monotonically
/// shrinks star wiring, control area, and W(S), leaving W(T) untouched.
#[test]
fn fig6_distribution_monotone() {
    let tech = Technology::default();
    let rows = fig6(&[0, 1, 2], &[TsayBenchmark::R1], &quick_params(), &tech).unwrap();
    for pair in rows.windows(2) {
        assert!(pair[1].control_wire_length < pair[0].control_wire_length);
        assert!(pair[1].control_area < pair[0].control_area);
        assert!(pair[1].control_switched_cap <= pair[0].control_switched_cap + 1e-9);
    }
    // k=16 must at least halve the centralized star wiring.
    assert!(rows[2].control_wire_length < rows[0].control_wire_length / 2.0);
}

/// The whole flow is deterministic: same seeds, same numbers.
#[test]
fn pipeline_is_deterministic() {
    let tech = Technology::default();
    let run = || {
        let w = Workload::generate(TsayBenchmark::R1, &quick_params()).unwrap();
        let r = run_pipeline(&w, &tech, &[0.2]).unwrap();
        (
            r.buffered.total_switched_cap,
            r.gated.total_switched_cap,
            r.reduced.total_switched_cap,
        )
    };
    assert_eq!(run(), run());
}

/// The static verifier (gcr-verify) accepts every design point of the
/// flow: the routed gated tree with its full activity context and the
/// buffered baseline. Zero error-severity diagnostics across all passes.
#[test]
fn verifier_oracle_accepts_all_flow_designs() {
    use gcr_core::{route_gated, DeviceRole, RouterConfig};
    use gcr_cts::build_buffered_tree;
    use gcr_verify::{Verifier, VerifyInput};

    let tech = Technology::default();
    let bench = Benchmark::uniform(48, 20_000.0, 9);
    let w = Workload::for_benchmark(bench, &quick_params()).unwrap();
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let verifier = Verifier::with_default_lints();

    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config).unwrap();
    let report = verifier.run(
        &VerifyInput::new(&routing.tree, &tech)
            .with_die(w.benchmark.die)
            .with_tables(&w.tables)
            .with_node_stats(&routing.node_stats)
            .with_controller(config.controller()),
    );
    assert!(!report.has_errors(), "gated:\n{}", report.render_text());

    let buffered = build_buffered_tree(&tech, &w.benchmark.sinks, config.source()).unwrap();
    let report = verifier.run(
        &VerifyInput::new(&buffered, &tech)
            .with_die(w.benchmark.die)
            .with_role(DeviceRole::Buffer),
    );
    assert!(!report.has_errors(), "buffered:\n{}", report.render_text());
}
