//! Parity between the scalar evaluator and the per-depth breakdown:
//! summing `evaluate_breakdown` rows must reproduce the clock and control
//! switched capacitance of `evaluate_with_mask` for the **same mask** —
//! on the Tsay benchmarks r1–r3 and on randomized trees and masks.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{evaluate_breakdown, evaluate_with_mask, route_gated, GatedRouting, RouterConfig};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};
use proptest::prelude::*;

/// Relative tolerance: the breakdown must reproduce the totals to
/// floating-point accumulation noise, nothing more.
const TOL: f64 = 1e-9;

/// Asserts the breakdown rows sum to the masked totals for one mask.
fn assert_breakdown_sums_to_total(
    routing: &GatedRouting,
    config: &RouterConfig,
    controlled: &[bool],
    label: &str,
) {
    let report = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        config.tech(),
        controlled,
    );
    let breakdown = evaluate_breakdown(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        config.tech(),
        controlled,
    );
    let clock_sum: f64 = breakdown.iter().map(|l| l.clock_switched_cap).sum();
    let control_sum: f64 = breakdown.iter().map(|l| l.control_switched_cap).sum();
    let nodes: usize = breakdown.iter().map(|l| l.nodes).sum();
    assert_eq!(nodes, routing.tree.len(), "{label}: breakdown misses nodes");
    let clock_tol = TOL * report.clock_switched_cap.abs().max(1.0);
    assert!(
        (clock_sum - report.clock_switched_cap).abs() <= clock_tol,
        "{label}: clock breakdown sum {clock_sum} != total {}",
        report.clock_switched_cap
    );
    let control_tol = TOL * report.control_switched_cap.abs().max(1.0);
    assert!(
        (control_sum - report.control_switched_cap).abs() <= control_tol,
        "{label}: control breakdown sum {control_sum} != total {}",
        report.control_switched_cap
    );
    let total_tol = TOL * report.total_switched_cap.abs().max(1.0);
    assert!(
        (clock_sum + control_sum - report.total_switched_cap).abs() <= total_tol,
        "{label}: breakdown total diverges from W"
    );
}

/// Exercises all-gated, ungated, and two striped masks on one routing.
fn check_masks(routing: &GatedRouting, config: &RouterConfig, label: &str) {
    let n = routing.tree.len();
    let masks: [Vec<bool>; 4] = [
        vec![true; n],
        vec![false; n],
        (0..n).map(|i| i % 2 == 0).collect(),
        (0..n).map(|i| i % 3 != 0).collect(),
    ];
    for (m, mask) in masks.iter().enumerate() {
        assert_breakdown_sums_to_total(routing, config, mask, &format!("{label} mask {m}"));
    }
}

#[test]
fn breakdown_matches_masked_totals_on_r1_r2_r3() {
    let params = WorkloadParams::smoke();
    for which in [TsayBenchmark::R1, TsayBenchmark::R2, TsayBenchmark::R3] {
        let workload = Workload::generate(which, &params).unwrap();
        let config = RouterConfig::new(Technology::default(), workload.benchmark.die);
        let routing = route_gated(&workload.benchmark.sinks, &workload.tables, &config).unwrap();
        check_masks(&routing, &config, which.name());
    }
}

const SIDE: f64 = 30_000.0;

fn tables_for(num_sinks: usize, seed: u64) -> ActivityTables {
    let model = CpuModel::builder(num_sinks)
        .instructions(6)
        .seed(seed)
        .build()
        .unwrap();
    let stream = model.generate_stream(500);
    ActivityTables::scan(model.rtl(), &stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized trees and random masks keep the parity.
    #[test]
    fn breakdown_matches_masked_totals_on_random_trees(
        raw in prop::collection::vec((0.0..SIDE, 0.0..SIDE, 0.01..0.2f64), 2..40),
        seed in 1u64..500,
        mask_seed in 0u64..64,
    ) {
        let sinks: Vec<Sink> = raw
            .into_iter()
            .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
            .collect();
        let tables = tables_for(sinks.len(), seed);
        let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
        let config = RouterConfig::new(Technology::default(), die);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        check_masks(&routing, &config, "random");
        // One pseudo-random mask on top of the striped ones.
        let mask: Vec<bool> = (0..routing.tree.len())
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 63 == mask_seed % 2)
            .collect();
        assert_breakdown_sums_to_total(&routing, &config, &mask, "random mask");
    }
}
