//! Property tests for the incremental ECO engine: on the reference
//! benchmarks (r1–r3) and random edit streams, every incremental
//! re-route must pass the from-scratch oracle (`gcr_verify::check_eco`)
//! — scoped verification over the dirty-node set, bit-identity with the
//! same-topology rebuild, the ε quality contract against a full
//! re-route — **and** verify clean under an unrestricted Full-scope run
//! of the whole lint deck. Activity-only streams must be pure replays
//! that keep the topology bit-identical. See `docs/algorithms.md`
//! §Incremental ECO for the contract these tests pin down.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The offline proptest stub expands `proptest!` by token munching; two
// stream-driving properties in one block run past the default limit.
#![recursion_limit = "256"]

use gcr_core::{route_gated_eco, route_gated_mapped, GatedRouting, RouterConfig};
use gcr_cts::{EcoScratch, Sink};
use gcr_rctree::Technology;
use gcr_verify::{check_eco, Verifier, VerifyInput, DEFAULT_QUALITY_EPS};
use gcr_workloads::{
    generate_eco_stream, EcoStreamParams, TsayBenchmark, Workload, WorkloadParams,
};
use proptest::prelude::*;

const BENCHES: [TsayBenchmark; 3] = [TsayBenchmark::R1, TsayBenchmark::R2, TsayBenchmark::R3];

/// Routes `which` from scratch and returns the routing plus the design
/// lists and routing context the ECO stream evolves.
fn routed(which: TsayBenchmark) -> (GatedRouting, Vec<Sink>, Vec<usize>, Workload, RouterConfig) {
    let workload = Workload::generate(which, &WorkloadParams::smoke()).unwrap();
    let config = RouterConfig::new(Technology::default(), workload.benchmark.die);
    let sinks = workload.benchmark.sinks.clone();
    let module_of = workload.module_of();
    let routing = route_gated_mapped(&sinks, &module_of, &workload.tables, &config).unwrap();
    (routing, sinks, module_of, workload, config)
}

/// Full-scope verifier run (no dirty-set restriction) with complete
/// activity context; panics with the rendered report on any error.
fn verify_full(routing: &GatedRouting, workload: &Workload, config: &RouterConfig) {
    let report = Verifier::with_default_lints().run(
        &VerifyInput::new(&routing.tree, config.tech())
            .with_die(config.die())
            .with_tables(&workload.tables)
            .with_node_stats(&routing.node_stats)
            .with_controller(config.controller()),
    );
    assert!(!report.has_errors(), "{}", report.render_text());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random mixed edit streams on r1–r3: after every batch the
    /// incremental result passes the from-scratch oracle and a
    /// Full-scope verifier run.
    #[test]
    fn random_edit_streams_verify_and_match_the_oracle(
        bench in 0..3usize,
        seed in 0..10_000u64,
        batches in 1..4usize,
        batch_size in 1..3usize,
    ) {
        let (mut routing, mut sinks, mut module_of, workload, config) = routed(BENCHES[bench]);
        let params = EcoStreamParams {
            seed,
            ..EcoStreamParams::default().with_batches(batches, batch_size)
        };
        let num_modules = workload.tables.rtl().num_modules();
        let stream = generate_eco_stream(&sinks, config.die(), num_modules, &params);
        let mut scratch = EcoScratch::new();
        for batch in &stream {
            let eco = route_gated_eco(
                &routing,
                &sinks,
                &module_of,
                batch,
                &workload.tables,
                &config,
                &mut scratch,
            )
            .unwrap();
            let report =
                check_eco(&routing, &eco, &workload.tables, &config, DEFAULT_QUALITY_EPS).unwrap();
            prop_assert!(
                report.passed(),
                "oracle mismatch on {:?} (quality {:.4}): {:?}",
                batch,
                report.quality_ratio,
                report.failures
            );
            verify_full(&eco.routing, &workload, &config);
            routing = eco.routing;
            sinks = eco.sinks;
            module_of = eco.module_of;
        }
    }

    /// Activity-only streams are pure replays: the topology survives
    /// every batch bit-identically and the oracle's bit-identity
    /// contract (not just the ε bound) holds.
    #[test]
    fn activity_only_streams_are_pure_replays(
        bench in 0..2usize,
        seed in 0..10_000u64,
    ) {
        let (routing, sinks, module_of, workload, config) = routed(BENCHES[bench]);
        let params = EcoStreamParams {
            batches: 3,
            batch_size: 1,
            move_weight: 0,
            add_weight: 0,
            remove_weight: 0,
            swap_weight: 1,
            seed,
        };
        let num_modules = workload.tables.rtl().num_modules();
        let stream = generate_eco_stream(&sinks, config.die(), num_modules, &params);
        let mut scratch = EcoScratch::new();
        let mut current = routing;
        for batch in &stream {
            let eco = route_gated_eco(
                &current,
                &sinks,
                &module_of,
                batch,
                &workload.tables,
                &config,
                &mut scratch,
            )
            .unwrap();
            prop_assert!(eco.outcome.pure_replay);
            prop_assert_eq!(&eco.routing.topology, &current.topology);
            let report =
                check_eco(&current, &eco, &workload.tables, &config, DEFAULT_QUALITY_EPS).unwrap();
            prop_assert!(report.passed(), "{:?}", report.failures);
            prop_assert!(report.pure_replay);
            current = eco.routing;
        }
    }
}

/// A long deterministic mixed stream on r1 — the example scenario as a
/// test: every batch verifies, and the design lists stay consistent
/// (sink count tracks adds/removes, modules stay in range).
#[test]
fn long_mixed_stream_on_r1_stays_verified() {
    let (mut routing, mut sinks, mut module_of, workload, config) = routed(TsayBenchmark::R1);
    let num_modules = workload.tables.rtl().num_modules();
    let params = EcoStreamParams::default().with_batches(8, 2);
    let stream = generate_eco_stream(&sinks, config.die(), num_modules, &params);
    let mut scratch = EcoScratch::new();
    for batch in &stream {
        let eco = route_gated_eco(
            &routing,
            &sinks,
            &module_of,
            batch,
            &workload.tables,
            &config,
            &mut scratch,
        )
        .unwrap();
        let report = check_eco(
            &routing,
            &eco,
            &workload.tables,
            &config,
            DEFAULT_QUALITY_EPS,
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(eco.routing.tree.num_sinks(), eco.sinks.len());
        assert_eq!(eco.module_of.len(), eco.sinks.len());
        assert!(eco.module_of.iter().all(|&m| m < num_modules));
        routing = eco.routing;
        sinks = eco.sinks;
        module_of = eco.module_of;
    }
}
