//! Property tests for the hierarchical coarsening engine: the region
//! decomposition must be a deterministic partition of the sink set, the
//! coarsened parallel route must produce decision logs that are
//! bit-identical across worker-thread counts (the contract the
//! `gcr-verify audit` subcommand enforces on the scale benchmarks), and
//! the routed result must pass the full `gcr-verify` lint deck with
//! complete activity context.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{gated_region_factory, GatedObjective, RouterConfig};
use gcr_cts::{
    canonical_decision_log, partition_regions, run_greedy_coarsened, CoarsenParams, CoarsenScratch,
    GreedyParams, MergeDecision, Sink, Topology,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_verify::{Verifier, VerifyInput};
use proptest::prelude::*;

const SIDE: f64 = 40_000.0;

fn sinks_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE, 0.005..0.3f64), min..max).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
            .collect()
    })
}

/// A small activity model with one module per sink, deterministic per
/// seed (same shape as the flat-engine property tests).
fn tables_for(num_sinks: usize, seed: u64) -> ActivityTables {
    let model = CpuModel::builder(num_sinks)
        .instructions(8)
        .seed(seed)
        .build()
        .unwrap();
    let stream = model.generate_stream(600);
    ActivityTables::scan(model.rtl(), &stream)
}

/// Runs the coarsened engine at `threads` workers over the Equation-3
/// objective, returning the topology, the decision log, and the fully
/// merged objective for downstream verification.
fn coarsened_route<'a>(
    sinks: &'a [Sink],
    module_of: &'a [usize],
    tables: &'a ActivityTables,
    config: &'a RouterConfig,
    target_region_size: usize,
    threads: usize,
) -> (Topology, Vec<MergeDecision>, GatedObjective<'a>) {
    let mut objective =
        GatedObjective::new(config.tech(), config.controller(), tables, sinks, module_of);
    let factory =
        gated_region_factory(config.tech(), config.controller(), tables, sinks, module_of);
    let params = CoarsenParams {
        greedy: GreedyParams {
            threads: Some(threads),
            log_decisions: true,
        },
        target_region_size,
    };
    let mut scratch = CoarsenScratch::new();
    let (topology, _, _) =
        run_greedy_coarsened(sinks.len(), &mut objective, factory, &params, &mut scratch).unwrap();
    (topology, scratch.take_decisions(), objective)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The region decomposition is a partition of the sink set — every
    /// sink in exactly one region, members ascending — and a pure
    /// function of the locations (no thread count anywhere near it).
    #[test]
    fn partition_is_a_deterministic_partition(
        sinks in sinks_strategy(2, 200),
        target in 1usize..64,
    ) {
        let locations: Vec<Point> = sinks.iter().map(Sink::location).collect();
        let regions = partition_regions(&locations, target);
        let mut seen = vec![false; locations.len()];
        for region in &regions {
            prop_assert!(!region.is_empty());
            let mut prev = None;
            for &m in region {
                prop_assert!(!seen[m as usize], "sink {m} appears in two regions");
                seen[m as usize] = true;
                prop_assert!(prev.is_none_or(|p| p < m), "members must ascend");
                prev = Some(m);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "partition must cover every sink");
        prop_assert_eq!(partition_regions(&locations, target), regions);
    }

    /// The coarsened parallel route is deterministic across worker
    /// counts: topologies and canonical decision logs are bit-identical
    /// for `threads` ∈ {1, 2, 4, 8} — the property `gcr-verify audit`
    /// sweeps via `GCR_THREADS` on the scale benchmarks.
    #[test]
    fn coarsened_route_is_thread_count_invariant(
        sinks in sinks_strategy(40, 120),
        seed in 1u64..1_000,
    ) {
        let tech = Technology::default();
        let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
        let config = RouterConfig::new(tech, die);
        let tables = tables_for(sinks.len(), seed);
        let module_of: Vec<usize> = (0..sinks.len()).collect();
        // target 16 forces multiple regions even at 40 sinks.
        let (topology, log, _) =
            coarsened_route(&sinks, &module_of, &tables, &config, 16, 1);
        prop_assert_eq!(log.len(), sinks.len() - 1);
        let baseline = canonical_decision_log(&log);
        for threads in [2usize, 4, 8] {
            let (topo_t, log_t, _) =
                coarsened_route(&sinks, &module_of, &tables, &config, 16, threads);
            prop_assert_eq!(&topo_t, &topology, "topology diverged at {} threads", threads);
            prop_assert_eq!(
                canonical_decision_log(&log_t),
                baseline.clone(),
                "decision log diverged at {} threads",
                threads
            );
        }
    }

    /// A coarsened parallel route passes the full `gcr-verify` lint deck
    /// — zero skew, gating consistency, switched-capacitance accounting,
    /// and the determinism lints over its decision log.
    #[test]
    fn coarsened_route_verifies_clean(
        sinks in sinks_strategy(40, 120),
        seed in 1u64..1_000,
    ) {
        let tech = Technology::default();
        let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
        let config = RouterConfig::new(tech.clone(), die);
        let tables = tables_for(sinks.len(), seed);
        let module_of: Vec<usize> = (0..sinks.len()).collect();
        let (topology, log, objective) =
            coarsened_route(&sinks, &module_of, &tables, &config, 16, 4);
        let assignment =
            gcr_cts::DeviceAssignment::everywhere(&topology, config.tech().and_gate());
        let tree = gcr_cts::embed_sized(
            &topology,
            &sinks,
            config.tech(),
            &assignment,
            config.source(),
            gcr_cts::SizingLimits::default(),
        )
        .unwrap();
        let node_stats = objective.node_stats();
        let report = Verifier::with_default_lints().run(
            &VerifyInput::new(&tree, &tech)
                .with_die(die)
                .with_tables(&tables)
                .with_node_stats(&node_stats)
                .with_controller(config.controller())
                .with_decision_log(&log),
        );
        prop_assert!(!report.has_errors(), "{}", report.render_text());
    }
}
