//! Cross-crate consistency: the router's incremental bookkeeping must
//! agree with the from-scratch oracles in `gcr-rctree` and `gcr-activity`.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::ModuleSet;
use gcr_core::{evaluate, route_gated, DeviceRole, RouterConfig};
use gcr_rctree::Technology;
use gcr_workloads::{Benchmark, Workload, WorkloadParams};

fn routed() -> (Workload, gcr_core::GatedRouting, RouterConfig) {
    let params = WorkloadParams {
        stream_len: 4_000,
        groups: 8,
        ..WorkloadParams::default()
    };
    let w = Workload::for_benchmark(Benchmark::uniform(48, 24_000.0, 9), &params).unwrap();
    let tech = Technology::default();
    let config = RouterConfig::new(tech, w.benchmark.die);
    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config).unwrap();
    (w, routing, config)
}

/// The per-node enable statistics cached by the router equal a fresh
/// table-driven computation over the node's module set, which in turn
/// equals a brute-force rescan of the instruction stream.
#[test]
fn router_stats_match_tables_and_stream() {
    let (w, routing, _) = routed();
    let n = w.tables.rtl().num_modules();
    for i in 0..routing.topology.len() {
        let set: ModuleSet = ModuleSet::with_modules(n, routing.node_modules[i].iter());
        let fresh = w.tables.enable_stats(&set);
        let cached = routing.node_stats[i];
        assert!(
            (fresh.signal - cached.signal).abs() < 1e-12,
            "node {i} signal"
        );
        assert!(
            (fresh.transition - cached.transition).abs() < 1e-12,
            "node {i} transition"
        );
    }
}

/// The module sets the router accumulates are exactly the union of sink
/// indices below each topology node.
#[test]
fn router_module_sets_match_topology() {
    let (_, routing, _) = routed();
    let sizes = routing.topology.subtree_sizes();
    for (i, &size) in sizes.iter().enumerate() {
        assert_eq!(routing.node_modules[i].len(), size, "node {i} module count");
    }
    // Leaves own exactly their sink's module.
    for leaf in 0..routing.topology.num_leaves() {
        assert!(routing.node_modules[leaf].contains(leaf));
        assert_eq!(routing.node_modules[leaf].len(), 1);
    }
}

/// The embedded tree's delays, measured by the independent RC oracle, are
/// equal across sinks (zero skew) and positive.
#[test]
fn embedded_tree_agrees_with_rc_oracle() {
    let (_, routing, config) = routed();
    let (rc, sinks) = routing.tree.to_rc_tree(config.tech());
    let analysis = rc.analyze();
    let max = analysis.max_arrival(&sinks);
    let min = analysis.min_arrival(&sinks);
    assert!(min > 0.0);
    assert!(max - min <= 1e-9 * max, "skew {} of {max}", max - min);
}

/// The evaluator's clock switched capacitance with all enables forced to 1
/// equals the raw capacitance inventory of the tree (wires + loads + device
/// pins) — no double counting, nothing missed.
#[test]
fn evaluator_counts_every_farad_once() {
    let (_, routing, config) = routed();
    let tech = config.tech();
    let always_on = vec![
        gcr_activity::EnableStats {
            signal: 1.0,
            transition: 0.0
        };
        routing.tree.len()
    ];
    let report = evaluate(
        &routing.tree,
        &always_on,
        config.controller(),
        tech,
        DeviceRole::Gate,
    );
    let tree = &routing.tree;
    let mut inventory = tech.wire_cap(tree.total_wire_length());
    for i in 0..tree.num_sinks() {
        inventory += tree.sink_cap(i);
    }
    for (_, d) in tree.devices() {
        inventory += d.input_cap();
    }
    assert!(
        (report.clock_switched_cap - inventory).abs() < 1e-9,
        "evaluator {} vs inventory {inventory}",
        report.clock_switched_cap
    );
}

/// The production router (`route_gated`, which runs the lower-bound
/// pruned greedy engine) picks exactly the topology the exhaustive
/// reference engine picks on the same Equation-3 objective — the pruning
/// is an optimization, never a heuristic.
#[test]
fn route_gated_matches_exhaustive_reference() {
    let (w, routing, config) = routed();
    let sinks = &w.benchmark.sinks;
    let module_of: Vec<usize> = (0..sinks.len()).collect();
    let mut objective = gcr_core::GatedObjective::new(
        config.tech(),
        config.controller(),
        &w.tables,
        sinks,
        &module_of,
    );
    let reference = gcr_cts::run_greedy_exhaustive(sinks.len(), &mut objective).unwrap();
    assert_eq!(
        routing.topology, reference,
        "pruned router topology diverged from the exhaustive reference"
    );
}

/// Gate sizing during embedding preserves total input-pin inventory within
/// the sizing limits, and every resized device stays in range.
#[test]
fn sized_devices_stay_within_limits() {
    let (_, routing, config) = routed();
    let nominal = config.tech().and_gate();
    let limits = gcr_cts::SizingLimits::default();
    for (_, d) in routing.tree.devices() {
        let scale = d.input_cap() / nominal.input_cap();
        assert!(
            scale >= limits.min - 1e-9 && scale <= limits.max * limits.max + 1e-9,
            "device scale {scale} outside limits"
        );
    }
}
