//! Exhaustive check at toy scale: enumerate *every* full binary merge
//! structure over a handful of sinks, evaluate each fully gated embedding,
//! and place the greedy router's result against the true optimum.
//!
//! The paper's greedy is a heuristic — it need not be optimal — but on
//! toy instances it must land close to the best topology and never below
//! it (which would indicate an evaluation inconsistency).
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel, EnableStats, ModuleSet};
use gcr_core::{evaluate, route_gated, DeviceRole, RouterConfig};
use gcr_cts::{embed_sized, DeviceAssignment, Sink, SizingLimits, TopoNode, Topology};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

/// All distinct full binary topologies over `n` leaves, enumerated as
/// merge sequences (duplicates are fine — only the optimum matters).
fn enumerate_merges(n: usize) -> Vec<Vec<(usize, usize)>> {
    fn rec(
        live: Vec<usize>,
        next: usize,
        acc: &mut Vec<(usize, usize)>,
        out: &mut Vec<Vec<(usize, usize)>>,
    ) {
        if live.len() == 1 {
            out.push(acc.clone());
            return;
        }
        for i in 0..live.len() {
            for j in (i + 1)..live.len() {
                let mut rest: Vec<usize> = live
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i && k != j)
                    .map(|(_, &v)| v)
                    .collect();
                rest.push(next);
                acc.push((live[i], live[j]));
                rec(rest, next + 1, acc, out);
                acc.pop();
            }
        }
    }
    let mut out = Vec::new();
    rec((0..n).collect(), n, &mut Vec::new(), &mut out);
    out
}

fn node_stats_for(topology: &Topology, tables: &ActivityTables) -> Vec<EnableStats> {
    let n_modules = tables.rtl().num_modules();
    let mut sets: Vec<ModuleSet> = Vec::with_capacity(topology.len());
    let mut stats = Vec::with_capacity(topology.len());
    for (_, node) in topology.bottom_up() {
        let set = match node {
            TopoNode::Leaf { sink } => ModuleSet::with_modules(n_modules, [sink]),
            TopoNode::Internal { left, right } => sets[left].union(&sets[right]),
        };
        stats.push(tables.enable_stats(&set));
        sets.push(set);
    }
    stats
}

#[test]
fn greedy_is_near_optimal_on_toy_instances() {
    let tech = Technology::default();
    for seed in [1u64, 2, 3] {
        let n = 5;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new(
                        500.0 + ((i as u64 * 2654435761 + seed * 97) % 9_000) as f64,
                        500.0 + ((i as u64 * 40503 + seed * 131) % 9_000) as f64,
                    ),
                    0.03 + 0.01 * (i % 3) as f64,
                )
            })
            .collect();
        let model = CpuModel::builder(n)
            .instructions(6)
            .seed(seed)
            .build()
            .unwrap();
        let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(1_000));
        let die = BBox::new(Point::ORIGIN, Point::new(10_000.0, 10_000.0));
        let config = RouterConfig::new(tech.clone(), die);

        // Exhaustive optimum over all topologies.
        let mut best = f64::INFINITY;
        let mut worst: f64 = 0.0;
        for merges in enumerate_merges(n) {
            let topo = Topology::from_merges(n, &merges).expect("valid enumeration");
            let assignment = DeviceAssignment::everywhere(&topo, tech.and_gate());
            let tree = embed_sized(
                &topo,
                &sinks,
                &tech,
                &assignment,
                config.source(),
                SizingLimits::default(),
            )
            .unwrap();
            let stats = node_stats_for(&topo, &tables);
            let report = evaluate(&tree, &stats, config.controller(), &tech, DeviceRole::Gate);
            best = best.min(report.total_switched_cap);
            worst = worst.max(report.total_switched_cap);
        }

        // The greedy result.
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let greedy = evaluate(
            &routing.tree,
            &routing.node_stats,
            config.controller(),
            &tech,
            DeviceRole::Gate,
        )
        .total_switched_cap;

        assert!(
            greedy >= best - 1e-9,
            "seed {seed}: greedy {greedy} beats the exhaustive optimum {best} — \
             evaluation inconsistency"
        );
        // The paper's greedy is myopic: on 5-sink instances where the
        // controller star dominates, it routinely lands mid-range. Hold it
        // to within 1.5x of optimal and strictly better than the worst
        // topology.
        assert!(
            greedy <= best * 1.5 + 1e-9,
            "seed {seed}: greedy {greedy} is more than 50% above optimal {best} (worst {worst})"
        );
        assert!(
            greedy < worst + 1e-9,
            "seed {seed}: greedy {greedy} matches the worst topology {worst}"
        );
        // Sanity: the topology space is not degenerate.
        assert!(worst > best * 1.01, "seed {seed}: all topologies equal?");
    }
}

#[test]
fn enumeration_counts_match_double_factorial() {
    // Merge-sequence counts: N leaves -> prod of C(k,2) for k=N..2.
    assert_eq!(enumerate_merges(2).len(), 1);
    assert_eq!(enumerate_merges(3).len(), 3);
    assert_eq!(enumerate_merges(4).len(), 18); // 6 * 3
    assert_eq!(enumerate_merges(5).len(), 180); // 10 * 6 * 3
}
