//! The paper's §3 worked example (Tables 1–3), exercised end-to-end
//! through the public API: RTL → stream → tables → probabilities, and the
//! same probabilities driving a tiny gated routing.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{paper_example_rtl, ActivityTables, InstructionStream, ModuleSet};
use gcr_core::{route_gated, RouterConfig};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

fn paper_stream(rtl: &gcr_activity::Rtl) -> InstructionStream {
    // 20 cycles with the paper's reported statistics: I1+I2 appear 15
    // times (P(M1) = 0.75), I1+I3 appear 11 times (P(EN{M5,M6}) = 0.55).
    InstructionStream::from_indices(
        rtl,
        [0, 1, 3, 0, 2, 1, 0, 0, 1, 0, 2, 0, 1, 2, 0, 0, 1, 1, 3, 1],
    )
    .unwrap()
}

/// Table 1 + Table 2 + the in-text values: P(M1) = 0.75 and
/// P(EN) = P(M5 ∨ M6) = 0.55.
#[test]
fn section3_probabilities() {
    let rtl = paper_example_rtl();
    let stream = paper_stream(&rtl);
    let tables = ActivityTables::scan(&rtl, &stream);

    let m1 = ModuleSet::with_modules(6, [0]);
    assert!((tables.enable_stats(&m1).signal - 0.75).abs() < 1e-12);

    let m56 = ModuleSet::with_modules(6, [4, 5]);
    let stats = tables.enable_stats(&m56);
    assert!((stats.signal - 0.55).abs() < 1e-12);

    // Transition probability over the 19 consecutive pairs, checked
    // against the brute-force scan the paper describes first.
    let brute = stream.transition_probability(&rtl, &m56);
    assert!((stats.transition - brute).abs() < 1e-12);
    assert!(stats.transition > 0.0 && stats.transition < 1.0);
}

/// The six-module example routed as a real gated clock tree: the node
/// whose subtree is exactly {M5, M6} (if the topology forms one) would
/// carry the 0.55 enable; at minimum, every leaf enable equals its
/// module's activity and the root enable is the OR of everything.
#[test]
fn section3_example_drives_a_routing() {
    let rtl = paper_example_rtl();
    let stream = paper_stream(&rtl);
    let tables = ActivityTables::scan(&rtl, &stream);

    let die = BBox::new(Point::new(0.0, 0.0), Point::new(6_000.0, 6_000.0));
    let sinks: Vec<Sink> = (0..6)
        .map(|i| {
            Sink::new(
                Point::new(
                    1_000.0 + 1_800.0 * f64::from(i % 3),
                    1_500.0 + 3_000.0 * f64::from(i / 3),
                ),
                0.05,
            )
        })
        .collect();
    let config = RouterConfig::new(Technology::default(), die);
    let routing = route_gated(&sinks, &tables, &config).unwrap();

    // Leaf enables are the per-module activities.
    for m in 0..6 {
        let expect = tables.enable_stats(&ModuleSet::with_modules(6, [m])).signal;
        assert!(
            (routing.node_stats[m].signal - expect).abs() < 1e-12,
            "leaf {m}"
        );
    }
    // The root covers all six modules; every instruction uses at least one
    // module, so the root enable is always on.
    let root = routing.topology.root();
    assert!((routing.node_stats[root].signal - 1.0).abs() < 1e-12);
    assert!(routing.node_stats[root].transition.abs() < 1e-12);
    // And the layout is zero-skew.
    let tech = config.tech();
    let delay = routing.tree.source_to_sink_delay(tech);
    assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
}
