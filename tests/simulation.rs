//! Cycle-accurate cross-validation: replaying the instruction stream must
//! reproduce the analytic switched capacitance *exactly*, for arbitrary
//! control masks — the end-to-end proof that the paper's probability
//! tables measure what the hardware would burn.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{
    evaluate_with_mask, reduce_gates_optimal, reduce_gates_untied, route_gated, simulate_stream,
    ControllerPlan, ReductionParams, RouterConfig,
};
use gcr_rctree::Technology;
use gcr_workloads::{Benchmark, Workload, WorkloadParams};

fn fixture(seed: u64) -> (Workload, gcr_core::GatedRouting, RouterConfig) {
    let params = WorkloadParams {
        stream_len: 2_000,
        seed,
        ..WorkloadParams::default()
    };
    let w = Workload::for_benchmark(Benchmark::uniform(32, 18_000.0, seed), &params).unwrap();
    let config = RouterConfig::new(Technology::default(), w.benchmark.die);
    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config).unwrap();
    (w, routing, config)
}

fn stream_for(w: &Workload) -> gcr_activity::InstructionStream {
    // Regenerate the exact stream the workload's tables were scanned from.
    let model = gcr_activity::CpuModel::builder(w.benchmark.sinks.len())
        .instructions(w.params.instructions)
        .usage_fraction(w.params.usage_fraction)
        .persistence(w.params.persistence)
        .groups(w.params.groups)
        .seed(w.params.seed)
        .build()
        .unwrap();
    model.generate_stream(w.params.stream_len)
}

#[test]
fn simulation_equals_analytics_for_many_masks() {
    let tech = Technology::default();
    for seed in [2u64, 19, 77] {
        let (w, routing, config) = fixture(seed);
        let stream = stream_for(&w);
        let n = routing.tree.len();
        let star = config.die().half_perimeter() / 8.0;
        let masks: Vec<Vec<bool>> = vec![
            vec![true; n],
            vec![false; n],
            (0..n).map(|i| i % 2 == 0).collect(),
            reduce_gates_untied(
                &routing,
                &tech,
                &ReductionParams::from_strength_scaled(0.2, &tech, star),
            ),
            reduce_gates_optimal(&routing, &tech, config.controller()),
        ];
        for (which, mask) in masks.iter().enumerate() {
            let analytic = evaluate_with_mask(
                &routing.tree,
                &routing.node_stats,
                config.controller(),
                &tech,
                mask,
            );
            let sim = simulate_stream(
                &routing.tree,
                &routing.node_modules,
                mask,
                w.tables.rtl(),
                &stream,
                config.controller(),
                &tech,
            );
            assert!(
                (sim.clock_switched_cap - analytic.clock_switched_cap).abs() < 1e-9,
                "seed {seed} mask {which}: clock {} vs {}",
                sim.clock_switched_cap,
                analytic.clock_switched_cap
            );
            assert!(
                (sim.control_switched_cap - analytic.control_switched_cap).abs() < 1e-9,
                "seed {seed} mask {which}: control {} vs {}",
                sim.control_switched_cap,
                analytic.control_switched_cap
            );
        }
    }
}

#[test]
fn simulation_under_distributed_controllers() {
    let tech = Technology::default();
    let (w, routing, config) = fixture(5);
    let stream = stream_for(&w);
    let mask = reduce_gates_optimal(&routing, &tech, config.controller());
    for levels in [1u32, 2] {
        let plan = ControllerPlan::distributed(config.die(), levels);
        let analytic = evaluate_with_mask(&routing.tree, &routing.node_stats, &plan, &tech, &mask);
        let sim = simulate_stream(
            &routing.tree,
            &routing.node_modules,
            &mask,
            w.tables.rtl(),
            &stream,
            &plan,
            &tech,
        );
        assert!(
            (sim.total_switched_cap - analytic.total_switched_cap).abs() < 1e-9,
            "levels {levels}: {} vs {}",
            sim.total_switched_cap,
            analytic.total_switched_cap
        );
    }
}

/// A different stream from the same CPU (another seed) must land *close*
/// to the analytic prediction but not exactly on it — probabilities
/// generalize, they don't memorize.
#[test]
fn analytics_generalize_to_held_out_streams() {
    let tech = Technology::default();
    let (w, routing, config) = fixture(8);
    let model = gcr_activity::CpuModel::builder(w.benchmark.sinks.len())
        .instructions(w.params.instructions)
        .usage_fraction(w.params.usage_fraction)
        .persistence(w.params.persistence)
        .groups(w.params.groups)
        .seed(w.params.seed) // same CPU...
        .build()
        .unwrap();
    // ...but CpuModel couples stream RNG to the model seed, so emulate a
    // held-out run by using a longer stream (fresh suffix draws).
    let held_out = model.generate_stream(8_000);
    let mask = vec![true; routing.tree.len()];
    let analytic = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &mask,
    );
    let sim = simulate_stream(
        &routing.tree,
        &routing.node_modules,
        &mask,
        w.tables.rtl(),
        &held_out,
        config.controller(),
        &tech,
    );
    let rel =
        (sim.total_switched_cap - analytic.total_switched_cap).abs() / analytic.total_switched_cap;
    assert!(
        rel < 0.05,
        "held-out stream diverges by {:.1}%",
        100.0 * rel
    );
}
