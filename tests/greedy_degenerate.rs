//! Degenerate-input regressions for the arena-backed greedy engine: on
//! inputs that collapse the geometry or the objective (a single sink,
//! duplicated sink locations, an activity model whose enables never fire)
//! the pruned engine must still produce **bit-identical** topologies to
//! the exhaustive reference — these are exactly the inputs where every
//! candidate ties and the `(key, kind, a, b)` order does all the work.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, InstructionStream, Rtl};
use gcr_core::{GatedObjective, RouterConfig};
use gcr_cts::{
    run_greedy_exhaustive, run_greedy_instrumented, NearestNeighborObjective, Sink, Topology,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

const SIDE: f64 = 20_000.0;

fn pruned_equals_exhaustive<O>(n: usize, objective: &O) -> Topology
where
    O: gcr_cts::MergeObjective + Clone,
{
    let mut reference_obj = objective.clone();
    let reference = run_greedy_exhaustive(n, &mut reference_obj).unwrap();
    let mut pruned_obj = objective.clone();
    let (pruned, _) = run_greedy_instrumented(n, &mut pruned_obj).unwrap();
    assert_eq!(pruned, reference, "engines diverged on {n} sinks");
    pruned
}

/// An activity model in which none of the first `num_modules` modules is
/// ever active: the only instruction touches a spare "drain" module, so
/// every sink-facing enable probability is exactly zero and every
/// Equation-3 cost ties at the wire-free static term.
fn all_zero_tables(num_modules: usize) -> ActivityTables {
    let rtl = Rtl::builder(num_modules + 1)
        .instruction("DRAIN", [num_modules])
        .and_then(gcr_activity::RtlBuilder::build)
        .unwrap();
    let stream = InstructionStream::from_indices(&rtl, vec![0; 64]).unwrap();
    ActivityTables::scan(&rtl, &stream)
}

#[test]
fn single_sink_is_a_leaf_topology() {
    let tech = Technology::default();
    let sinks = [Sink::new(Point::new(123.0, 456.0), 0.07)];
    let objective = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
    let topology = pruned_equals_exhaustive(1, &objective);
    assert_eq!(topology.num_leaves(), 1);
    assert_eq!(topology.len(), 1);
    assert_eq!(topology.root(), 0);
}

#[test]
fn all_sinks_at_one_location_merge_identically() {
    // Every merging segment is the same point: all distances are 0, all
    // costs tie, every merge is zero-length.
    let tech = Technology::default();
    for n in [2usize, 3, 7, 16] {
        let sinks: Vec<Sink> = (0..n)
            .map(|_| Sink::new(Point::new(5_000.0, 5_000.0), 0.05))
            .collect();
        let objective = NearestNeighborObjective::new(&tech, &sinks, None);
        let topology = pruned_equals_exhaustive(n, &objective);
        assert_eq!(topology.num_leaves(), n);
    }
}

#[test]
fn duplicate_location_pairs_merge_identically() {
    // Mixed case: distinct cluster centers, each holding several
    // coincident sinks — ties inside clusters, real geometry between them.
    let tech = Technology::default();
    let mut sinks = Vec::new();
    for c in 0..5 {
        let p = Point::new(
            1_000.0 + 3_700.0 * f64::from(c),
            2_000.0 + 900.0 * f64::from(c),
        );
        for k in 0..3 {
            sinks.push(Sink::new(p, 0.03 + 0.01 * f64::from(k)));
        }
    }
    let objective = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
    let topology = pruned_equals_exhaustive(sinks.len(), &objective);
    assert_eq!(topology.num_leaves(), sinks.len());
}

#[test]
fn subnormal_extent_region_routes_identically() {
    // A "region" whose bounding box is almost — but not exactly — a
    // point: the sinks differ by a few ULPs around a common coordinate,
    // so the bucket-grid extent divided by √n underflows to a subnormal
    // (or zero) cell size. Before the cell-size clamp this saturated the
    // grid dimension computation; now the clamp keeps the grid finite
    // and the pruned engine must still match the exhaustive reference.
    let tech = Technology::default();
    for n in [2usize, 5, 12] {
        let base = 5_000.0_f64;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                let x = f64::from_bits(base.to_bits() + i as u64);
                let y = f64::from_bits(base.to_bits() + (i as u64 % 3));
                Sink::new(Point::new(x, y), 0.05)
            })
            .collect();
        let objective = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
        let topology = pruned_equals_exhaustive(n, &objective);
        assert_eq!(topology.num_leaves(), n);
    }
}

#[test]
fn all_zero_activity_ties_resolve_identically() {
    // With P(EN) = P_tr(EN) = 0 everywhere, every Equation-3 cost and
    // every lower bound is 0: the engine's answer is decided purely by
    // the (key, kind, a, b) tie-break order, which both engines share.
    let tables = all_zero_tables(10);
    let sinks: Vec<Sink> = (0..10)
        .map(|i| {
            let x = (f64::from(i) * 2_654.435) % SIDE;
            let y = (f64::from(i) * 1_618.034) % SIDE;
            Sink::new(Point::new(x, y), 0.05)
        })
        .collect();
    let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
    let config = RouterConfig::new(Technology::default(), die);
    let module_of: Vec<usize> = (0..sinks.len()).collect();
    let objective = GatedObjective::new(
        config.tech(),
        config.controller(),
        &tables,
        &sinks,
        &module_of,
    );
    // Sanity: the degenerate model really zeroes the stats.
    for s in objective.node_stats() {
        assert_eq!(s.signal, 0.0);
        assert_eq!(s.transition, 0.0);
    }
    let topology = pruned_equals_exhaustive(sinks.len(), &objective);
    assert_eq!(topology.num_leaves(), sinks.len());
}

#[test]
fn all_zero_activity_with_duplicate_locations() {
    // Both degeneracies at once: zero activity *and* coincident sinks.
    let tables = all_zero_tables(8);
    let sinks: Vec<Sink> = (0..8)
        .map(|i| Sink::new(Point::new(4_000.0 + f64::from(i % 2), 4_000.0), 0.05))
        .collect();
    let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
    let config = RouterConfig::new(Technology::default(), die);
    let module_of: Vec<usize> = (0..sinks.len()).collect();
    let objective = GatedObjective::new(
        config.tech(),
        config.controller(),
        &tables,
        &sinks,
        &module_of,
    );
    let topology = pruned_equals_exhaustive(sinks.len(), &objective);
    assert_eq!(topology.num_leaves(), sinks.len());
}
