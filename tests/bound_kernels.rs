//! Contract tests for the batched bound kernels: `bound_batch` must be
//! **bitwise** identical to the scalar `cost_lower_bound` path for every
//! objective, because the pruned engine mixes batched and per-pair bounds
//! for the same node and a single ULP of drift would reorder heap entries
//! (see `docs/performance.md` §Bound kernels and candidate filtering).
//! A second set of tests pins the filtering behavior itself: candidate
//! filtering must actually engage on an r1-scale workload and must never
//! change the merge order relative to the exhaustive reference.
// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{ActivityDrivenObjective, GatedObjective, RouterConfig};
use gcr_cts::{
    run_greedy_exhaustive, run_greedy_instrumented, MergeObjective, NearestNeighborObjective, Sink,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};
use proptest::prelude::*;

const SIDE: f64 = 40_000.0;

fn sinks_strategy(max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE, 0.005..0.3f64), 2..max).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
            .collect()
    })
}

/// A small activity model with one module per sink, deterministic per
/// seed, so the Equation-3 objective has real probabilities to chew on.
fn tables_for(num_sinks: usize, seed: u64) -> ActivityTables {
    let model = CpuModel::builder(num_sinks)
        .instructions(8)
        .seed(seed)
        .build()
        .unwrap();
    let stream = model.generate_stream(600);
    ActivityTables::scan(model.rtl(), &stream)
}

/// Merges a few leaf pairs so the arena holds internal nodes too (whose
/// `SoA` rows are segments, not points), then checks every `(center,
/// candidate-set)` batch bitwise against the scalar path — in both
/// orientations the engine uses (`center < y` for ring expansions,
/// `center > y` for post-merge floods).
fn assert_batch_matches_scalar<O: MergeObjective>(objective: &mut O, num_leaves: usize) {
    let mut next = num_leaves;
    let mut leaf = 0;
    while leaf + 1 < num_leaves && next < num_leaves + 3 {
        objective.merge(leaf, leaf + 1, next).unwrap();
        next += 1;
        leaf += 2;
    }
    let total = next;
    let mut out = vec![0.0; total];
    for center in 0..total {
        let candidates: Vec<u32> = (0..total as u32)
            .filter(|&y| y as usize != center)
            .collect();
        out.clear();
        out.resize(candidates.len(), f64::NAN);
        objective.bound_batch(center, &candidates, &mut out);
        for (i, &y) in candidates.iter().enumerate() {
            let scalar = objective.cost_lower_bound(center, y as usize);
            assert!(
                out[i].to_bits() == scalar.to_bits(),
                "bound_batch({center}, {y}) = {:?} differs from scalar {scalar:?}",
                out[i],
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Nearest-neighbor objective: batched bounds are bitwise equal to
    /// scalar bounds over random arenas.
    #[test]
    fn nearest_neighbor_batch_is_bitwise_scalar(sinks in sinks_strategy(48)) {
        let tech = Technology::default();
        let mut objective = NearestNeighborObjective::new(&tech, &sinks, None);
        assert_batch_matches_scalar(&mut objective, sinks.len());
    }

    /// Equation-3 objective: same bitwise contract, across random
    /// geometry *and* random activity models.
    #[test]
    fn equation3_batch_is_bitwise_scalar(sinks in sinks_strategy(48), seed in 1u64..1_000) {
        let tech = Technology::default();
        let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
        let config = RouterConfig::new(tech, die);
        let tables = tables_for(sinks.len(), seed);
        let module_of: Vec<usize> = (0..sinks.len()).collect();
        let mut objective = GatedObjective::new(
            config.tech(),
            config.controller(),
            &tables,
            &sinks,
            &module_of,
        );
        assert_batch_matches_scalar(&mut objective, sinks.len());
    }

    /// Activity-driven (Téllez-style) objective: same bitwise contract.
    #[test]
    fn activity_driven_batch_is_bitwise_scalar(sinks in sinks_strategy(48), seed in 1u64..1_000) {
        let tech = Technology::default();
        let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
        let tables = tables_for(sinks.len(), seed);
        let mut objective =
            ActivityDrivenObjective::new(&tech, &tables, &sinks, die.half_perimeter());
        assert_batch_matches_scalar(&mut objective, sinks.len());
    }
}

/// On a real r1-scale workload the kernel filter must actually engage
/// (`bounds_filtered > 0`: candidates parked in the deferred slab instead
/// of becoming heap entries) — and filtering must never change the merge
/// order: the pruned topology stays bit-identical to the exhaustive
/// reference under both objectives.
#[test]
fn filtering_engages_on_r1_without_changing_merge_order() {
    let params = WorkloadParams::smoke();
    let workload = Workload::generate(TsayBenchmark::R1, &params).unwrap();
    let sinks = &workload.benchmark.sinks;
    let n = sinks.len();
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let module_of: Vec<usize> = (0..n).collect();

    let nn = NearestNeighborObjective::new(&tech, sinks, None);
    let gated = GatedObjective::new(
        config.tech(),
        config.controller(),
        &workload.tables,
        sinks,
        &module_of,
    );

    let mut nn_pruned = nn.clone();
    let (topology, stats) = run_greedy_instrumented(n, &mut nn_pruned).unwrap();
    assert!(
        stats.bounds_filtered > 0,
        "candidate filtering never engaged on r1 (nearest-neighbor)"
    );
    assert!(stats.bound_batches > 0, "no batched bound sweeps on r1");
    let mut nn_ref = nn.clone();
    let reference = run_greedy_exhaustive(n, &mut nn_ref).unwrap();
    assert_eq!(
        topology, reference,
        "filtering changed the nearest-neighbor merge order on r1"
    );

    let mut gated_pruned = gated.clone();
    let (topology, stats) = run_greedy_instrumented(n, &mut gated_pruned).unwrap();
    assert!(
        stats.bounds_filtered > 0,
        "candidate filtering never engaged on r1 (equation-3)"
    );
    assert!(stats.bound_batches > 0, "no batched bound sweeps on r1");
    let mut gated_ref = gated.clone();
    let reference = run_greedy_exhaustive(n, &mut gated_ref).unwrap();
    assert_eq!(
        topology, reference,
        "filtering changed the equation-3 merge order on r1"
    );
}
