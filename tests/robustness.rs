//! Degenerate and adversarial inputs: the flow must stay correct (or fail
//! loudly) at the edges of its domain.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel, InstructionStream, Rtl};
use gcr_core::{
    evaluate, evaluate_with_mask, reduce_gates_optimal, route_gated, DeviceRole, RouterConfig,
};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

fn config_for(die_side: f64) -> RouterConfig {
    RouterConfig::new(
        Technology::default(),
        BBox::new(Point::ORIGIN, Point::new(die_side, die_side)),
    )
}

/// Every sink at the same location: distances are all zero, merge regions
/// are points, and the result must still be a valid zero-skew tree.
#[test]
fn all_sinks_colocated() {
    let n = 24;
    let sinks = vec![Sink::new(Point::new(5_000.0, 5_000.0), 0.05); n];
    let model = CpuModel::builder(n)
        .instructions(6)
        .seed(1)
        .build()
        .unwrap();
    let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(500));
    let config = config_for(10_000.0);
    let routing = route_gated(&sinks, &tables, &config).unwrap();
    let tech = config.tech();
    let delay = routing.tree.source_to_sink_delay(tech);
    assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
    // No geometric wire is needed between co-located sinks; only the stub
    // from the source side.
    assert!(routing.tree.placed_wire_length() < 1e-6);
}

/// Zero-capacitance sinks: legal loads, the tree must still route.
#[test]
fn zero_cap_sinks() {
    let sinks: Vec<Sink> = (0..8)
        .map(|i| Sink::new(Point::new(f64::from(i) * 1_000.0, 0.0), 0.0))
        .collect();
    let model = CpuModel::builder(8)
        .instructions(4)
        .seed(2)
        .build()
        .unwrap();
    let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(200));
    let config = config_for(8_000.0);
    let routing = route_gated(&sinks, &tables, &config).unwrap();
    let report = evaluate(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        config.tech(),
        DeviceRole::Gate,
    );
    assert!(report.total_switched_cap > 0.0); // wires still switch
}

/// A single instruction that uses every module: every enable has P = 1 and
/// `P_tr` = 0 — the optimal reduction must drop every control wire.
#[test]
fn single_always_on_instruction() {
    let n = 12;
    let rtl = Rtl::builder(n)
        .instruction("ALL", 0..n)
        .and_then(gcr_activity::RtlBuilder::build)
        .unwrap();
    let stream = InstructionStream::from_indices(&rtl, vec![0; 100]).unwrap();
    let tables = ActivityTables::scan(&rtl, &stream);
    let sinks: Vec<Sink> = (0..n)
        .map(|i| {
            Sink::new(
                Point::new((i % 4) as f64 * 2_000.0, (i / 4) as f64 * 2_000.0),
                0.04,
            )
        })
        .collect();
    let config = config_for(8_000.0);
    let routing = route_gated(&sinks, &tables, &config).unwrap();
    for s in &routing.node_stats {
        assert!((s.signal - 1.0).abs() < 1e-12);
        assert!(s.transition.abs() < 1e-12);
    }
    let mask = reduce_gates_optimal(&routing, config.tech(), config.controller());
    assert!(
        mask.iter().all(|&k| !k),
        "gating an always-on chip is pure overhead"
    );
}

/// Two sinks — the smallest non-trivial tree.
#[test]
fn two_sink_routing() {
    let sinks = vec![
        Sink::new(Point::new(0.0, 0.0), 0.05),
        Sink::new(Point::new(9_000.0, 3_000.0), 0.08),
    ];
    let model = CpuModel::builder(2)
        .instructions(3)
        .seed(3)
        .build()
        .unwrap();
    let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(100));
    let config = config_for(10_000.0);
    let routing = route_gated(&sinks, &tables, &config).unwrap();
    assert_eq!(routing.tree.len(), 3);
    let tech = config.tech();
    let delay = routing.tree.source_to_sink_delay(tech);
    assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
}

/// Extreme load imbalance (1000x) still balances exactly.
#[test]
fn extreme_load_imbalance() {
    let sinks = vec![
        Sink::new(Point::new(0.0, 0.0), 0.001),
        Sink::new(Point::new(2_000.0, 0.0), 1.0),
        Sink::new(Point::new(4_000.0, 0.0), 0.001),
        Sink::new(Point::new(6_000.0, 0.0), 1.0),
    ];
    let model = CpuModel::builder(4)
        .instructions(4)
        .seed(4)
        .build()
        .unwrap();
    let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(200));
    let config = config_for(6_000.0);
    let routing = route_gated(&sinks, &tables, &config).unwrap();
    let tech = config.tech();
    let delay = routing.tree.source_to_sink_delay(tech);
    assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
}

/// Tiny die with a far-away clock source: the root just lands on the
/// closest merging-region point; everything stays consistent.
#[test]
fn source_outside_the_die() {
    let sinks: Vec<Sink> = (0..6)
        .map(|i| Sink::new(Point::new(100.0 + f64::from(i) * 50.0, 100.0), 0.02))
        .collect();
    let model = CpuModel::builder(6)
        .instructions(4)
        .seed(5)
        .build()
        .unwrap();
    let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(200));
    let config = config_for(500.0).with_source(Point::new(-10_000.0, -10_000.0));
    let routing = route_gated(&sinks, &tables, &config).unwrap();
    let tech = config.tech();
    let delay = routing.tree.source_to_sink_delay(tech);
    assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
}

/// Evaluation with a mask over a plain (device-free) tree: every entry of
/// the mask is ignored because there is nothing to control.
#[test]
fn mask_over_plain_tree_is_inert() {
    let tech = Technology::default();
    let sinks: Vec<Sink> = (0..5)
        .map(|i| Sink::new(Point::new(f64::from(i) * 1_000.0, 0.0), 0.05))
        .collect();
    let topo = gcr_cts::nearest_neighbor_topology(&tech, &sinks, None).unwrap();
    let tree = gcr_cts::embed(
        &topo,
        &sinks,
        &tech,
        &gcr_cts::DeviceAssignment::none(&topo),
        Point::ORIGIN,
    )
    .unwrap();
    let stats = vec![
        gcr_activity::EnableStats {
            signal: 0.5,
            transition: 0.5
        };
        tree.len()
    ];
    let die = BBox::new(Point::ORIGIN, Point::new(4_000.0, 1_000.0));
    let plan = gcr_core::ControllerPlan::centralized(&die);
    let all_on = evaluate_with_mask(&tree, &stats, &plan, &tech, &vec![true; tree.len()]);
    let all_off = evaluate_with_mask(&tree, &stats, &plan, &tech, &vec![false; tree.len()]);
    assert_eq!(all_on.total_switched_cap, all_off.total_switched_cap);
    assert_eq!(all_on.control_wire_length, 0.0);
}

/// Property: the static verifier accepts every gated routing the flow
/// produces over random sink placements and workloads — six passes, zero
/// errors. This is the DRC oracle: any embedding, probability, or
/// accounting bug upstream turns one of these cases red.
mod verifier_oracle {
    use super::*;
    use gcr_verify::{Verifier, VerifyInput};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn accepts_random_gated_routings(
            raw in prop::collection::vec(
                (0.0..20_000.0f64, 0.0..20_000.0f64, 0.01..0.2f64),
                2..16,
            ),
            seed in 0u64..1_000,
        ) {
            let sinks: Vec<Sink> = raw
                .into_iter()
                .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
                .collect();
            let model = CpuModel::builder(sinks.len())
                .instructions(4)
                .seed(seed)
                .build()
                .unwrap();
            let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(400));
            let config = config_for(20_000.0);
            let routing = route_gated(&sinks, &tables, &config).unwrap();
            let input = VerifyInput::new(&routing.tree, config.tech())
                .with_die(config.die())
                .with_tables(&tables)
                .with_node_stats(&routing.node_stats)
                .with_controller(config.controller());
            let report = Verifier::with_default_lints().run(&input);
            prop_assert!(!report.has_errors(), "{}", report.render_text());
        }
    }
}
