//! Steady-state allocation discipline of the arena-backed greedy engine:
//! with warmed scratch buffers and pre-reserved objective columns, the
//! merge loop must perform **zero** heap allocations. A counting global
//! allocator feeds the engine's phase profile via
//! [`gcr_cts::set_alloc_probe`]; the assertion is on the warm run's
//! `loop_allocs`.
//!
//! Single `#[test]` on purpose: the allocation counter is process-global,
//! and a concurrently running test would inflate the deltas.
#![allow(unsafe_code)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;

use gcr_activity::{ActivityTables, CpuModel, ScanParams, ScanScratch, SliceSource};
use gcr_core::{GatedObjective, RouterConfig};
use gcr_cts::{
    apply_eco, plan_eco_leaves, run_greedy_with_scratch, run_greedy_with_scratch_traced, EcoEdit,
    EcoScratch, GreedyParams, GreedyScratch, MergeObjective, NearestNeighborObjective, Sink,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_trace::{ChromeTraceSink, TraceSink, Tracer};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_probe() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

const SIDE: f64 = 30_000.0;

fn spread_sinks(n: usize) -> Vec<Sink> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 2_654.435) % SIDE;
            let y = (i as f64 * 1_618.034) % SIDE;
            Sink::new(Point::new(x, y), 0.03 + 0.01 * (i % 5) as f64)
        })
        .collect()
}

/// Cold run to grow the scratch, then a warm run whose loop phase must
/// not allocate.
fn warm_loop_allocs<O: MergeObjective + Clone>(n: usize, objective: &O) -> u64 {
    let params = GreedyParams::default();
    let mut scratch = GreedyScratch::new();
    let mut cold = objective.clone();
    run_greedy_with_scratch(n, &mut cold, &params, &mut scratch).unwrap();
    let mut warm = objective.clone();
    let (_, _, profile) = run_greedy_with_scratch(n, &mut warm, &params, &mut scratch).unwrap();
    profile.loop_allocs
}

#[test]
fn warm_greedy_loop_performs_zero_allocations() {
    gcr_cts::set_alloc_probe(alloc_probe);
    gcr_activity::set_alloc_probe(alloc_probe);

    // Warm streaming activity scan: after a cold scan grows the
    // ScanScratch, a single-threaded warm rescan must not allocate in the
    // chunk loop — reads land in the reused buffer, counts in the reused
    // per-worker table. (The merge window builds the returned tables and
    // is expected to allocate; only the chunk window is gated.) Checked
    // for both an in-memory source and the incremental model generator,
    // and for the dense and sparse per-worker count layouts.
    let scan_model = CpuModel::builder(64)
        .instructions(16)
        .persistence(0.8)
        .seed(42)
        .build()
        .unwrap();
    let scan_stream = scan_model.generate_stream(50_000);
    for dense_limit in [gcr_activity::DEFAULT_DENSE_LIMIT, 0] {
        let scan_params = ScanParams {
            threads: Some(1),
            chunk_cycles: 4_096,
            dense_limit,
        };
        let mut scan_scratch = ScanScratch::new();
        let mut cold_source = SliceSource::new(&scan_stream);
        gcr_activity::scan_source(
            scan_model.rtl(),
            &mut cold_source,
            &scan_params,
            &mut scan_scratch,
        )
        .unwrap();
        let mut warm_source = SliceSource::new(&scan_stream);
        let (_, profile) = gcr_activity::scan_source(
            scan_model.rtl(),
            &mut warm_source,
            &scan_params,
            &mut scan_scratch,
        )
        .unwrap();
        assert_eq!(
            profile.chunk_allocs, 0,
            "warm slice-source chunk loop allocated {} times (dense_limit {dense_limit})",
            profile.chunk_allocs
        );
        let mut model_source = scan_model.trace_source(50_000);
        let (_, profile) = gcr_activity::scan_source(
            scan_model.rtl(),
            &mut model_source,
            &scan_params,
            &mut scan_scratch,
        )
        .unwrap();
        assert_eq!(
            profile.chunk_allocs, 0,
            "warm generator chunk loop allocated {} times (dense_limit {dense_limit})",
            profile.chunk_allocs
        );
    }
    let n = 300;
    let sinks = spread_sinks(n);
    let tech = Technology::default();

    // Nearest-neighbor objective (arena-only state).
    let nn = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
    let nn_allocs = warm_loop_allocs(n, &nn);
    assert_eq!(
        nn_allocs, 0,
        "nearest-neighbor warm loop allocated {nn_allocs} times"
    );

    // Equation-3 objective (arena + activity aggregates).
    let model = CpuModel::builder(n)
        .instructions(8)
        .seed(11)
        .build()
        .unwrap();
    let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(800));
    let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
    let config = RouterConfig::new(tech, die);
    let module_of: Vec<usize> = (0..n).collect();
    let gated = GatedObjective::new(
        config.tech(),
        config.controller(),
        &tables,
        &sinks,
        &module_of,
    );
    let gated_allocs = warm_loop_allocs(n, &gated);
    assert_eq!(
        gated_allocs, 0,
        "equation-3 warm loop allocated {gated_allocs} times"
    );

    // An active trace sink must not break the invariant: the engine times
    // the loop phases on the stack and defers all event emission until
    // after the allocation window closes.
    let sink = Arc::new(ChromeTraceSink::new());
    let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let params = GreedyParams::default();
    let mut scratch = GreedyScratch::new();
    let mut cold = gated.clone();
    run_greedy_with_scratch(n, &mut cold, &params, &mut scratch).unwrap();
    let mut warm = gated.clone();
    let (_, _, profile) =
        run_greedy_with_scratch_traced(n, &mut warm, &params, &mut scratch, &tracer).unwrap();
    assert_eq!(
        profile.loop_allocs, 0,
        "traced warm loop allocated {} times",
        profile.loop_allocs
    );
    let json = sink.to_json();
    for name in [
        "greedy.run",
        "greedy.ring",
        "greedy.bound",
        "greedy.defer",
        "greedy.merge",
    ] {
        assert!(json.contains(name), "trace missing {name}");
    }

    // Warm incremental-ECO loop: same discipline. One objective and one
    // EcoScratch stay alive; `truncate()` rewinds the objective to its
    // leaf rows between re-applications, and the replay + splice-search
    // + stitch window (the engine's `loop_allocs`) must not allocate.
    let params = GreedyParams::default();
    let mut topo_scratch = GreedyScratch::new();
    let mut topo_obj = gated.clone();
    let (old_topology, _, _) =
        run_greedy_with_scratch(n, &mut topo_obj, &params, &mut topo_scratch).unwrap();
    let old_locations: Vec<Point> = sinks.iter().map(Sink::location).collect();
    let moved = sinks[n / 2].location();
    let edits = [EcoEdit::MoveSink {
        index: n / 2,
        to: Point::new((moved.x + 600.0) % SIDE, (moved.y + 450.0) % SIDE),
    }];
    let plan = plan_eco_leaves(n, &edits).unwrap();
    let new_sinks = plan.new_sinks(&sinks);
    let new_modules = plan.new_module_of(&module_of);
    let mut eco_obj = GatedObjective::new(
        config.tech(),
        config.controller(),
        &tables,
        &new_sinks,
        &new_modules,
    );
    let mut eco_scratch = EcoScratch::new();
    // Cold application grows every buffer…
    apply_eco(
        &old_topology,
        &old_locations,
        &edits,
        &mut eco_obj,
        &params,
        &mut eco_scratch,
    )
    .unwrap();
    // …then warm re-applications must keep the loop window silent.
    for _ in 0..3 {
        eco_obj.truncate(n);
        let outcome = apply_eco(
            &old_topology,
            &old_locations,
            &edits,
            &mut eco_obj,
            &params,
            &mut eco_scratch,
        )
        .unwrap();
        assert_eq!(
            outcome.profile.loop_allocs, 0,
            "warm ECO loop allocated {} times",
            outcome.profile.loop_allocs
        );
        assert!(!outcome.pure_replay);
        assert!(outcome.spliced > 0);
    }
}
