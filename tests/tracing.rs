//! Observability contract of the `gcr-trace` instrumentation: traced
//! runs must (a) report a well-nested span tree covering every pipeline
//! layer with counters matching the engine's own statistics, and (b) be
//! **bit-identical** to untraced runs — tracing observes the flow, it
//! never steers it. See `docs/observability.md` for the span taxonomy.
// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gcr_core::{evaluate_traced, route_gated, route_gated_traced, DeviceRole, RouterConfig};
use gcr_cts::{run_greedy, run_greedy_traced, NearestNeighborObjective, Sink};
use gcr_geometry::Point;
use gcr_rctree::Technology;
use gcr_trace::{MemorySink, NullSink, TraceSink, Tracer};
use gcr_verify::{Verifier, VerifyInput};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};
use proptest::prelude::*;

/// A small r1 workload: real benchmark geometry, short stream.
fn small_r1() -> Workload {
    let params = WorkloadParams::smoke().with_stream_len(400);
    Workload::generate(TsayBenchmark::R1, &params).unwrap()
}

#[test]
fn full_flow_trace_covers_every_layer_with_correct_nesting() {
    let params = WorkloadParams::smoke().with_stream_len(400);
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);

    let workload = Workload::generate_traced(TsayBenchmark::R1, &params, &tracer).unwrap();
    let n = workload.benchmark.sinks.len();
    let config = RouterConfig::new(Technology::default(), workload.benchmark.die);
    let routing = route_gated_traced(
        &workload.benchmark.sinks,
        &workload.tables,
        &config,
        &tracer,
    )
    .unwrap();
    let report = evaluate_traced(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        config.tech(),
        DeviceRole::Gate,
        &tracer,
    );
    assert!(report.total_switched_cap.is_finite());

    let nesting = sink.nesting().expect("span stream must be balanced");
    let depth_of = |name: &str| {
        nesting
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, d)| d)
            .unwrap_or_else(|| panic!("span {name} missing from trace"))
    };

    // Workload synthesis: activity scan nests under workload.generate.
    assert_eq!(depth_of("workload.generate"), 0);
    assert_eq!(depth_of("activity.scan"), 1);
    assert_eq!(depth_of("activity.ift"), 2);
    assert_eq!(depth_of("activity.itmatt"), 2);

    // Routing: greedy + embedding nest under route.gated; the merge-loop
    // sub-phases sit inside greedy.run.
    assert_eq!(depth_of("route.gated"), 0);
    assert_eq!(depth_of("route.objective"), 1);
    assert_eq!(depth_of("greedy.run"), 1);
    for phase in [
        "greedy.seed",
        "greedy.loop",
        "greedy.ring",
        "greedy.defer",
        "greedy.bound",
        "greedy.merge",
    ] {
        assert_eq!(depth_of(phase), 2, "{phase} not nested in greedy.run");
    }
    assert_eq!(depth_of("embed.run"), 1);
    assert_eq!(depth_of("embed.bottom_up"), 2);
    assert_eq!(depth_of("embed.top_down"), 2);
    assert_eq!(depth_of("evaluate.equation3"), 0);

    // Counters agree with the flow's own bookkeeping.
    assert_eq!(sink.counter("workload.sinks"), Some(n as f64));
    assert_eq!(sink.counter("route.sinks"), Some(n as f64));
    assert_eq!(sink.counter("activity.cycles"), Some(400.0));
    assert_eq!(sink.counter("embed.nodes"), Some((2 * n - 1) as f64));
    assert!(sink.counter("greedy.heap_pops").unwrap() > 0.0);
    assert_eq!(sink.counter("greedy.loop_allocs"), Some(0.0));
    assert_eq!(
        sink.counter("evaluate.total_switched_cap"),
        Some(report.total_switched_cap)
    );
}

#[test]
fn traced_routing_is_bit_identical_on_r1() {
    let workload = small_r1();
    let config = RouterConfig::new(Technology::default(), workload.benchmark.die);
    let plain = route_gated(&workload.benchmark.sinks, &workload.tables, &config).unwrap();
    let tracer = Tracer::new(Arc::new(NullSink));
    let traced = route_gated_traced(
        &workload.benchmark.sinks,
        &workload.tables,
        &config,
        &tracer,
    )
    .unwrap();
    assert_eq!(plain.topology, traced.topology);
    assert_eq!(plain.tree, traced.tree);
}

#[test]
fn verifier_spans_follow_pass_order() {
    let workload = small_r1();
    let config = RouterConfig::new(Technology::default(), workload.benchmark.die);
    let routing = route_gated(&workload.benchmark.sinks, &workload.tables, &config).unwrap();

    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let verifier = Verifier::with_default_lints();
    let input = VerifyInput::new(&routing.tree, config.tech()).with_tables(&workload.tables);
    let report = verifier.run_traced(&input, &tracer);

    let nesting = sink.nesting().expect("span stream must be balanced");
    assert_eq!(nesting[0], ("verify.run", 0));
    let pass_spans: Vec<&str> = nesting
        .iter()
        .filter(|&&(_, d)| d == 1)
        .map(|&(n, _)| n)
        .collect();
    assert_eq!(pass_spans, report.passes_run());
    assert_eq!(
        sink.counter("verify.passes_run"),
        Some(report.passes_run().len() as f64)
    );
}

const SIDE: f64 = 40_000.0;

fn sinks_strategy(max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE, 0.005..0.3f64), 2..max).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tracing through an active (Null) sink never changes the topology:
    /// the instrumented engine must commit the same merges bit-for-bit.
    #[test]
    fn traced_greedy_is_bit_identical(sinks in sinks_strategy(48)) {
        let tech = Technology::default();
        let n = sinks.len();
        let mut plain_obj = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
        let plain = run_greedy(n, &mut plain_obj).unwrap();
        let tracer = Tracer::new(Arc::new(NullSink));
        let mut traced_obj = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
        let traced = run_greedy_traced(n, &mut traced_obj, &tracer).unwrap();
        prop_assert_eq!(plain, traced);
    }
}
