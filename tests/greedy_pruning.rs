//! Property tests for the lower-bound pruned greedy engine: on random
//! sink sets it must produce **bit-identical** topologies to the
//! exhaustive reference under both the nearest-neighbor and the paper's
//! Equation-3 objectives, and every routed output must pass the
//! `gcr-verify` oracle. See `docs/algorithms.md` §Candidate pruning for
//! why identity (not mere equivalence) is the contract.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{gated_routing_for_topology, GatedObjective, RouterConfig};
use gcr_cts::{
    run_greedy_exhaustive, run_greedy_instrumented, NearestNeighborObjective, Sink, Topology,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_verify::{Verifier, VerifyInput};
use proptest::prelude::*;

const SIDE: f64 = 40_000.0;

fn sinks_strategy(max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE, 0.005..0.3f64), 2..max).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
            .collect()
    })
}

/// A small activity model with one module per sink, deterministic per
/// seed, so the Equation-3 objective has real probabilities to chew on.
fn tables_for(num_sinks: usize, seed: u64) -> ActivityTables {
    let model = CpuModel::builder(num_sinks)
        .instructions(8)
        .seed(seed)
        .build()
        .unwrap();
    let stream = model.generate_stream(600);
    ActivityTables::scan(model.rtl(), &stream)
}

/// Runs both engines over clones of `objective` and returns the pruned
/// topology after asserting bit-identity with the exhaustive reference.
fn pruned_equals_exhaustive<O>(n: usize, objective: &O) -> Topology
where
    O: gcr_cts::MergeObjective + Clone,
{
    let mut reference_obj = objective.clone();
    let reference = run_greedy_exhaustive(n, &mut reference_obj).unwrap();
    let mut pruned_obj = objective.clone();
    let (pruned, stats) = run_greedy_instrumented(n, &mut pruned_obj).unwrap();
    assert_eq!(
        pruned, reference,
        "pruned engine diverged from exhaustive on {n} sinks \
         ({} exact evals pruned)",
        stats.exact_cost_evals
    );
    pruned
}

/// Routes `topology` with the full gated pipeline and runs the verifier
/// oracle over the result with complete activity context.
fn verify_routed(topology: Topology, sinks: &[Sink], tables: &ActivityTables) {
    let tech = Technology::default();
    let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
    let config = RouterConfig::new(tech.clone(), die);
    let routing = gated_routing_for_topology(topology, sinks, tables, &config).unwrap();
    let report = Verifier::with_default_lints().run(
        &VerifyInput::new(&routing.tree, &tech)
            .with_die(die)
            .with_tables(tables)
            .with_node_stats(&routing.node_stats)
            .with_controller(config.controller()),
    );
    assert!(!report.has_errors(), "{}", report.render_text());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Nearest-neighbor objective: the pruned engine's topology is
    /// bit-identical to the exhaustive engine's, and the routed result
    /// passes the verifier.
    #[test]
    fn nearest_neighbor_pruning_is_exact(sinks in sinks_strategy(64)) {
        let tech = Technology::default();
        let objective = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
        let topology = pruned_equals_exhaustive(sinks.len(), &objective);
        let tables = tables_for(sinks.len(), 7);
        verify_routed(topology, &sinks, &tables);
    }

    /// Equation-3 objective: same identity contract on the objective the
    /// pruning was built for, across random geometry *and* random
    /// activity models.
    #[test]
    fn equation3_pruning_is_exact(sinks in sinks_strategy(64), seed in 1u64..1_000) {
        let tech = Technology::default();
        let die = BBox::new(Point::ORIGIN, Point::new(SIDE, SIDE));
        let config = RouterConfig::new(tech, die);
        let tables = tables_for(sinks.len(), seed);
        let module_of: Vec<usize> = (0..sinks.len()).collect();
        let objective = GatedObjective::new(
            config.tech(),
            config.controller(),
            &tables,
            &sinks,
            &module_of,
        );
        let topology = pruned_equals_exhaustive(sinks.len(), &objective);
        verify_routed(topology, &sinks, &tables);
    }

    /// Degenerate geometry — clusters of coincident sinks — must neither
    /// panic nor break the identity contract (the bucket grid collapses
    /// to few occupied cells; zero-length merges exercise the β/α
    /// fallbacks in `zero_skew_merge`).
    #[test]
    fn coincident_clusters_do_not_panic(
        num_clusters in 1usize..6,
        per_cluster in 1usize..5,
        seed in 0u64..50,
    ) {
        let mut sinks = Vec::new();
        for c in 0..num_clusters {
            // Deterministic cluster centers spread over the die.
            let x = (seed as f64 * 977.0 + c as f64 * 7_919.0) % SIDE;
            let y = (seed as f64 * 1_433.0 + c as f64 * 4_871.0) % SIDE;
            for _ in 0..per_cluster {
                sinks.push(Sink::new(Point::new(x, y), 0.05));
            }
        }
        prop_assume!(sinks.len() >= 2);
        let tech = Technology::default();
        let objective = NearestNeighborObjective::new(&tech, &sinks, Some(tech.and_gate()));
        let topology = pruned_equals_exhaustive(sinks.len(), &objective);
        let tables = tables_for(sinks.len(), seed + 1);
        verify_routed(topology, &sinks, &tables);
    }
}
