//! Quickstart: route a small gated clock tree and read the power report.
//!
//! Run with: `cargo run --release -p gcr-report --example quickstart`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{
    evaluate, evaluate_buffered, evaluate_with_mask, reduce_gates_untied, route_gated, DeviceRole,
    ReductionParams, RouterConfig,
};
use gcr_cts::{build_buffered_tree, Sink};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sixteen clocked modules on a 12 mm-equivalent die.
    let die = BBox::new(Point::new(0.0, 0.0), Point::new(12_000.0, 12_000.0));
    let sinks: Vec<Sink> = (0..16)
        .map(|i| {
            let x = 1_500.0 + f64::from(i % 4) * 3_000.0;
            let y = 1_500.0 + f64::from(i / 4) * 3_000.0;
            Sink::new(Point::new(x, y), 0.04)
        })
        .collect();

    // A synthetic CPU: which instructions use which modules, and how the
    // instruction stream behaves over time.
    let cpu = CpuModel::builder(sinks.len())
        .instructions(12)
        .usage_fraction(0.4)
        .persistence(0.75)
        .groups(4)
        .seed(42)
        .build()?;
    let stream = cpu.generate_stream(10_000);
    let tables = ActivityTables::scan(cpu.rtl(), &stream);

    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), die);

    // The paper's baseline: nearest-neighbor topology, buffers everywhere.
    let buffered = build_buffered_tree(&tech, &sinks, config.source())?;
    let buffered_report = evaluate_buffered(&buffered, &tech);
    println!("buffered : {buffered_report}");

    // The paper's router: greedy min-switched-capacitance merging with a
    // masking gate on every edge.
    let routing = route_gated(&sinks, &tables, &config)?;
    let gated_report = evaluate(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        DeviceRole::Gate,
    );
    println!("gated    : {gated_report}");

    // §4.3 gate reduction (untie mode): keep control only where it pays.
    let mask = reduce_gates_untied(
        &routing,
        &tech,
        &ReductionParams::from_strength_scaled(0.2, &tech, die.half_perimeter() / 8.0),
    );
    let reduced_report = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &mask,
    );
    println!("reduced  : {reduced_report}");

    println!(
        "\nzero skew: buffered {:.2e} ps, gated {:.2e} ps",
        buffered_report.skew, gated_report.skew
    );
    println!(
        "power    : reduced tree runs at {:.0}% of the buffered baseline",
        100.0 * reduced_report.total_switched_cap / buffered_report.total_switched_cap
    );
    Ok(())
}
