//! §6's distributed gate controllers: re-evaluate one gated routing under
//! 1, 4 and 16 controllers and watch the enable star routing shrink by
//! ≈ √k.
//!
//! Run with: `cargo run --release -p gcr-report --example distributed_controller`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{evaluate, route_gated, ControllerPlan, DeviceRole, RouterConfig};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default();
    let params = WorkloadParams {
        stream_len: 10_000,
        ..WorkloadParams::default()
    };
    let w = Workload::generate(TsayBenchmark::R1, &params)?;
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config)?;

    println!(
        "gated r1 with {} gates; die side {:.0} λ",
        routing.tree.device_count(),
        w.benchmark.die.width()
    );
    println!("\n    k   star wire (Mλ)   ctl area (Mλ²)   W(S) pF   total W pF");
    let mut first = None;
    for levels in [0u32, 1, 2] {
        let plan = if levels == 0 {
            ControllerPlan::centralized(&w.benchmark.die)
        } else {
            ControllerPlan::distributed(w.benchmark.die, levels)
        };
        let report = evaluate(
            &routing.tree,
            &routing.node_stats,
            &plan,
            &tech,
            DeviceRole::Gate,
        );
        let k = plan.num_controllers();
        let base = *first.get_or_insert(report.control_wire_length);
        println!(
            "  {k:3}        {:8.2}         {:8.2}   {:7.2}      {:7.2}   ({:.1}x less wire)",
            report.control_wire_length / 1e6,
            report.control_wire_area / 1e6,
            report.control_switched_cap,
            report.total_switched_cap,
            base / report.control_wire_length,
        );
    }
    println!("\nthe paper's estimate: k partitions cut the star area by √k.");
    Ok(())
}
