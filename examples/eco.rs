//! Incremental ECO re-routing: a routed benchmark design absorbs a
//! stream of engineering change orders — sink moves, insertions,
//! removals, activity swaps — through the dirty-frontier engine
//! (`gcr_core::route_gated_eco`), and **every batch is verified**
//! against the from-scratch oracle (`gcr_verify::check_eco`): scoped
//! verification over the dirty-node set, bit-identity with the
//! same-topology rebuild, and the ε quality contract against a full
//! re-route. The process exits nonzero on any oracle mismatch, so this
//! example doubles as a CI smoke test of the ECO contract.
//!
//! Run with: `cargo run --release -p gcr-report --example eco`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use gcr_core::{route_gated_eco, route_gated_mapped, GatedObjective, RouterConfig};
use gcr_cts::{apply_eco, plan_eco_leaves, EcoEdit, EcoScratch, GreedyParams, Sink};
use gcr_geometry::Point;
use gcr_rctree::Technology;
use gcr_verify::{check_eco, DEFAULT_QUALITY_EPS};
use gcr_workloads::{
    generate_eco_stream, EcoStreamParams, TsayBenchmark, Workload, WorkloadParams,
};

/// One-word label for a single-edit batch (the stream's default shape).
fn describe(batch: &[EcoEdit]) -> &'static str {
    match batch.first() {
        Some(EcoEdit::MoveSink { .. }) => "move",
        Some(EcoEdit::AddSink { .. }) => "add",
        Some(EcoEdit::RemoveSink { .. }) => "remove",
        Some(EcoEdit::SwapActivity { .. }) => "swap",
        None => "empty",
    }
}

/// Warm-loop re-applications in the closing demo.
const WARM: usize = 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::generate(TsayBenchmark::R1, &WorkloadParams::smoke())?;
    let die = workload.benchmark.die;
    let tables = &workload.tables;
    let config = RouterConfig::new(Technology::default(), die);
    let mut sinks = workload.benchmark.sinks.clone();
    let mut module_of = workload.module_of();

    let mut routing = route_gated_mapped(&sinks, &module_of, tables, &config)?;
    println!(
        "v0: {} sinks, wire {:.0} kλ, skew {:.1e} ps",
        routing.tree.num_sinks(),
        routing.tree.total_wire_length() / 1e3,
        routing.tree.verify_skew(config.tech()),
    );

    // A placement-refinement session: mostly small moves, occasional
    // adds/removes, activity swaps in between. Deterministic per seed.
    let num_modules = tables.rtl().num_modules();
    let stream = generate_eco_stream(&sinks, die, num_modules, &EcoStreamParams::default());

    let mut scratch = EcoScratch::new();
    let mut mismatches = 0usize;
    for (i, batch) in stream.iter().enumerate() {
        let t = Instant::now();
        let eco = route_gated_eco(
            &routing,
            &sinks,
            &module_of,
            batch,
            tables,
            &config,
            &mut scratch,
        )?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let report = check_eco(&routing, &eco, tables, &config, DEFAULT_QUALITY_EPS)?;
        println!(
            "batch {i:>2} ({:<6}): {} sinks, replayed {:>3} + spliced {:>2}, \
             {} in {:.2} ms, quality {:.4} — {}",
            describe(batch),
            eco.sinks.len(),
            eco.outcome.replayed,
            eco.outcome.spliced,
            if eco.outcome.pure_replay {
                "pure replay"
            } else {
                "splice"
            },
            ms,
            report.quality_ratio,
            if report.passed() {
                "verified"
            } else {
                "MISMATCH"
            },
        );
        if !report.passed() {
            mismatches += 1;
            for failure in &report.failures {
                eprintln!("  oracle mismatch: {failure}");
            }
        }
        routing = eco.routing;
        sinks = eco.sinks;
        module_of = eco.module_of;
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} ECO batches failed the from-scratch oracle").into());
    }

    // The steady-state warm loop behind the benchmark numbers: one
    // objective and one scratch stay alive, and `truncate()` rewinds
    // the objective to its leaf rows between re-applications. Its
    // zero-allocation contract is gated in `tests/zero_alloc.rs` and
    // by `greedy_bench --eco`.
    let n = sinks.len();
    let from = sinks[n / 2].location();
    let reach = 0.02 * (die.max().x - die.min().x).max(die.max().y - die.min().y);
    let to = Point::new(
        (from.x + reach).min(die.max().x),
        (from.y + reach).min(die.max().y),
    );
    let edits = [EcoEdit::MoveSink { index: n / 2, to }];
    let plan = plan_eco_leaves(n, &edits)?;
    let new_sinks = plan.new_sinks(&sinks);
    let new_modules = plan.new_module_of(&module_of);
    let old_locations: Vec<Point> = sinks.iter().map(Sink::location).collect();
    let mut objective = GatedObjective::new(
        config.tech(),
        config.controller(),
        tables,
        &new_sinks,
        &new_modules,
    );
    let params = GreedyParams::default();
    apply_eco(
        &routing.topology,
        &old_locations,
        &edits,
        &mut objective,
        &params,
        &mut scratch,
    )?;
    let t = Instant::now();
    for _ in 0..WARM {
        objective.truncate(n);
        apply_eco(
            &routing.topology,
            &old_locations,
            &edits,
            &mut objective,
            &params,
            &mut scratch,
        )?;
    }
    let ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nwarm loop: {WARM} re-applications of a single-sink move in {ms:.2} ms \
         ({:.3} ms each); every batch above passed the from-scratch oracle.",
        ms / WARM as f64
    );
    Ok(())
}
