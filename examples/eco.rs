//! Engineering-change flow: a routed design absorbs a late sink insertion
//! and a sink removal without rerouting from scratch, staying zero-skew
//! throughout.
//!
//! Run with: `cargo run --release -p gcr-report --example eco`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{route_gated, RouterConfig};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let die = BBox::new(Point::ORIGIN, Point::new(12_000.0, 12_000.0));
    let sinks: Vec<Sink> = (0..20)
        .map(|i| {
            Sink::new(
                Point::new(
                    600.0 + f64::from(i % 5) * 2_700.0,
                    600.0 + f64::from(i / 5) * 2_700.0,
                ),
                0.04,
            )
        })
        .collect();
    let cpu = CpuModel::builder(20)
        .instructions(10)
        .groups(4)
        .seed(17)
        .build()?;
    let tables = ActivityTables::scan(cpu.rtl(), &cpu.generate_stream(8_000));
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), die);

    let v0 = route_gated(&sinks, &tables, &config)?;
    println!(
        "v0: {} sinks, wire {:.0} kλ, skew {:.1e} ps",
        v0.tree.num_sinks(),
        v0.tree.total_wire_length() / 1e3,
        v0.tree.verify_skew(&tech)
    );

    // A late block lands near the middle of the die, clocked by module 7.
    let late = Sink::new(Point::new(6_200.0, 5_900.0), 0.06);
    let (v1, sinks_v1) = v0.insert_sink(&sinks, late, 7, &tables, &config)?;
    println!(
        "v1 (+1 sink next to its nearest neighbor): {} sinks, wire {:.0} kλ, skew {:.1e} ps",
        v1.tree.num_sinks(),
        v1.tree.total_wire_length() / 1e3,
        v1.tree.verify_skew(&tech)
    );

    // Block 13 is cut from the design.
    let (v2, sinks_v2) = v1.remove_sink(&sinks_v1, 13, &tables, &config)?;
    println!(
        "v2 (-1 sink, sibling takes its place): {} sinks, wire {:.0} kλ, skew {:.1e} ps",
        v2.tree.num_sinks(),
        v2.tree.total_wire_length() / 1e3,
        v2.tree.verify_skew(&tech)
    );
    assert_eq!(sinks_v2.len(), 20);
    println!("\nthe topology changed only locally; every version is exactly zero-skew.");
    Ok(())
}
