//! A system-on-chip scenario end to end: 64 modules in four subsystems
//! (CPU, DSP array, memory, I/O) with phased activity, routed, reduced
//! (heuristic and DP-optimal), corner-checked, simulated cycle-accurately,
//! and exported as SVG + SPICE.
//!
//! Run with: `cargo run --release -p gcr-report --example soc`
//! (writes `soc_tree.svg` and `soc_tree.sp` into the current directory).
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel};
use gcr_core::{
    corner_analysis, evaluate_buffered, evaluate_with_mask, reduce_gates_optimal,
    reduce_gates_untied, route_gated, simulate_stream, ReductionParams, RouterConfig,
};
use gcr_cts::{build_buffered_tree, Sink};
use gcr_geometry::{BBox, Point};
use gcr_rctree::{to_spice, Technology};
use gcr_report::{render_svg, SvgOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Floorplan: four subsystem quadrants, 16 modules each. ----------
    let die = BBox::new(Point::ORIGIN, Point::new(24_000.0, 24_000.0));
    let quad = [
        Point::new(6_000.0, 6_000.0),   // CPU cluster (SW)
        Point::new(18_000.0, 6_000.0),  // DSP array (SE)
        Point::new(6_000.0, 18_000.0),  // memory subsystem (NW)
        Point::new(18_000.0, 18_000.0), // I/O + peripherals (NE)
    ];
    let sinks: Vec<Sink> = (0..64)
        .map(|i| {
            let q = quad[i % 4];
            let dx = ((i / 4) % 4) as f64 * 2_200.0 - 3_300.0;
            let dy = (i / 16) as f64 * 2_200.0 - 3_300.0;
            Sink::new(
                Point::new(q.x + dx, q.y + dy),
                0.03 + 0.01 * ((i / 4) % 3) as f64,
            )
        })
        .collect();

    // --- Activity: module i belongs to subsystem i % 4; the program runs
    //     in phases (compute-heavy, memory-heavy, ...). -------------------
    let cpu = CpuModel::builder(64)
        .instructions(16)
        .usage_fraction(0.35)
        .persistence(0.8)
        .groups(4)
        .phases(2)
        .phase_length(800)
        .seed(2026)
        .build()?;
    let stream = cpu.generate_stream(40_000);
    let tables = ActivityTables::scan(cpu.rtl(), &stream);

    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), die);

    // --- The three design points. ---------------------------------------
    let buffered_tree = build_buffered_tree(&tech, &sinks, config.source())?;
    let buffered = evaluate_buffered(&buffered_tree, &tech);
    let routing = route_gated(&sinks, &tables, &config)?;
    let heuristic_mask = reduce_gates_untied(
        &routing,
        &tech,
        &ReductionParams::from_strength_scaled(0.2, &tech, die.half_perimeter() / 8.0),
    );
    let heuristic = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &heuristic_mask,
    );
    let optimal_mask = reduce_gates_optimal(&routing, &tech, config.controller());
    let optimal = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &optimal_mask,
    );

    println!("buffered        : {buffered}");
    println!("gated+heuristic : {heuristic}");
    println!("gated+optimal   : {optimal}");
    println!(
        "power           : optimal runs at {:.0}% of buffered ({:.1} mW vs {:.1} mW)",
        100.0 * optimal.total_switched_cap / buffered.total_switched_cap,
        optimal.power_uw(&tech) / 1e3,
        buffered.power_uw(&tech) / 1e3,
    );

    // --- Cycle-accurate confirmation. -----------------------------------
    let sim = simulate_stream(
        &routing.tree,
        &routing.node_modules,
        &optimal_mask,
        cpu.rtl(),
        &stream,
        config.controller(),
        &tech,
    );
    println!(
        "simulation      : {:.3} pF/cycle over {} cycles (analytic {:.3})",
        sim.total_switched_cap, sim.cycles, optimal.total_switched_cap
    );

    // --- Robustness: wire corners. ---------------------------------------
    println!("\nwire corners (devices fixed):");
    for c in corner_analysis(&routing.tree, &tech, 0.2)? {
        println!(
            "  {:22} skew {:7.2} ps   delay {:7.0} ps",
            c.name, c.skew, c.delay
        );
    }

    // --- Artifacts. -------------------------------------------------------
    let svg = render_svg(
        &routing.tree,
        die,
        config.controller(),
        &SvgOptions {
            width_px: 1000.0,
            node_stats: Some(routing.node_stats.clone()),
            controlled: Some(optimal_mask),
            ..SvgOptions::default()
        },
    );
    std::fs::write("soc_tree.svg", svg)?;
    let (rc, sinks_rc) = routing.tree.to_rc_tree(&tech);
    std::fs::write(
        "soc_tree.sp",
        to_spice(&rc, &sinks_rc, "gated SoC clock tree"),
    )?;
    println!("\nwrote soc_tree.svg and soc_tree.sp");
    Ok(())
}
