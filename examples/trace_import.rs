//! Drive the router from plain-text inputs — the paper's own Table-1 RTL
//! and a hand-written trace — then cross-check the analytic power numbers
//! with the cycle-accurate simulator. The second half scales the same
//! activity pipeline to a **multi-million-cycle trace streamed in bounded
//! memory**: a tracking global allocator proves the chunked scan never
//! materializes the trace, and the resulting tables are compared
//! bit-for-bit against the sequential oracle — the process exits nonzero
//! on any mismatch or memory-bound violation, so this example doubles as
//! a CI smoke test of the streaming contract.
//!
//! Run with: `cargo run --release -p gcr-report --example trace_import`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// One allowed exception to the workspace unsafe ban (same as
// tests/zero_alloc.rs): the live-bytes tracking allocator.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gcr_activity::{io, ActivityTables, ScanParams, ScanScratch};
use gcr_core::{
    evaluate_with_mask, reduce_gates_optimal, route_gated, simulate_stream, RouterConfig,
};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_workloads::ActivityScenario;

/// Global allocator that tracks live heap bytes and their high-water
/// mark, so the streaming section can *prove* its memory stays bounded
/// instead of asserting it rhetorically.
struct TrackingAlloc;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let live = LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        PEAK_BYTES.fetch_max(live + layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        PEAK_BYTES.fetch_max(live + new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

const RTL: &str = "
# Table 1 of Oh & Pedram, DATE 1998
I1: M1 M2 M3 M5
I2: M1 M4
I3: M2 M5 M6
I4: M3 M4
";

const TRACE: &str = "
I1 I2 I4 I1 I3 I2 I1 I1 I2 I1
I3 I1 I2 I3 I1 I1 I2 I2 I4 I2
";

/// Streamed trace length: long enough that materializing it (4 bytes per
/// cycle) would dwarf the scan's working set, short enough for CI.
const STREAM_CYCLES: u64 = 2_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rtl = io::parse_rtl(RTL, None)?;
    let stream = io::parse_trace(&rtl, TRACE)?;
    println!(
        "parsed {} instructions over {} modules; trace of {} cycles",
        rtl.num_instructions(),
        rtl.num_modules(),
        stream.len()
    );
    let tables = ActivityTables::scan(&rtl, &stream);

    // Six modules on a small die.
    let sinks: Vec<Sink> = [
        (1_000.0, 1_000.0),
        (5_000.0, 1_200.0),
        (1_500.0, 5_000.0),
        (5_200.0, 5_100.0),
        (3_000.0, 3_000.0),
        (5_500.0, 3_000.0),
    ]
    .iter()
    .map(|&(x, y)| Sink::new(Point::new(x, y), 0.05))
    .collect();
    let die = BBox::new(Point::ORIGIN, Point::new(6_000.0, 6_000.0));
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), die);

    let routing = route_gated(&sinks, &tables, &config)?;
    let mask = reduce_gates_optimal(&routing, &tech, config.controller());
    let analytic = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &mask,
    );
    let simulated = simulate_stream(
        &routing.tree,
        &routing.node_modules,
        &mask,
        &rtl,
        &stream,
        config.controller(),
        &tech,
    );

    println!("analytic : {analytic}");
    println!(
        "simulated: W(T)={:.3}pF W(S)={:.3}pF total={:.3}pF over {} cycles",
        simulated.clock_switched_cap,
        simulated.control_switched_cap,
        simulated.total_switched_cap,
        simulated.cycles
    );
    let diff = (simulated.total_switched_cap - analytic.total_switched_cap).abs();
    println!("agreement: |simulated - analytic| = {diff:.2e} pF (exact by construction)");

    // ── Streaming at production scale ────────────────────────────────
    // The same tables, but from a 2-million-cycle scenario trace that is
    // never materialized: the CPU model generates chunk by chunk straight
    // into the scan's reused buffers. The tracking allocator's high-water
    // mark bounds the scan's transient memory against the size the trace
    // *would* occupy if collected.
    let scenario = ActivityScenario::PhaseChanging;
    let model = scenario.model(96, 17)?;
    let trace_bytes = STREAM_CYCLES * std::mem::size_of::<u32>() as u64;
    println!(
        "\nstreaming {STREAM_CYCLES} cycles of the `{scenario}` scenario \
         ({}; materialized the trace would be {:.1} MiB)",
        scenario.description(),
        trace_bytes as f64 / (1024.0 * 1024.0),
    );

    let mut scratch = ScanScratch::new();
    let params = ScanParams::default(); // threads from GCR_THREADS
    let live_before = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live_before, Ordering::Relaxed);
    let t = Instant::now();
    let mut source = model.trace_source(STREAM_CYCLES);
    let (streamed, profile) =
        gcr_activity::scan_source(model.rtl(), &mut source, &params, &mut scratch)?;
    let wall = t.elapsed().as_secs_f64();
    let peak_delta = PEAK_BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(live_before);
    println!(
        "streamed : {} cycles in {} chunks on {} thread(s), {:.2} s \
         ({:.1} Mcycles/s)",
        profile.cycles,
        profile.chunks,
        profile.threads,
        wall,
        profile.cycles_per_sec() / 1e6,
    );
    println!(
        "memory   : peak transient {:.2} MiB vs {:.1} MiB materialized \
         ({:.1}% of the trace)",
        peak_delta as f64 / (1024.0 * 1024.0),
        trace_bytes as f64 / (1024.0 * 1024.0),
        100.0 * peak_delta as f64 / trace_bytes as f64,
    );
    if peak_delta >= trace_bytes / 2 {
        return Err(format!(
            "streaming scan used {peak_delta} bytes at peak — not bounded \
             against the {trace_bytes}-byte materialized trace"
        )
        .into());
    }

    // Sequential oracle: materialize the identical trace and scan it the
    // classic way. The streamed tables must match **bit for bit** — u64
    // counts merge exactly, and the single final normalization performs
    // the same f64 divides in the same order as the sequential path.
    let oracle_stream = model.generate_stream(STREAM_CYCLES as usize);
    let oracle = ActivityTables::scan(model.rtl(), &oracle_stream);
    if streamed.ift() != oracle.ift() || streamed.itmatt() != oracle.itmatt() {
        eprintln!("streamed tables diverge from the sequential oracle");
        std::process::exit(1);
    }
    println!(
        "oracle   : sequential scan of the materialized trace matches \
         bit-for-bit ({} nonzero ITMATT pairs)",
        streamed.itmatt().nonzero_len(),
    );
    Ok(())
}
