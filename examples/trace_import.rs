//! Drive the router from plain-text inputs — the paper's own Table-1 RTL
//! and a hand-written trace — then cross-check the analytic power numbers
//! with the cycle-accurate simulator.
//!
//! Run with: `cargo run --release -p gcr-report --example trace_import`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{io, ActivityTables};
use gcr_core::{
    evaluate_with_mask, reduce_gates_optimal, route_gated, simulate_stream, RouterConfig,
};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;

const RTL: &str = "
# Table 1 of Oh & Pedram, DATE 1998
I1: M1 M2 M3 M5
I2: M1 M4
I3: M2 M5 M6
I4: M3 M4
";

const TRACE: &str = "
I1 I2 I4 I1 I3 I2 I1 I1 I2 I1
I3 I1 I2 I3 I1 I1 I2 I2 I4 I2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rtl = io::parse_rtl(RTL, None)?;
    let stream = io::parse_trace(&rtl, TRACE)?;
    println!(
        "parsed {} instructions over {} modules; trace of {} cycles",
        rtl.num_instructions(),
        rtl.num_modules(),
        stream.len()
    );
    let tables = ActivityTables::scan(&rtl, &stream);

    // Six modules on a small die.
    let sinks: Vec<Sink> = [
        (1_000.0, 1_000.0),
        (5_000.0, 1_200.0),
        (1_500.0, 5_000.0),
        (5_200.0, 5_100.0),
        (3_000.0, 3_000.0),
        (5_500.0, 3_000.0),
    ]
    .iter()
    .map(|&(x, y)| Sink::new(Point::new(x, y), 0.05))
    .collect();
    let die = BBox::new(Point::ORIGIN, Point::new(6_000.0, 6_000.0));
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), die);

    let routing = route_gated(&sinks, &tables, &config)?;
    let mask = reduce_gates_optimal(&routing, &tech, config.controller());
    let analytic = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &mask,
    );
    let simulated = simulate_stream(
        &routing.tree,
        &routing.node_modules,
        &mask,
        &rtl,
        &stream,
        config.controller(),
        &tech,
    );

    println!("analytic : {analytic}");
    println!(
        "simulated: W(T)={:.3}pF W(S)={:.3}pF total={:.3}pF over {} cycles",
        simulated.clock_switched_cap,
        simulated.control_switched_cap,
        simulated.total_switched_cap,
        simulated.cycles
    );
    let diff = (simulated.total_switched_cap - analytic.total_switched_cap).abs();
    println!("agreement: |simulated - analytic| = {diff:.2e} pF (exact by construction)");
    Ok(())
}
