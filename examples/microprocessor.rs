//! A hand-written microprocessor scenario: an explicit RTL description in
//! the style of the paper's Table 1, a floorplan with functional clusters,
//! and the full buffered / gated / gate-reduced comparison.
//!
//! Run with: `cargo run --release -p gcr-report --example microprocessor`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, InstructionStream, ModuleSet, Rtl};
use gcr_core::{
    evaluate, evaluate_buffered, evaluate_with_mask, reduce_gates_untied, route_gated, DeviceRole,
    ReductionParams, RouterConfig,
};
use gcr_cts::{build_buffered_tree, Sink};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Module indices of a small in-order CPU.
mod m {
    pub const FETCH: usize = 0;
    pub const DECODE: usize = 1;
    pub const REGFILE: usize = 2;
    pub const ALU0: usize = 3;
    pub const ALU1: usize = 4;
    pub const SHIFTER: usize = 5;
    pub const MULDIV: usize = 6;
    pub const FPU_ADD: usize = 7;
    pub const FPU_MUL: usize = 8;
    pub const FPU_REG: usize = 9;
    pub const LSU: usize = 10;
    pub const DCACHE: usize = 11;
    pub const ICACHE: usize = 12;
    pub const BRANCH: usize = 13;
    pub const CSR: usize = 14;
    pub const RETIRE: usize = 15;
    pub const COUNT: usize = 16;
}

fn cpu_rtl() -> Rtl {
    use m::*;
    let front = [FETCH, ICACHE, DECODE, BRANCH];
    let int = [REGFILE, ALU0, RETIRE];
    Rtl::builder(COUNT)
        .instruction("alu", front.iter().chain(&int).chain(&[ALU1]).copied())
        .and_then(|b| b.instruction("shift", front.iter().chain(&int).chain(&[SHIFTER]).copied()))
        .and_then(|b| b.instruction("mul", front.iter().chain(&int).chain(&[MULDIV]).copied()))
        .and_then(|b| {
            b.instruction(
                "fadd",
                front.iter().copied().chain([FPU_REG, FPU_ADD, RETIRE]),
            )
        })
        .and_then(|b| {
            b.instruction(
                "fmul",
                front.iter().copied().chain([FPU_REG, FPU_MUL, RETIRE]),
            )
        })
        .and_then(|b| {
            b.instruction(
                "load",
                front.iter().chain(&int).chain(&[LSU, DCACHE]).copied(),
            )
        })
        .and_then(|b| {
            b.instruction(
                "store",
                front.iter().chain(&int).chain(&[LSU, DCACHE]).copied(),
            )
        })
        .and_then(|b| b.instruction("branch", front.iter().chain(&[REGFILE, RETIRE]).copied()))
        .and_then(|b| b.instruction("csr", front.iter().chain(&[CSR, RETIRE]).copied()))
        .and_then(gcr_activity::RtlBuilder::build)
        .expect("CPU RTL is valid")
}

/// A program phase mix: mostly integer code with an FP-heavy inner loop.
fn program_stream(rtl: &Rtl) -> InstructionStream {
    let mut rng = StdRng::seed_from_u64(7);
    let mut trace = Vec::with_capacity(50_000);
    // (instruction index, weight) per phase.
    let int_phase = [(0usize, 5u32), (1, 1), (5, 3), (6, 2), (7, 2), (8, 1)];
    let fp_phase = [(3usize, 4u32), (4, 4), (5, 2), (6, 1), (7, 1), (2, 1)];
    let pick = |mix: &[(usize, u32)], rng: &mut StdRng| {
        let total: u32 = mix.iter().map(|&(_, w)| w).sum();
        let mut x = rng.gen_range(0..total);
        for &(i, w) in mix {
            if x < w {
                return i;
            }
            x -= w;
        }
        mix[0].0
    };
    while trace.len() < 50_000 {
        // Integer phase, then an FP burst — coarse-grained activity.
        for _ in 0..rng.gen_range(200..800) {
            trace.push(pick(&int_phase, &mut rng));
        }
        for _ in 0..rng.gen_range(100..400) {
            trace.push(pick(&fp_phase, &mut rng));
        }
    }
    trace.truncate(50_000);
    InstructionStream::from_indices(rtl, trace).expect("valid trace")
}

/// Floorplan: functional units clustered (front-end N, integer W, FP E,
/// memory S).
fn floorplan() -> (Vec<Sink>, BBox) {
    use m::*;
    let die = BBox::new(Point::new(0.0, 0.0), Point::new(8_000.0, 8_000.0));
    let at = |x: f64, y: f64, cap: f64| Sink::new(Point::new(x, y), cap);
    let mut sinks = vec![at(0.0, 0.0, 0.04); COUNT];
    sinks[FETCH] = at(3_000.0, 7_000.0, 0.05);
    sinks[ICACHE] = at(1_800.0, 7_300.0, 0.08);
    sinks[DECODE] = at(4_200.0, 7_000.0, 0.05);
    sinks[BRANCH] = at(5_300.0, 7_200.0, 0.03);
    sinks[REGFILE] = at(1_500.0, 4_200.0, 0.07);
    sinks[ALU0] = at(900.0, 3_300.0, 0.04);
    sinks[ALU1] = at(2_100.0, 3_300.0, 0.04);
    sinks[SHIFTER] = at(900.0, 2_400.0, 0.03);
    sinks[MULDIV] = at(2_100.0, 2_400.0, 0.05);
    sinks[RETIRE] = at(4_000.0, 4_000.0, 0.04);
    sinks[FPU_REG] = at(6_500.0, 4_200.0, 0.06);
    sinks[FPU_ADD] = at(6_000.0, 3_200.0, 0.05);
    sinks[FPU_MUL] = at(7_000.0, 3_200.0, 0.06);
    sinks[LSU] = at(3_500.0, 900.0, 0.04);
    sinks[DCACHE] = at(5_000.0, 700.0, 0.08);
    sinks[CSR] = at(6_800.0, 6_800.0, 0.02);
    (sinks, die)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rtl = cpu_rtl();
    let stream = program_stream(&rtl);
    let tables = ActivityTables::scan(&rtl, &stream);
    let (sinks, die) = floorplan();

    // Per-unit activity, straight from the tables.
    println!("per-module activity:");
    for unit in 0..rtl.num_modules() {
        let stats = tables.enable_stats(&ModuleSet::with_modules(rtl.num_modules(), [unit]));
        println!(
            "  module {unit:2}: P = {:.2}, P_tr = {:.3}",
            stats.signal, stats.transition
        );
    }

    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), die);
    let buffered = evaluate_buffered(&build_buffered_tree(&tech, &sinks, config.source())?, &tech);
    let routing = route_gated(&sinks, &tables, &config)?;
    let gated = evaluate(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        DeviceRole::Gate,
    );

    // Pick the best reduction strength like a designer reading Fig. 5.
    let star = die.half_perimeter() / 8.0;
    let best = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7]
        .iter()
        .map(|&s| {
            let mask = reduce_gates_untied(
                &routing,
                &tech,
                &ReductionParams::from_strength_scaled(s, &tech, star),
            );
            let report = evaluate_with_mask(
                &routing.tree,
                &routing.node_stats,
                config.controller(),
                &tech,
                &mask,
            );
            (s, mask.iter().filter(|&&k| k).count(), report)
        })
        .min_by(|a, b| a.2.total_switched_cap.total_cmp(&b.2.total_switched_cap))
        .expect("non-empty sweep");

    println!("\nbuffered : {buffered}");
    println!("gated    : {gated}");
    println!(
        "reduced  : {} (strength {:.1}, {} controlled gates)",
        best.2, best.0, best.1
    );
    println!(
        "\nthe FP cluster idles during integer phases, so its subtree gates\n\
         stay off most cycles; the gated tree runs at {:.0}% of buffered.",
        100.0 * best.2.total_switched_cap / buffered.total_switched_cap
    );
    Ok(())
}
