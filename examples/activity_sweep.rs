//! Sweep the average module activity (the Fig. 4 experiment) on a compact
//! workload and watch the gated tree's advantage shrink as modules stay
//! busy.
//!
//! Run with: `cargo run --release -p gcr-report --example activity_sweep`
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{run_pipeline, DEFAULT_STRENGTHS};
use gcr_workloads::{Benchmark, Workload, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default();
    let bench = Benchmark::uniform(60, 15_000.0, 11);

    println!("activity   buffered pF   gated pF   reduced pF   reduced/buffered");
    for activity in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let params = WorkloadParams {
            usage_fraction: activity,
            stream_len: 10_000,
            groups: 6,
            ..WorkloadParams::default()
        };
        let w = Workload::for_benchmark(bench.clone(), &params)?;
        let r = run_pipeline(&w, &tech, DEFAULT_STRENGTHS)?;
        println!(
            "    {activity:.1}       {:7.2}    {:7.2}      {:7.2}             {:.2}",
            r.buffered.total_switched_cap,
            r.gated.total_switched_cap,
            r.reduced.total_switched_cap,
            r.reduced.total_switched_cap / r.buffered.total_switched_cap,
        );
    }
    println!("\nlow activity → deep savings; high activity → nothing left to gate.");
    Ok(())
}
