//! Scenario presets for production-length activity traces.
//!
//! The paper drives every benchmark with one 20k-cycle stream; real
//! workloads differ in *temporal texture*, which is what gate-reduction
//! decisions (§4.3) are sensitive to. Each preset fixes the knobs of a
//! [`CpuModel`] to a characteristic texture and is meant to be streamed
//! at 10⁶–10⁸ cycles through [`gcr_activity::scan_source`] — the model
//! generates incrementally, so no preset ever materializes its trace.

use gcr_activity::{ActivityError, CpuModel};

/// A named activity-trace texture at production length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivityScenario {
    /// Long quiet stretches punctuated by dense activity: very high
    /// persistence plus a few long-lived program phases. Enables toggle
    /// rarely; gate-reduction keeps most gates.
    Bursty,
    /// Many short program phases (integer loop → FP kernel → memory
    /// sweep): class-level enables stay put within a phase and flip at
    /// phase boundaries.
    PhaseChanging,
    /// Near-i.i.d. instruction draw: enables toggle almost every cycle,
    /// the worst case for controller-tree switched capacitance and the
    /// regime where gate-reduction prunes aggressively.
    LowPersistence,
}

impl ActivityScenario {
    /// All presets, in display order.
    pub const ALL: [Self; 3] = [Self::Bursty, Self::PhaseChanging, Self::LowPersistence];

    /// Stable kebab-case identifier (bench JSON keys, CLI arguments).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Bursty => "bursty",
            Self::PhaseChanging => "phase-changing",
            Self::LowPersistence => "low-persistence",
        }
    }

    /// One-line description for reports.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Self::Bursty => "persistence 0.95, 4 phases of ~10k cycles",
            Self::PhaseChanging => "persistence 0.60, 8 phases of ~2k cycles",
            Self::LowPersistence => "persistence 0.05, no phases",
        }
    }

    /// Resolves a [`Self::name`] back to the preset.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Builds the scenario's CPU model over `modules` modules. Stream the
    /// trace with [`CpuModel::trace_source`] at any length.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuModel`] builder errors (only reachable with
    /// degenerate inputs such as `modules == 0`).
    pub fn model(self, modules: usize, seed: u64) -> Result<CpuModel, ActivityError> {
        let builder = CpuModel::builder(modules)
            .instructions(32)
            .usage_fraction(0.4)
            .seed(seed);
        match self {
            Self::Bursty => builder
                .persistence(0.95)
                .groups(8)
                .phases(4)
                .phase_length(10_000)
                .build(),
            Self::PhaseChanging => builder
                .persistence(0.6)
                .groups(16)
                .phases(8)
                .phase_length(2_000)
                .build(),
            Self::LowPersistence => builder.persistence(0.05).groups(16).build(),
        }
    }
}

impl std::fmt::Display for ActivityScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_activity::{ActivityTables, ModuleSet, ScanParams, ScanScratch, TraceSource};

    #[test]
    fn names_round_trip() {
        for s in ActivityScenario::ALL {
            assert_eq!(ActivityScenario::from_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(ActivityScenario::from_name("nope"), None);
    }

    #[test]
    fn scenarios_order_toggle_rates_as_advertised() {
        // Transition probability of a module group must rank
        // bursty < phase-changing < low-persistence.
        let toggle = |s: ActivityScenario| {
            let model = s.model(64, 7).unwrap();
            let stream = model.generate_stream(40_000);
            let tables = ActivityTables::scan(model.rtl(), &stream);
            let set = ModuleSet::with_modules(64, [0, 8, 16]);
            tables.enable_stats(&set).transition
        };
        let (b, p, l) = (
            toggle(ActivityScenario::Bursty),
            toggle(ActivityScenario::PhaseChanging),
            toggle(ActivityScenario::LowPersistence),
        );
        assert!(
            b < p,
            "bursty {b} should toggle less than phase-changing {p}"
        );
        assert!(
            p < l,
            "phase-changing {p} should toggle less than low-persistence {l}"
        );
    }

    #[test]
    fn scenario_sources_stream_without_materializing() {
        // A scenario trace streamed through scan_source must match the
        // sequential scan of the materialized stream bit for bit.
        let model = ActivityScenario::Bursty.model(48, 11).unwrap();
        let len = 30_000usize;
        let oracle = ActivityTables::scan(model.rtl(), &model.generate_stream(len));
        let mut source = model.trace_source(len as u64);
        assert_eq!(source.len_hint(), Some(len as u64));
        let mut scratch = ScanScratch::new();
        let params = ScanParams {
            threads: Some(2),
            chunk_cycles: 4_096,
            ..ScanParams::default()
        };
        let (tables, profile) =
            gcr_activity::scan_source(model.rtl(), &mut source, &params, &mut scratch).unwrap();
        assert_eq!(tables.ift(), oracle.ift());
        assert_eq!(tables.itmatt(), oracle.itmatt());
        assert_eq!(profile.cycles, len as u64);
    }
}
