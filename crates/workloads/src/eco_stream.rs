//! Deterministic ECO edit-stream synthesis.
//!
//! Production flows re-route after long streams of small engineering
//! change orders; this module generates such streams against a benchmark
//! design so the incremental engine (`gcr_cts::eco`) can be exercised,
//! verified and benchmarked on reproducible inputs. Every batch in a
//! stream is **valid by construction** against the design state left by
//! the batches before it (indices in range, no sink edited twice in one
//! batch, never removing the last sink), and the whole stream is a pure
//! function of the seed and parameters.

use gcr_cts::{plan_eco_leaves, EcoEdit, Sink};
use gcr_geometry::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic ECO stream: how many batches, how many edits per
/// batch, and the relative frequency of each edit kind. The defaults
/// model a placement-refinement session — mostly small moves, occasional
/// adds/removes, and activity-table swaps at twice the structural-churn
/// rate (activity changes far more often than geometry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcoStreamParams {
    /// Number of edit batches in the stream.
    pub batches: usize,
    /// Edits per batch.
    pub batch_size: usize,
    /// Relative weight of `MoveSink` edits.
    pub move_weight: u32,
    /// Relative weight of `AddSink` edits.
    pub add_weight: u32,
    /// Relative weight of `RemoveSink` edits.
    pub remove_weight: u32,
    /// Relative weight of `SwapActivity` edits.
    pub swap_weight: u32,
    /// Seed of the stream (independent of the workload seed).
    pub seed: u64,
}

impl Default for EcoStreamParams {
    fn default() -> Self {
        Self {
            batches: 16,
            batch_size: 1,
            move_weight: 6,
            add_weight: 1,
            remove_weight: 1,
            swap_weight: 4,
            seed: 1998,
        }
    }
}

impl EcoStreamParams {
    /// The benchmark headline scenario: a stream of single-sink moves
    /// (the canonical small ECO), no structural or activity churn.
    #[must_use]
    pub fn single_sink_moves(batches: usize, seed: u64) -> Self {
        Self {
            batches,
            batch_size: 1,
            move_weight: 1,
            add_weight: 0,
            remove_weight: 0,
            swap_weight: 0,
            seed,
        }
    }

    /// The same parameters with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same parameters with a different batch shape.
    #[must_use]
    pub fn with_batches(mut self, batches: usize, batch_size: usize) -> Self {
        self.batches = batches;
        self.batch_size = batch_size;
        self
    }
}

/// Generates a deterministic ECO edit stream against a design of
/// `sinks` gated by `num_modules` activity-model modules on `die`.
/// Batch `k` is valid against the design state after batches `0..k`
/// (apply them in order with [`gcr_cts::plan_eco_leaves`] or
/// `gcr_core::route_gated_eco`); moved and added sinks stay inside the
/// die, move distances are a few percent of the die extent (a local
/// refinement, not a re-floorplan), and added sinks draw loads from the
/// benchmark range 0.02–0.08 pF.
///
/// # Panics
///
/// Panics when `sinks` is empty, `num_modules` is zero, or every edit
/// weight is zero.
#[must_use]
#[expect(
    clippy::expect_used,
    reason = "batches are valid against the evolving state by construction"
)]
pub fn generate_eco_stream(
    sinks: &[Sink],
    die: BBox,
    num_modules: usize,
    params: &EcoStreamParams,
) -> Vec<Vec<EcoEdit>> {
    assert!(!sinks.is_empty(), "edit stream needs a non-empty design");
    assert!(num_modules > 0, "edit stream needs at least one module");
    let total_weight =
        params.move_weight + params.add_weight + params.remove_weight + params.swap_weight;
    assert!(
        total_weight > 0,
        "at least one edit weight must be positive"
    );
    let mut rng = StdRng::seed_from_u64(params.seed ^ (sinks.len() as u64));
    let extent = (die.max().x - die.min().x).max(die.max().y - die.min().y);
    let reach = extent * 0.05;
    let mut current: Vec<Sink> = sinks.to_vec();
    let mut stream = Vec::with_capacity(params.batches);
    // Scratch: which current sinks this batch already edits.
    let mut used = Vec::new();
    for _ in 0..params.batches {
        let mut batch = Vec::with_capacity(params.batch_size);
        used.clear();
        used.resize(current.len(), false);
        let mut removes = 0usize;
        for _ in 0..params.batch_size {
            let mut kind = rng.gen_range(0..total_weight);
            // Structural edits need an unedited victim; when the batch
            // has consumed every sink, degrade to an activity swap.
            let free = used.iter().filter(|&&u| !u).count();
            if free == 0 {
                kind = u32::MAX;
            }
            let pick_free = |rng: &mut StdRng, used: &mut [bool]| -> usize {
                let mut i = rng.gen_range(0..used.len());
                while used[i] {
                    i = (i + 1) % used.len();
                }
                used[i] = true;
                i
            };
            if kind < params.move_weight {
                let index = pick_free(&mut rng, &mut used);
                let from = current[index].location();
                let clamp = |v: f64, lo: f64, hi: f64| v.max(lo).min(hi);
                let to = Point::new(
                    clamp(
                        from.x + rng.gen_range(-reach..reach),
                        die.min().x,
                        die.max().x,
                    ),
                    clamp(
                        from.y + rng.gen_range(-reach..reach),
                        die.min().y,
                        die.max().y,
                    ),
                );
                batch.push(EcoEdit::MoveSink { index, to });
            } else if kind < params.move_weight + params.add_weight {
                let sink = Sink::new(
                    Point::new(
                        rng.gen_range(die.min().x..die.max().x),
                        rng.gen_range(die.min().y..die.max().y),
                    ),
                    rng.gen_range(0.02..0.08),
                );
                let module = rng.gen_range(0..num_modules);
                batch.push(EcoEdit::AddSink { sink, module });
            } else if kind < params.move_weight + params.add_weight + params.remove_weight
                && current.len() - removes > 1
            {
                let index = pick_free(&mut rng, &mut used);
                removes += 1;
                batch.push(EcoEdit::RemoveSink { index });
            } else {
                let module = rng.gen_range(0..num_modules);
                batch.push(EcoEdit::SwapActivity { module });
            }
        }
        let plan = plan_eco_leaves(current.len(), &batch)
            .expect("generated batch must be valid against the evolving design");
        current = plan.new_sinks(&current);
        stream.push(batch);
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TsayBenchmark};

    fn design() -> Benchmark {
        Benchmark::tsay(TsayBenchmark::R1, 1998)
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let b = design();
        let params = EcoStreamParams::default().with_batches(12, 3);
        let s1 = generate_eco_stream(&b.sinks, b.die, b.sinks.len(), &params);
        let s2 = generate_eco_stream(&b.sinks, b.die, b.sinks.len(), &params);
        assert_eq!(s1, s2);
        let s3 = generate_eco_stream(&b.sinks, b.die, b.sinks.len(), &params.with_seed(7));
        assert_ne!(s1, s3);
    }

    #[test]
    fn every_batch_applies_cleanly_in_order() {
        let b = design();
        let params = EcoStreamParams {
            batches: 30,
            batch_size: 4,
            ..EcoStreamParams::default()
        };
        let stream = generate_eco_stream(&b.sinks, b.die, b.sinks.len(), &params);
        assert_eq!(stream.len(), 30);
        let mut sinks = b.sinks.clone();
        for batch in &stream {
            assert_eq!(batch.len(), 4);
            let plan = plan_eco_leaves(sinks.len(), batch).expect("valid batch");
            sinks = plan.new_sinks(&sinks);
            assert!(!sinks.is_empty());
            for s in &sinks {
                assert!(b.die.contains(s.location()));
            }
        }
    }

    #[test]
    fn single_sink_move_preset_emits_only_moves() {
        let b = design();
        let params = EcoStreamParams::single_sink_moves(8, 42);
        let stream = generate_eco_stream(&b.sinks, b.die, b.sinks.len(), &params);
        assert_eq!(stream.len(), 8);
        for batch in &stream {
            assert_eq!(batch.len(), 1);
            assert!(matches!(batch[0], EcoEdit::MoveSink { .. }));
        }
    }

    #[test]
    fn mixed_stream_exercises_every_edit_kind() {
        let b = design();
        let params = EcoStreamParams {
            batches: 60,
            batch_size: 2,
            move_weight: 1,
            add_weight: 1,
            remove_weight: 1,
            swap_weight: 1,
            seed: 5,
        };
        let stream = generate_eco_stream(&b.sinks, b.die, b.sinks.len(), &params);
        let all: Vec<&EcoEdit> = stream.iter().flatten().collect();
        assert!(all.iter().any(|e| matches!(e, EcoEdit::MoveSink { .. })));
        assert!(all.iter().any(|e| matches!(e, EcoEdit::AddSink { .. })));
        assert!(all.iter().any(|e| matches!(e, EcoEdit::RemoveSink { .. })));
        assert!(all
            .iter()
            .any(|e| matches!(e, EcoEdit::SwapActivity { .. })));
    }

    #[test]
    fn tiny_designs_never_remove_the_last_sink() {
        let tiny = [Sink::new(Point::new(10.0, 10.0), 0.05)];
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let params = EcoStreamParams {
            batches: 10,
            batch_size: 2,
            move_weight: 0,
            add_weight: 0,
            remove_weight: 1,
            swap_weight: 1,
            seed: 3,
        };
        let stream = generate_eco_stream(&tiny, die, 4, &params);
        // With one sink, removals degrade to swaps; the stream stays valid.
        let mut n = 1usize;
        for batch in &stream {
            let plan = plan_eco_leaves(n, batch).expect("valid batch");
            n = plan.num_new_leaves;
            assert!(n >= 1);
        }
    }
}
