use std::fmt;

use gcr_activity::{ActivityError, ActivityTables, CpuModel, InstructionStream, StreamStats};

use crate::{Benchmark, TsayBenchmark};

/// Parameters of the synthetic CPU activity model driving a benchmark —
/// the knobs of Table 4 and the sweep axes of Figures 4 and 5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Number of instructions in the synthetic ISA (Table 4's instruction
    /// column; default 32).
    pub instructions: usize,
    /// Average fraction of modules each instruction uses (Table 4's
    /// `Ave(M(I))` ≈ 40 %; the Fig. 4 sweep axis).
    pub usage_fraction: f64,
    /// Probability that the next cycle repeats the current instruction
    /// (controls enable toggle rates and hence `W(S)`).
    pub persistence: f64,
    /// Instruction stream length ("the length of the instruction stream
    /// was 20 thousands for all the benchmarks").
    pub stream_len: usize,
    /// Number of functional groups: modules within a group are co-active
    /// and co-located (see [`gcr_activity::CpuModelBuilder::groups`] and
    /// [`Benchmark::tsay_clustered`]); 0 disables both correlations.
    pub groups: usize,
    /// Seed for both the CPU model and the stream.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            instructions: 32,
            usage_fraction: 0.4,
            persistence: 0.75,
            stream_len: 20_000,
            groups: 16,
            seed: 1998,
        }
    }
}

impl WorkloadParams {
    /// A fast preset for benchmark harnesses and CI smoke runs: the
    /// paper's activity model with a much shorter instruction stream.
    /// Probabilities are noisier than the 20k-cycle default but every
    /// derived quantity stays well-defined, which is all a perf baseline
    /// needs.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            stream_len: 2_000,
            ..Self::default()
        }
    }

    /// The same parameters with a different average module activity — the
    /// Fig. 4 sweep.
    #[must_use]
    pub fn with_usage_fraction(mut self, f: f64) -> Self {
        self.usage_fraction = f;
        self
    }

    /// The same parameters with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same parameters with a different instruction count.
    #[must_use]
    pub fn with_instructions(mut self, k: usize) -> Self {
        self.instructions = k;
        self
    }

    /// The same parameters with a different Markov persistence.
    #[must_use]
    pub fn with_persistence(mut self, p: f64) -> Self {
        self.persistence = p;
        self
    }

    /// The same parameters with a different stream length.
    #[must_use]
    pub fn with_stream_len(mut self, len: usize) -> Self {
        self.stream_len = len;
        self
    }

    /// The same parameters with a different functional-group count.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }
}

/// A complete experiment input: benchmark geometry plus the activity
/// tables and stream statistics derived from a generated instruction
/// stream.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Sink set and die.
    pub benchmark: Benchmark,
    /// IFT/ITMATT bundle for probability queries.
    pub tables: ActivityTables,
    /// Table-4 style stream statistics.
    pub stats: StreamStats,
    /// The parameters the workload was generated with.
    pub params: WorkloadParams,
}

/// Sink counts up to this run the paper's one-module-per-sink model
/// verbatim (covers all of r1–r5).
pub const MODULE_IDENTITY_LIMIT: usize = 4_096;

/// Module count used above [`MODULE_IDENTITY_LIMIT`]: the scale
/// benchmarks (r6–r8) gate many sinks per module, like a real design
/// where a module drives a whole register bank. Keeping the module space
/// bounded keeps the per-node module-set words (and the activity tables)
/// O(sinks), not O(sinks²).
pub const CLAMPED_MODULES: usize = 1_024;

impl Workload {
    /// Number of activity-model modules used for `num_sinks` sinks: one
    /// per sink up to [`MODULE_IDENTITY_LIMIT`], then clamped to
    /// [`CLAMPED_MODULES`].
    #[must_use]
    pub fn num_modules_for(num_sinks: usize) -> usize {
        if num_sinks <= MODULE_IDENTITY_LIMIT {
            num_sinks
        } else {
            CLAMPED_MODULES
        }
    }

    /// The sink→module gating map matching this workload's tables:
    /// the identity when the model has one module per sink, otherwise
    /// sink `i` gates on module `i mod modules` (sinks of one module
    /// stay co-located under clustered placement, which assigns cluster
    /// `i % clusters` the same way).
    #[must_use]
    pub fn module_of(&self) -> Vec<usize> {
        let modules = self.tables.rtl().num_modules();
        (0..self.benchmark.sinks.len())
            .map(|i| i % modules)
            .collect()
    }

    /// Generates the workload for a Tsay benchmark: synthesized sinks plus
    /// a CPU model with one module per sink (clamped on the scale
    /// benchmarks — see [`Workload::num_modules_for`]).
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError`] when the parameters are out of range
    /// (e.g. `usage_fraction` not in (0, 1]).
    pub fn generate(which: TsayBenchmark, params: &WorkloadParams) -> Result<Self, ActivityError> {
        Self::generate_traced(which, params, &gcr_trace::Tracer::disabled())
    }

    /// [`Workload::generate`] with workload-synthesis spans recorded on
    /// `tracer`.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError`] when the parameters are out of range.
    pub fn generate_traced(
        which: TsayBenchmark,
        params: &WorkloadParams,
        tracer: &gcr_trace::Tracer,
    ) -> Result<Self, ActivityError> {
        let benchmark = if params.groups > 0 {
            Benchmark::tsay_clustered(which, params.seed, params.groups)
        } else {
            Benchmark::tsay(which, params.seed)
        };
        Self::for_benchmark_traced(benchmark, params, tracer)
    }

    /// Generates the activity side of a workload for an arbitrary
    /// benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError`] when the parameters are out of range.
    pub fn for_benchmark(
        benchmark: Benchmark,
        params: &WorkloadParams,
    ) -> Result<Self, ActivityError> {
        Self::for_benchmark_traced(benchmark, params, &gcr_trace::Tracer::disabled())
    }

    /// [`Workload::for_benchmark`] with workload-synthesis spans recorded
    /// on `tracer`: `workload.generate` wraps model construction, stream
    /// generation and the [`ActivityTables`] scan (whose `activity.*`
    /// spans nest underneath).
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError`] when the parameters are out of range.
    pub fn for_benchmark_traced(
        benchmark: Benchmark,
        params: &WorkloadParams,
        tracer: &gcr_trace::Tracer,
    ) -> Result<Self, ActivityError> {
        let _generate = tracer.span("workload.generate");
        let model = {
            let _span = tracer.span("workload.model");
            CpuModel::builder(Self::num_modules_for(benchmark.sinks.len()))
                .instructions(params.instructions)
                .usage_fraction(params.usage_fraction)
                .persistence(params.persistence)
                .groups(params.groups)
                .seed(params.seed)
                .build()?
        };
        let stream: InstructionStream = {
            let _span = tracer.span("workload.stream");
            model.generate_stream(params.stream_len)
        };
        let tables = ActivityTables::scan_traced(model.rtl(), &stream, tracer);
        let stats = {
            let _span = tracer.span("workload.stats");
            StreamStats::collect(model.rtl(), &stream)
        };
        tracer.counter("workload.sinks", benchmark.sinks.len() as f64);
        Ok(Self {
            benchmark,
            tables,
            stats,
            params: *params,
        })
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.benchmark, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = WorkloadParams::default();
        assert_eq!(p.instructions, 32);
        assert_eq!(p.stream_len, 20_000);
        assert!((p.usage_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn workload_ties_modules_to_sinks() {
        let params = WorkloadParams {
            stream_len: 2_000,
            ..WorkloadParams::default()
        };
        let w = Workload::generate(TsayBenchmark::R1, &params).unwrap();
        assert_eq!(w.benchmark.sinks.len(), 267);
        assert_eq!(w.tables.rtl().num_modules(), 267);
        assert_eq!(w.stats.num_cycles, 2_000);
        // Table 4: "about 40% of the modules are active at any given time".
        assert!(
            (w.stats.avg_module_activity - 0.4).abs() < 0.12,
            "avg activity {}",
            w.stats.avg_module_activity
        );
        // One module per sink at published sizes: the map is the identity.
        assert_eq!(w.module_of(), (0..267).collect::<Vec<_>>());
    }

    #[test]
    fn module_count_clamps_at_scale() {
        assert_eq!(Workload::num_modules_for(267), 267);
        assert_eq!(Workload::num_modules_for(MODULE_IDENTITY_LIMIT), 4_096);
        assert_eq!(Workload::num_modules_for(30_000), CLAMPED_MODULES);
        assert_eq!(Workload::num_modules_for(1_000_000), CLAMPED_MODULES);
        // A clamped workload's map wraps and never references a module
        // the tables don't have.
        let params = WorkloadParams::smoke();
        let bench = Benchmark::uniform(MODULE_IDENTITY_LIMIT + 5, 1_000.0, 3);
        let w = Workload::for_benchmark(bench, &params).unwrap();
        assert_eq!(w.tables.rtl().num_modules(), CLAMPED_MODULES);
        let map = w.module_of();
        assert_eq!(map.len(), MODULE_IDENTITY_LIMIT + 5);
        assert_eq!(map[CLAMPED_MODULES], 0);
        assert!(map.iter().all(|&m| m < CLAMPED_MODULES));
    }

    #[test]
    fn smoke_preset_only_shortens_the_stream() {
        let smoke = WorkloadParams::smoke();
        let full = WorkloadParams::default();
        assert!(smoke.stream_len < full.stream_len);
        assert_eq!(
            WorkloadParams {
                stream_len: full.stream_len,
                ..smoke
            },
            full
        );
        let w = Workload::generate(TsayBenchmark::R1, &smoke).unwrap();
        assert_eq!(w.stats.num_cycles, smoke.stream_len);
    }

    #[test]
    fn builder_style_setters() {
        let p = WorkloadParams::default()
            .with_instructions(8)
            .with_persistence(0.5)
            .with_stream_len(1_234)
            .with_groups(2)
            .with_seed(9)
            .with_usage_fraction(0.2);
        assert_eq!(p.instructions, 8);
        assert_eq!(p.persistence, 0.5);
        assert_eq!(p.stream_len, 1_234);
        assert_eq!(p.groups, 2);
        assert_eq!(p.seed, 9);
        assert_eq!(p.usage_fraction, 0.2);
    }

    #[test]
    fn usage_sweep_moves_average_activity() {
        let base = WorkloadParams {
            stream_len: 2_000,
            ..WorkloadParams::default()
        };
        let lo = Workload::generate(TsayBenchmark::R1, &base.with_usage_fraction(0.1)).unwrap();
        let hi = Workload::generate(TsayBenchmark::R1, &base.with_usage_fraction(0.8)).unwrap();
        assert!(lo.stats.avg_module_activity < 0.2);
        assert!(hi.stats.avg_module_activity > 0.6);
    }

    #[test]
    fn invalid_params_bubble_up() {
        let params = WorkloadParams::default().with_usage_fraction(0.0);
        assert!(Workload::generate(TsayBenchmark::R1, &params).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadParams {
            stream_len: 1_000,
            ..WorkloadParams::default()
        };
        let a = Workload::generate(TsayBenchmark::R1, &p).unwrap();
        let b = Workload::generate(TsayBenchmark::R1, &p).unwrap();
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.stats, b.stats);
        let c = Workload::generate(TsayBenchmark::R1, &p.with_seed(7)).unwrap();
        assert_ne!(a.benchmark, c.benchmark);
    }

    #[test]
    fn display_summarizes() {
        let p = WorkloadParams {
            stream_len: 500,
            ..WorkloadParams::default()
        };
        let w = Workload::generate(TsayBenchmark::R1, &p).unwrap();
        let s = format!("{w}");
        assert!(s.contains("r1") && s.contains('%'));
    }
}
