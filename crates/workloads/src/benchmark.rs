use std::fmt;

use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The five benchmarks of Tsay's zero-skew suite used in §5, identified by
/// their published sink counts, plus three synthetic scale extensions
/// (r6–r8) that keep the suite's constant sink density while growing the
/// instance to ~30k, ~300k and 1M sinks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TsayBenchmark {
    /// 267 sinks.
    R1,
    /// 598 sinks.
    R2,
    /// 862 sinks.
    R3,
    /// 1903 sinks.
    R4,
    /// 3101 sinks.
    R5,
    /// 30 000 sinks (synthetic scale extension).
    R6,
    /// 300 000 sinks (synthetic scale extension).
    R7,
    /// 1 000 000 sinks (synthetic scale extension).
    R8,
}

impl TsayBenchmark {
    /// The five published benchmarks, in order. Scale extensions live in
    /// [`Self::SCALED`] so that suite-wide defaults (CI audits, the full
    /// bench run) stay at the paper's published sizes.
    pub const ALL: [TsayBenchmark; 5] = [
        TsayBenchmark::R1,
        TsayBenchmark::R2,
        TsayBenchmark::R3,
        TsayBenchmark::R4,
        TsayBenchmark::R5,
    ];

    /// The synthetic scale extensions, in order. Opt-in: these are
    /// requested by name, never swept by default.
    pub const SCALED: [TsayBenchmark; 3] =
        [TsayBenchmark::R6, TsayBenchmark::R7, TsayBenchmark::R8];

    /// The published (r1–r5) or synthetic (r6–r8) sink count.
    #[must_use]
    pub fn num_sinks(self) -> usize {
        match self {
            TsayBenchmark::R1 => 267,
            TsayBenchmark::R2 => 598,
            TsayBenchmark::R3 => 862,
            TsayBenchmark::R4 => 1903,
            TsayBenchmark::R5 => 3101,
            TsayBenchmark::R6 => 30_000,
            TsayBenchmark::R7 => 300_000,
            TsayBenchmark::R8 => 1_000_000,
        }
    }

    /// The benchmark's conventional name (`"r1"` … `"r8"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TsayBenchmark::R1 => "r1",
            TsayBenchmark::R2 => "r2",
            TsayBenchmark::R3 => "r3",
            TsayBenchmark::R4 => "r4",
            TsayBenchmark::R5 => "r5",
            TsayBenchmark::R6 => "r6",
            TsayBenchmark::R7 => "r7",
            TsayBenchmark::R8 => "r8",
        }
    }

    /// Synthetic die side: sink density is held constant across the suite
    /// (side ∝ √N, anchored at 30 000 λ for r1).
    #[must_use]
    pub fn die_side(self) -> f64 {
        30_000.0 * (self.num_sinks() as f64 / 267.0).sqrt()
    }
}

impl fmt::Display for TsayBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A routable benchmark instance: named sink set plus die outline.
#[derive(Clone, Debug, PartialEq)]
pub struct Benchmark {
    /// Conventional name (`"r1"` …).
    pub name: String,
    /// Sink locations and loads; sink `i` is module `i`.
    pub sinks: Vec<Sink>,
    /// The die outline (controller partitioning, clock source placement).
    pub die: BBox,
}

impl Benchmark {
    /// Synthesizes a Tsay-suite benchmark: `which.num_sinks()` sinks
    /// placed uniformly at random over the √N-scaled die, loads drawn
    /// uniformly from 0.02–0.08 pF (the range of the zero-skew
    /// literature). Deterministic in `seed`.
    #[must_use]
    pub fn tsay(which: TsayBenchmark, seed: u64) -> Self {
        let side = which.die_side();
        let mut rng = StdRng::seed_from_u64(seed ^ (which.num_sinks() as u64));
        let sinks = (0..which.num_sinks())
            .map(|_| {
                let x = rng.gen_range(0.0..side);
                let y = rng.gen_range(0.0..side);
                let cap = rng.gen_range(0.02..0.08);
                Sink::new(Point::new(x, y), cap)
            })
            .collect();
        Self {
            name: which.name().to_owned(),
            sinks,
            die: BBox::new(Point::new(0.0, 0.0), Point::new(side, side)),
        }
    }

    /// Synthesizes a Tsay-suite benchmark whose sinks form `clusters`
    /// spatial clusters, with sink `i` in cluster `i % clusters` — a
    /// floorplanned layout where functionally related modules (same
    /// activity group in [`gcr_activity::CpuModel`]) sit together.
    ///
    /// Cluster centers are placed uniformly at random, with a margin so
    /// clusters stay on-die; members scatter uniformly within a square of
    /// side `die_side / √clusters` around their center.
    ///
    /// # Panics
    ///
    /// Panics if `clusters == 0`.
    #[must_use]
    pub fn tsay_clustered(which: TsayBenchmark, seed: u64, clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let side = which.die_side();
        let mut rng = StdRng::seed_from_u64(seed ^ (which.num_sinks() as u64) ^ 0xC1D5);
        let spread = side / (clusters as f64).sqrt();
        // Cluster `g` of a >=4-cluster benchmark lives in die quadrant
        // `g % 4`, matching the activity model's supergroup structure —
        // functionally related logic is floorplanned together.
        let sample_in = |rng: &mut StdRng, lo: f64, hi: f64| {
            let margin = (spread / 2.0).min((hi - lo) / 2.0 - 1e-9).max(0.0);
            if lo + margin < hi - margin {
                rng.gen_range(lo + margin..hi - margin)
            } else {
                (lo + hi) / 2.0
            }
        };
        let half = side / 2.0;
        let centers: Vec<Point> = (0..clusters)
            .map(|g| {
                let (x0, y0) = if clusters >= 4 {
                    match g % 4 {
                        0 => (0.0, 0.0),
                        1 => (half, 0.0),
                        2 => (0.0, half),
                        _ => (half, half),
                    }
                } else {
                    (0.0, 0.0)
                };
                let (x1, y1) = if clusters >= 4 {
                    (x0 + half, y0 + half)
                } else {
                    (side, side)
                };
                let x = sample_in(&mut rng, x0, x1);
                let y = sample_in(&mut rng, y0, y1);
                Point::new(x, y)
            })
            .collect();
        let sinks = (0..which.num_sinks())
            .map(|i| {
                let c = centers[i % clusters];
                let x = c.x + rng.gen_range(-spread / 2.0..spread / 2.0);
                let y = c.y + rng.gen_range(-spread / 2.0..spread / 2.0);
                Sink::new(Point::new(x, y), rng.gen_range(0.02..0.08))
            })
            .collect();
        Self {
            name: which.name().to_owned(),
            sinks,
            die: BBox::new(Point::new(0.0, 0.0), Point::new(side, side)),
        }
    }

    /// A small uniform benchmark for examples and quick tests.
    ///
    /// # Panics
    ///
    /// Panics if `num_sinks` is zero.
    #[must_use]
    pub fn uniform(num_sinks: usize, side: f64, seed: u64) -> Self {
        assert!(num_sinks > 0, "benchmark needs at least one sink");
        let mut rng = StdRng::seed_from_u64(seed);
        let sinks = (0..num_sinks)
            .map(|_| {
                Sink::new(
                    Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                    rng.gen_range(0.02..0.08),
                )
            })
            .collect();
        Self {
            name: format!("uniform{num_sinks}"),
            sinks,
            die: BBox::new(Point::new(0.0, 0.0), Point::new(side, side)),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} sinks, {:.0}λ die)",
            self.name,
            self.sinks.len(),
            self.die.width()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_sink_counts() {
        let counts: Vec<usize> = TsayBenchmark::ALL.iter().map(|b| b.num_sinks()).collect();
        assert_eq!(counts, vec![267, 598, 862, 1903, 3101]);
    }

    #[test]
    fn benchmark_is_deterministic_and_in_die() {
        let a = Benchmark::tsay(TsayBenchmark::R1, 42);
        let b = Benchmark::tsay(TsayBenchmark::R1, 42);
        assert_eq!(a, b);
        assert_eq!(a.sinks.len(), 267);
        for s in &a.sinks {
            assert!(a.die.contains(s.location()));
            assert!((0.02..0.08).contains(&s.cap()));
        }
        let c = Benchmark::tsay(TsayBenchmark::R1, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn density_is_constant_across_suite() {
        let density = |b: TsayBenchmark| b.num_sinks() as f64 / (b.die_side() * b.die_side());
        let d1 = density(TsayBenchmark::R1);
        for b in TsayBenchmark::ALL.into_iter().chain(TsayBenchmark::SCALED) {
            assert!((density(b) - d1).abs() / d1 < 1e-9, "{b} density differs");
        }
    }

    #[test]
    fn scaled_extensions_are_separate_from_the_published_suite() {
        let counts: Vec<usize> = TsayBenchmark::SCALED
            .iter()
            .map(|b| b.num_sinks())
            .collect();
        assert_eq!(counts, vec![30_000, 300_000, 1_000_000]);
        let names: Vec<&str> = TsayBenchmark::SCALED.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["r6", "r7", "r8"]);
        for b in TsayBenchmark::SCALED {
            assert!(!TsayBenchmark::ALL.contains(&b), "{b} must stay opt-in");
        }
    }

    #[test]
    fn uniform_benchmark() {
        let b = Benchmark::uniform(10, 1000.0, 7);
        assert_eq!(b.sinks.len(), 10);
        assert_eq!(b.die.width(), 1000.0);
        assert!(format!("{b}").contains("10 sinks"));
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_sinks_panics() {
        let _ = Benchmark::uniform(0, 100.0, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(TsayBenchmark::R3.to_string(), "r3");
        assert!(Benchmark::tsay(TsayBenchmark::R2, 0)
            .to_string()
            .contains("r2"));
    }
}
