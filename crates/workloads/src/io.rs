//! Plain-text import/export of sink sets, shared by the `gcr` CLI and any
//! external placement flow.
//!
//! Format: one `x y cap_pf` triple per line; blank lines and `#` comments
//! are ignored. Sink `i` is module `i` of the activity model.

use std::fmt::Write as _;

use gcr_cts::Sink;
use gcr_geometry::Point;

/// Error from parsing a sink file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSinksError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ParseSinksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.reason)
        } else {
            write!(f, "line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for ParseSinksError {}

/// Parses a sink list from the text format above.
///
/// # Errors
///
/// Returns [`ParseSinksError`] for malformed lines, non-finite values,
/// negative capacitances, or an empty file.
pub fn parse_sinks(text: &str) -> Result<Vec<Sink>, ParseSinksError> {
    let mut sinks = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut parts = line.split_whitespace();
        let mut num = |name: &str| -> Result<f64, ParseSinksError> {
            let tok = parts.next().ok_or_else(|| ParseSinksError {
                line: lineno,
                reason: format!("missing {name}"),
            })?;
            let v: f64 = tok.parse().map_err(|e| ParseSinksError {
                line: lineno,
                reason: format!("{name}: {e}"),
            })?;
            if !v.is_finite() {
                return Err(ParseSinksError {
                    line: lineno,
                    reason: format!("{name} is not finite"),
                });
            }
            Ok(v)
        };
        let (x, y, cap) = (num("x")?, num("y")?, num("cap")?);
        if cap < 0.0 {
            return Err(ParseSinksError {
                line: lineno,
                reason: format!("negative cap {cap}"),
            });
        }
        if parts.next().is_some() {
            return Err(ParseSinksError {
                line: lineno,
                reason: "trailing tokens after `x y cap`".into(),
            });
        }
        sinks.push(Sink::new(Point::new(x, y), cap));
    }
    if sinks.is_empty() {
        return Err(ParseSinksError {
            line: 0,
            reason: "no sinks in file".into(),
        });
    }
    Ok(sinks)
}

/// Serializes sinks to the text format (round-trips through
/// [`parse_sinks`]).
#[must_use]
pub fn format_sinks(sinks: &[Sink]) -> String {
    let mut out = String::from("# x y cap_pf — sink i is module i\n");
    for s in sinks {
        let _ = writeln!(out, "{} {} {}", s.location().x, s.location().y, s.cap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TsayBenchmark};

    #[test]
    fn parse_and_format_round_trip() {
        let bench = Benchmark::tsay(TsayBenchmark::R1, 7);
        let text = format_sinks(&bench.sinks);
        let back = parse_sinks(&text).unwrap();
        assert_eq!(back.len(), bench.sinks.len());
        for (a, b) in back.iter().zip(&bench.sinks) {
            assert!((a.location().x - b.location().x).abs() < 1e-9);
            assert!((a.location().y - b.location().y).abs() < 1e-9);
            assert!((a.cap() - b.cap()).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blanks() {
        let s = parse_sinks("# header\n\n 1 2 0.05 # trailing\n").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].cap(), 0.05);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_sinks("1 2 0.05\n3 4\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        let e = parse_sinks("1 2 -0.05\n").unwrap_err();
        assert!(e.reason.contains("negative"));
        let e = parse_sinks("1 2 0.05 99\n").unwrap_err();
        assert!(e.reason.contains("trailing"));
        let e = parse_sinks("x y z\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_sinks("# only comments\n").unwrap_err();
        assert_eq!(e.line, 0);
        let e = parse_sinks("1 2 inf\n").unwrap_err();
        assert!(e.reason.contains("finite"));
    }
}
