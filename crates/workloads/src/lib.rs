//! Benchmarks and CPU activity models for the gated-clock-routing
//! experiments.
//!
//! The paper evaluates on the `r1`–`r5` sink sets of Tsay's zero-skew
//! benchmark suite \[6\] and drives them with instruction streams "generated
//! according to a probabilistic model of the CPU when it executes typical
//! programs" (§5, Table 4). The original sink placement files are not
//! publicly archived, so this crate *synthesizes* benchmarks with the
//! published sink counts (r1 = 267 … r5 = 3101), uniform placement over a
//! √N-scaled die, and seeded determinism — the geometric statistics the
//! router's trade-offs depend on (nearest-neighbor distances, star-edge
//! lengths ≈ D/4) are preserved. See `DESIGN.md` §2 for the substitution
//! argument.
//!
//! # Example
//!
//! ```
//! use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};
//!
//! let w = Workload::generate(TsayBenchmark::R1, &WorkloadParams::default())?;
//! assert_eq!(w.benchmark.sinks.len(), 267);
//! assert!((w.stats.avg_module_activity - 0.4).abs() < 0.12);
//! # Ok::<(), gcr_activity::ActivityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod eco_stream;
pub mod io;
mod scenarios;
mod workload;

pub use benchmark::{Benchmark, TsayBenchmark};
pub use eco_stream::{generate_eco_stream, EcoStreamParams};
pub use scenarios::ActivityScenario;
pub use workload::{Workload, WorkloadParams, CLAMPED_MODULES, MODULE_IDENTITY_LIMIT};
