//! Manhattan-plane geometry for zero-skew clock routing.
//!
//! Clock routing in the DME (deferred-merge embedding) style works with
//! *merging segments*: sets of points that are all at a prescribed Manhattan
//! distance from two child segments. Under the rotation
//!
//! ```text
//! u = x + y,    v = y - x
//! ```
//!
//! the Manhattan (L1) metric of the layout plane becomes the Chebyshev (L∞)
//! metric, diagonal (slope ±1) segments become axis-aligned, and a *tilted
//! rectangular region* (TRR — all points within radius `r` of a segment)
//! becomes a plain axis-aligned rectangle. Every geometric operation the
//! router needs — distance between regions, inflation by a radius,
//! intersection, closest-point projection — is then O(1) interval
//! arithmetic.
//!
//! The crate exposes:
//!
//! * [`Point`] — a location in layout (x, y) coordinates with
//!   [`Point::manhattan`] distance.
//! * [`RotPoint`] — the same location in rotated (u, v) coordinates.
//! * [`Interval`] — a closed 1-D interval used as a building block.
//! * [`Trr`] — a tilted rectangular region, the generalized merging segment.
//! * [`BBox`] — an ordinary axis-aligned bounding box in layout coordinates
//!   (die outlines, controller partitions).
//!
//! # Example
//!
//! Build the merging region of two sinks that must be tapped at equal wire
//! length, then pick the concrete embedding point closest to a parent:
//!
//! ```
//! use gcr_geometry::{Point, Trr};
//!
//! let a = Trr::point(Point::new(0.0, 0.0));
//! let b = Trr::point(Point::new(10.0, 0.0));
//! let d = a.distance(&b);
//! assert_eq!(d, 10.0);
//!
//! // Tap both with 5 units of wire: the merging region is the diagonal
//! // segment equidistant from both sinks.
//! let ms = a.expanded(5.0).intersection(&b.expanded(5.0)).unwrap();
//! let parent = Point::new(5.0, 7.0);
//! let tap = ms.closest_point(parent);
//! assert_eq!(tap.manhattan(Point::new(0.0, 0.0)), 5.0);
//! assert_eq!(tap.manhattan(Point::new(10.0, 0.0)), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod interval;
mod point;
mod rotated;
mod trr;

pub use bbox::BBox;
pub use interval::Interval;
pub use point::Point;
pub use rotated::RotPoint;
pub use trr::Trr;

/// Absolute tolerance used by the geometry routines when classifying
/// degenerate regions (for instance deciding whether a [`Trr`] is a point).
///
/// Coordinates are expressed in λ-like layout units that are typically in
/// the 1–100 000 range, so 1e-6 is far below any meaningful feature size
/// while comfortably above accumulated f64 rounding error.
pub const GEOM_EPS: f64 = 1e-6;

/// Returns `true` when `a` and `b` are equal within [`GEOM_EPS`] scaled by
/// the magnitude of the operands.
///
/// ```
/// assert!(gcr_geometry::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!gcr_geometry::approx_eq(1.0, 1.01));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= GEOM_EPS * scale
}
