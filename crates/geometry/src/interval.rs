use std::fmt;

/// A closed 1-D interval `[lo, hi]`.
///
/// The building block of [`Trr`](crate::Trr): a tilted rectangular region is
/// the Cartesian product of a `u`-interval and a `v`-interval in rotated
/// coordinates. Intervals are always well-formed (`lo <= hi`); constructors
/// normalize the endpoint order.
///
/// ```
/// use gcr_geometry::Interval;
///
/// let i = Interval::new(3.0, 1.0); // endpoints are reordered
/// assert_eq!((i.lo(), i.hi()), (1.0, 3.0));
/// assert_eq!(i.length(), 2.0);
/// assert_eq!(i.gap_to(&Interval::new(5.0, 6.0)), 2.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval spanning `a` and `b` (in either order).
    #[must_use]
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// Creates the degenerate interval `[x, x]`.
    #[must_use]
    pub fn point(x: f64) -> Self {
        Self { lo: x, hi: x }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Length `hi - lo` (zero for a point interval).
    #[must_use]
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint `(lo + hi) / 2`.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Whether `x` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Clamps `x` into the interval (the closest interior point).
    #[must_use]
    pub fn clamp(&self, x: f64) -> f64 {
        x.max(self.lo).min(self.hi)
    }

    /// The interval inflated by `r` on both sides.
    ///
    /// `r` may be negative (deflation); the result is normalized so that a
    /// deflation past the midpoint collapses to the midpoint rather than
    /// producing an inverted interval.
    #[must_use]
    pub fn expanded(&self, r: f64) -> Self {
        let lo = self.lo - r;
        let hi = self.hi + r;
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self::point(self.midpoint())
        }
    }

    /// Intersection with `other`, or `None` when the intervals are disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Intersection with `other`, tolerating a gap of up to `slack`.
    ///
    /// When the intervals are disjoint by at most `slack`, the midpoint of
    /// the gap is returned as a degenerate interval. Zero-skew merges
    /// compute tap radii that sum to the segment distance *exactly* in real
    /// arithmetic; this variant absorbs the f64 rounding that would
    /// otherwise make the merge region empty by a hair.
    #[must_use]
    pub fn intersection_with_slack(&self, other: &Interval, slack: f64) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else if lo - hi <= slack {
            Some(Interval::point((lo + hi) / 2.0))
        } else {
            None
        }
    }

    /// Distance separating the intervals (zero when they overlap or touch).
    #[must_use]
    pub fn gap_to(&self, other: &Interval) -> f64 {
        (self.lo - other.hi).max(other.lo - self.hi).max(0.0)
    }

    /// Distance from `x` to the interval (zero when `x` is inside).
    #[must_use]
    pub fn distance_to_point(&self, x: f64) -> f64 {
        (self.lo - x).max(x - self.hi).max(0.0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_normalizes_order() {
        assert_eq!(Interval::new(5.0, 2.0), Interval::new(2.0, 5.0));
    }

    #[test]
    fn point_interval_has_zero_length() {
        let p = Interval::point(3.0);
        assert_eq!(p.length(), 0.0);
        assert_eq!(p.midpoint(), 3.0);
        assert!(p.contains(3.0));
    }

    #[test]
    fn expansion_and_deflation() {
        let i = Interval::new(2.0, 4.0);
        assert_eq!(i.expanded(1.0), Interval::new(1.0, 5.0));
        // Deflation past the midpoint collapses to the midpoint.
        assert_eq!(i.expanded(-2.0), Interval::point(3.0));
    }

    #[test]
    fn intersection_cases() {
        let a = Interval::new(0.0, 4.0);
        let b = Interval::new(3.0, 8.0);
        assert_eq!(a.intersection(&b), Some(Interval::new(3.0, 4.0)));
        let c = Interval::new(5.0, 6.0);
        assert_eq!(a.intersection(&c), None);
        // Touching intervals intersect in a point.
        let d = Interval::new(4.0, 9.0);
        assert_eq!(a.intersection(&d), Some(Interval::point(4.0)));
    }

    #[test]
    fn gaps_and_point_distance() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(5.0, 7.0);
        assert_eq!(a.gap_to(&b), 3.0);
        assert_eq!(b.gap_to(&a), 3.0);
        assert_eq!(a.gap_to(&a), 0.0);
        assert_eq!(a.distance_to_point(-1.5), 1.5);
        assert_eq!(a.distance_to_point(1.0), 0.0);
        assert_eq!(a.distance_to_point(4.0), 2.0);
    }

    #[test]
    fn clamp_projects_to_closest_point() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a.clamp(0.0), 1.0);
        assert_eq!(a.clamp(1.5), 1.5);
        assert_eq!(a.clamp(9.0), 2.0);
    }
}
