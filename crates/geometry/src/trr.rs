use std::fmt;

use crate::{Interval, Point, RotPoint, GEOM_EPS};

/// A tilted rectangular region (TRR) — the generalized merging segment of
/// DME-style clock routing.
///
/// Stored as an axis-aligned rectangle in rotated (u, v) coordinates, where
/// the Manhattan metric of the layout plane is the Chebyshev metric. The
/// common cases are:
///
/// * a **point** (both intervals degenerate) — the merging segment of a sink;
/// * a **diagonal segment** (exactly one interval degenerate) — the classic
///   slope-±1 merging segment produced by a detour-free zero-skew merge;
/// * a **full region** (neither degenerate) — arises when wire snaking makes
///   the two tap radii sum to more than the segment distance.
///
/// All operations are exact interval arithmetic under the L∞/uv
/// representation: [`Trr::distance`] equals the minimum Manhattan distance
/// between the layout-plane regions, [`Trr::expanded`] is the Minkowski sum
/// with a Manhattan ball, and [`Trr::intersection`] is the region of points
/// lying in both.
///
/// ```
/// use gcr_geometry::{Point, Trr};
///
/// let sink = Trr::point(Point::new(3.0, 4.0));
/// let ball = sink.expanded(2.0);
/// assert!(ball.contains(Point::new(5.0, 4.0)));
/// assert!(ball.contains(Point::new(4.0, 5.0)));
/// assert!(!ball.contains(Point::new(5.0, 5.0))); // Manhattan dist 3
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trr {
    u: Interval,
    v: Interval,
}

impl Trr {
    /// Creates a region from rotated-coordinate intervals.
    #[must_use]
    pub fn from_rotated(u: Interval, v: Interval) -> Self {
        Self { u, v }
    }

    /// The degenerate region containing exactly one layout point.
    #[must_use]
    pub fn point(p: Point) -> Self {
        let r = p.to_rotated();
        Self {
            u: Interval::point(r.u),
            v: Interval::point(r.v),
        }
    }

    /// The diagonal segment between two layout points.
    ///
    /// # Panics
    ///
    /// Panics if the two points are not aligned on a slope-±1 diagonal
    /// (within [`GEOM_EPS`]); arbitrary segments are not Manhattan merging
    /// segments and have no valid `Trr` representation.
    #[must_use]
    pub fn diagonal(a: Point, b: Point) -> Self {
        let (ra, rb) = (a.to_rotated(), b.to_rotated());
        let du = (ra.u - rb.u).abs();
        let dv = (ra.v - rb.v).abs();
        assert!(
            du <= GEOM_EPS || dv <= GEOM_EPS,
            "diagonal endpoints must share a rotated coordinate: {a} vs {b}"
        );
        Self {
            u: Interval::new(ra.u, rb.u),
            v: Interval::new(ra.v, rb.v),
        }
    }

    /// The `u` (= x + y) extent of the region.
    #[must_use]
    pub fn u(&self) -> Interval {
        self.u
    }

    /// The `v` (= y − x) extent of the region.
    #[must_use]
    pub fn v(&self) -> Interval {
        self.v
    }

    /// Whether the region is a single point (within [`GEOM_EPS`]).
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.u.length() <= GEOM_EPS && self.v.length() <= GEOM_EPS
    }

    /// Whether the region is a (possibly degenerate) diagonal segment.
    #[must_use]
    pub fn is_segment(&self) -> bool {
        self.u.length() <= GEOM_EPS || self.v.length() <= GEOM_EPS
    }

    /// The center of the region in layout coordinates.
    ///
    /// For a merging segment this is the paper's `mid(ms(v))`, used to
    /// estimate controller star-routing distances during bottom-up merging.
    #[must_use]
    pub fn center(&self) -> Point {
        RotPoint::new(self.u.midpoint(), self.v.midpoint()).to_layout()
    }

    /// The two extreme corners of the region in layout coordinates.
    ///
    /// For a diagonal merging segment these are its endpoints.
    #[must_use]
    pub fn corners(&self) -> (Point, Point) {
        (
            RotPoint::new(self.u.lo(), self.v.lo()).to_layout(),
            RotPoint::new(self.u.hi(), self.v.hi()).to_layout(),
        )
    }

    /// Minimum Manhattan distance between the two regions (zero when they
    /// overlap or touch).
    #[must_use]
    pub fn distance(&self, other: &Trr) -> f64 {
        self.u.gap_to(&other.u).max(self.v.gap_to(&other.v))
    }

    /// Minimum Manhattan distance from `p` to the region.
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let r = p.to_rotated();
        self.u
            .distance_to_point(r.u)
            .max(self.v.distance_to_point(r.v))
    }

    /// Whether `p` lies inside the region.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.distance_to_point(p) <= GEOM_EPS
    }

    /// The Minkowski sum of the region with a Manhattan ball of radius `r`:
    /// all points within Manhattan distance `r` of the region.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or not finite.
    #[must_use]
    pub fn expanded(&self, r: f64) -> Self {
        assert!(
            r >= 0.0 && r.is_finite(),
            "expansion radius must be >= 0, got {r}"
        );
        Self {
            u: self.u.expanded(r),
            v: self.v.expanded(r),
        }
    }

    /// The set of points lying in both regions, or `None` when disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Trr) -> Option<Trr> {
        Some(Self {
            u: self.u.intersection(&other.u)?,
            v: self.v.intersection(&other.v)?,
        })
    }

    /// The set of points lying in both regions, tolerating a separation of
    /// up to `slack` in each rotated coordinate.
    ///
    /// Zero-skew merges produce tap radii whose sum equals the region
    /// distance exactly in real arithmetic; at die-scale coordinates the f64
    /// rounding of the expansion can leave a gap of a few ulps. Callers that
    /// construct merge regions should use this variant with a small
    /// magnitude-scaled slack instead of [`Trr::intersection`].
    #[must_use]
    pub fn intersection_with_slack(&self, other: &Trr, slack: f64) -> Option<Trr> {
        Some(Self {
            u: self.u.intersection_with_slack(&other.u, slack)?,
            v: self.v.intersection_with_slack(&other.v, slack)?,
        })
    }

    /// The point of the region closest (in Manhattan distance) to `p`.
    ///
    /// When `p` is inside the region, returns `p` itself.
    #[must_use]
    pub fn closest_point(&self, p: Point) -> Point {
        let r = p.to_rotated();
        RotPoint::new(self.u.clamp(r.u), self.v.clamp(r.v)).to_layout()
    }
}

impl fmt::Display for Trr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.corners();
        if self.is_point() {
            write!(f, "Trr{{{a}}}")
        } else if self.is_segment() {
            write!(f, "Trr{{{a} — {b}}}")
        } else {
            write!(f, "Trr{{{a} .. {b}}}")
        }
    }
}

impl From<Point> for Trr {
    fn from(p: Point) -> Self {
        Trr::point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_region_distance_is_manhattan() {
        let a = Trr::point(Point::new(0.0, 0.0));
        let b = Trr::point(Point::new(3.0, 4.0));
        assert_eq!(a.distance(&b), 7.0);
    }

    #[test]
    fn expanded_point_is_manhattan_ball() {
        let a = Trr::point(Point::new(0.0, 0.0)).expanded(5.0);
        // Boundary points of the diamond.
        for p in [
            Point::new(5.0, 0.0),
            Point::new(0.0, 5.0),
            Point::new(-5.0, 0.0),
            Point::new(2.5, 2.5),
        ] {
            assert!(a.contains(p), "{p} should be on the ball");
        }
        assert!(!a.contains(Point::new(3.0, 3.0)));
    }

    #[test]
    fn merge_of_two_points_is_diagonal_segment() {
        let a = Trr::point(Point::new(0.0, 0.0));
        let b = Trr::point(Point::new(10.0, 0.0));
        let ms = a.expanded(4.0).intersection(&b.expanded(6.0)).unwrap();
        assert!(ms.is_segment());
        // Every corner is exactly 4 from a and 6 from b.
        let (p, q) = ms.corners();
        for pt in [p, q, ms.center()] {
            assert!((pt.manhattan(Point::new(0.0, 0.0)) - 4.0).abs() < 1e-9);
            assert!((pt.manhattan(Point::new(10.0, 0.0)) - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn disjoint_regions_do_not_intersect() {
        let a = Trr::point(Point::new(0.0, 0.0)).expanded(1.0);
        let b = Trr::point(Point::new(10.0, 0.0)).expanded(1.0);
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.distance(&b), 8.0);
    }

    #[test]
    fn closest_point_achieves_distance() {
        let ms = Trr::diagonal(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        let p = Point::new(5.0, 5.0);
        let c = ms.closest_point(p);
        assert!(ms.contains(c));
        assert!((p.manhattan(c) - ms.distance_to_point(p)).abs() < 1e-9);
        // Interior query returns the query itself.
        let inside = Point::new(2.0, 2.0);
        assert_eq!(ms.closest_point(inside), inside);
    }

    #[test]
    #[should_panic(expected = "diagonal endpoints")]
    fn non_diagonal_segment_is_rejected() {
        let _ = Trr::diagonal(Point::new(0.0, 0.0), Point::new(3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "expansion radius")]
    fn negative_expansion_is_rejected() {
        let _ = Trr::point(Point::ORIGIN).expanded(-1.0);
    }

    #[test]
    fn segment_classification() {
        assert!(Trr::point(Point::ORIGIN).is_point());
        assert!(Trr::point(Point::ORIGIN).is_segment());
        let seg = Trr::diagonal(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        assert!(seg.is_segment() && !seg.is_point());
        let fat = Trr::point(Point::ORIGIN).expanded(1.0);
        assert!(!fat.is_segment() && !fat.is_point());
    }

    #[test]
    fn center_of_segment_is_midpoint_of_corners() {
        let seg = Trr::diagonal(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        let (a, b) = seg.corners();
        assert_eq!(seg.center(), a.midpoint(b));
    }

    #[test]
    fn display_is_nonempty() {
        for t in [
            Trr::point(Point::ORIGIN),
            Trr::diagonal(Point::new(0.0, 2.0), Point::new(2.0, 0.0)),
            Trr::point(Point::ORIGIN).expanded(1.0),
        ] {
            assert!(!format!("{t}").is_empty());
        }
    }
}
