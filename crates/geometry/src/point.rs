use std::fmt;

use crate::RotPoint;

/// A location in layout (x, y) coordinates.
///
/// Distances between points are measured with the Manhattan (L1) metric,
/// the routing metric of rectilinear VLSI layout. Coordinates are `f64`
/// expressed in abstract layout units (the paper reports lengths in λ).
///
/// ```
/// use gcr_geometry::Point;
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, -2.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from layout coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Manhattan (L1) distance to `other`.
    #[must_use]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`.
    ///
    /// Only used for reporting; all routing decisions use [`Self::manhattan`].
    #[must_use]
    pub fn euclidean(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Midpoint of the straight segment between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Converts to rotated (u, v) coordinates where Manhattan distance
    /// becomes Chebyshev distance.
    #[must_use]
    pub fn to_rotated(self) -> RotPoint {
        RotPoint::new(self.x + self.y, self.y - self.x)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Point::new(3.5, -1.0);
        let b = Point::new(-2.0, 9.0);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0.0);
    }

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(a.euclidean(b), 5.0);
        assert!(a.manhattan(b) >= a.euclidean(b));
    }

    #[test]
    fn midpoint_halves_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 6.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point::new(5.0, 3.0));
        assert_eq!(a.manhattan(m), m.manhattan(b));
    }

    #[test]
    fn rotation_preserves_distance_as_chebyshev() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        let (ra, rb) = (a.to_rotated(), b.to_rotated());
        assert_eq!(a.manhattan(b), ra.chebyshev(rb));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }
}
