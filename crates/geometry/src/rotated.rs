use std::fmt;

use crate::Point;

/// A location in rotated (u, v) coordinates.
///
/// The rotation `u = x + y`, `v = y - x` turns the Manhattan metric of the
/// layout plane into the Chebyshev metric: for any two points the Manhattan
/// distance of their layout coordinates equals [`RotPoint::chebyshev`] of
/// their rotated coordinates. Axis-aligned boxes in (u, v) correspond to the
/// 45°-tilted rectangles (TRRs) used by DME-style clock routers.
///
/// ```
/// use gcr_geometry::{Point, RotPoint};
///
/// let p = Point::new(2.0, 5.0);
/// let r = p.to_rotated();
/// assert_eq!(r, RotPoint::new(7.0, 3.0));
/// assert_eq!(r.to_layout(), p);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RotPoint {
    /// Rotated coordinate `u = x + y`.
    pub u: f64,
    /// Rotated coordinate `v = y - x`.
    pub v: f64,
}

impl RotPoint {
    /// Creates a rotated point from (u, v) coordinates.
    #[must_use]
    pub const fn new(u: f64, v: f64) -> Self {
        Self { u, v }
    }

    /// Chebyshev (L∞) distance to `other`; equals the Manhattan distance of
    /// the corresponding layout points.
    #[must_use]
    pub fn chebyshev(self, other: RotPoint) -> f64 {
        (self.u - other.u).abs().max((self.v - other.v).abs())
    }

    /// Converts back to layout (x, y) coordinates.
    #[must_use]
    pub fn to_layout(self) -> Point {
        Point::new((self.u - self.v) / 2.0, (self.u + self.v) / 2.0)
    }
}

impl fmt::Display for RotPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(u={:.3}, v={:.3})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_layout_rotated() {
        let p = Point::new(-4.25, 11.5);
        assert_eq!(p.to_rotated().to_layout(), p);
        let r = RotPoint::new(3.0, -9.0);
        assert_eq!(r.to_layout().to_rotated(), r);
    }

    #[test]
    fn chebyshev_matches_manhattan() {
        let cases = [
            (Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            (Point::new(2.0, -3.0), Point::new(2.0, 7.0)),
            (Point::new(-1.5, 0.25), Point::new(4.0, -8.0)),
        ];
        for (a, b) in cases {
            assert!(
                (a.manhattan(b) - a.to_rotated().chebyshev(b.to_rotated())).abs() < 1e-12,
                "mismatch for {a} vs {b}"
            );
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", RotPoint::default()).is_empty());
    }
}
