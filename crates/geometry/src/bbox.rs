use std::fmt;

use crate::Point;

/// An axis-aligned bounding box in layout (x, y) coordinates.
///
/// Used for die outlines and for partitioning the chip among distributed
/// gate controllers (§6 of the paper).
///
/// ```
/// use gcr_geometry::{BBox, Point};
///
/// let die = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
/// assert_eq!(die.center(), Point::new(50.0, 50.0));
/// let quads = die.quadrants();
/// assert_eq!(quads.len(), 4);
/// assert!(quads.iter().all(|q| q.width() == 50.0 && q.height() == 50.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a box spanning the two corner points (in any order).
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest box containing every point of `points`, or `None` when
    /// the iterator is empty.
    #[must_use]
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BBox::new(first, first);
        for p in it {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }

    /// Lower-left corner.
    #[must_use]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[must_use]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Half the bounding-box perimeter — the standard wirelength lower bound.
    #[must_use]
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Geometric center — where the paper places the centralized gate
    /// controller ("we assume that the controller is located at the center
    /// of the chip").
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the closed box.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// The four equal quadrants of the box, ordered SW, SE, NW, NE.
    #[must_use]
    pub fn quadrants(&self) -> [BBox; 4] {
        let c = self.center();
        [
            BBox::new(self.min, c),
            BBox::new(Point::new(c.x, self.min.y), Point::new(self.max.x, c.y)),
            BBox::new(Point::new(self.min.x, c.y), Point::new(c.x, self.max.y)),
            BBox::new(c, self.max),
        ]
    }

    /// Recursively subdivides into `4^levels` equal partitions.
    ///
    /// `levels == 0` returns the box itself. Used to model the k-way
    /// distributed controllers of §6 (k a power of four).
    #[must_use]
    pub fn subdivide(&self, levels: u32) -> Vec<BBox> {
        let mut boxes = vec![*self];
        for _ in 0..levels {
            boxes = boxes.iter().flat_map(BBox::quadrants).collect();
        }
        boxes
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let b = BBox::new(Point::new(5.0, 1.0), Point::new(0.0, 9.0));
        assert_eq!(b.min(), Point::new(0.0, 1.0));
        assert_eq!(b.max(), Point::new(5.0, 9.0));
        assert_eq!(b.width(), 5.0);
        assert_eq!(b.height(), 8.0);
        assert_eq!(b.half_perimeter(), 13.0);
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 7.0),
            Point::new(4.0, 0.0),
        ];
        let bb = BBox::of_points(pts).unwrap();
        assert!(pts.iter().all(|&p| bb.contains(p)));
        assert_eq!(bb.min(), Point::new(-3.0, 0.0));
        assert_eq!(bb.max(), Point::new(4.0, 7.0));
        assert!(BBox::of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn quadrants_tile_the_box() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(8.0, 4.0));
        let qs = b.quadrants();
        let area: f64 = qs.iter().map(|q| q.width() * q.height()).sum();
        assert_eq!(area, 32.0);
        assert!(qs.iter().all(|q| q.center().x < 8.0 && q.center().y < 4.0));
    }

    #[test]
    fn subdivide_counts() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(16.0, 16.0));
        assert_eq!(b.subdivide(0).len(), 1);
        assert_eq!(b.subdivide(1).len(), 4);
        assert_eq!(b.subdivide(2).len(), 16);
        // All partitions have equal size.
        let parts = b.subdivide(2);
        assert!(parts.iter().all(|p| p.width() == 4.0 && p.height() == 4.0));
    }

    #[test]
    fn display_is_nonempty() {
        let b = BBox::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(!format!("{b}").is_empty());
    }
}
