//! Property-based tests for the Manhattan/TRR geometry kernel.
//!
//! The analytic interval arithmetic is checked against brute-force sampling
//! and against the metric axioms that the DME router relies on.

use gcr_geometry::{BBox, Point, Trr};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // Mix of small and die-scale coordinates, kept finite and well away from
    // f64 extremes.
    prop_oneof![-1000.0..1000.0f64, -1e6..1e6f64]
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn trr() -> impl Strategy<Value = Trr> {
    (point(), 0.0..5000.0f64).prop_map(|(p, r)| Trr::point(p).expanded(r))
}

/// Dense boundary+interior sample of a TRR for brute-force checks.
fn sample(t: &Trr, n: usize) -> Vec<Point> {
    let (u, v) = (t.u(), t.v());
    let mut pts = Vec::new();
    for i in 0..=n {
        for j in 0..=n {
            let uu = u.lo() + u.length() * (i as f64) / (n as f64);
            let vv = v.lo() + v.length() * (j as f64) / (n as f64);
            pts.push(gcr_geometry::RotPoint::new(uu, vv).to_layout());
        }
    }
    pts
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-9);
    }

    #[test]
    fn rotation_round_trip(p in point()) {
        let q = p.to_rotated().to_layout();
        prop_assert!((p.x - q.x).abs() < 1e-9 && (p.y - q.y).abs() < 1e-9);
    }

    #[test]
    fn trr_distance_is_symmetric(a in trr(), b in trr()) {
        prop_assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn trr_distance_matches_brute_force(a in trr(), b in trr()) {
        let analytic = a.distance(&b);
        let brute = sample(&a, 8)
            .iter()
            .flat_map(|p| sample(&b, 8).iter().map(|q| p.manhattan(*q)).collect::<Vec<_>>())
            .fold(f64::INFINITY, f64::min);
        // Sampling can only overestimate the true minimum.
        prop_assert!(brute + 1e-6 >= analytic,
            "brute {brute} must be >= analytic {analytic}");
        // For point/ball pairs the corner sampling includes the minimizer on
        // the boundary grid, so the bound is tight within the grid pitch.
        let pitch = (a.u().length() + a.v().length() + b.u().length() + b.v().length()) / 8.0;
        prop_assert!(brute <= analytic + pitch + 1e-6);
    }

    #[test]
    fn expansion_grows_distance_correctly(a in trr(), b in trr(), r in 0.0..1000.0f64) {
        let d = a.distance(&b);
        let d2 = a.expanded(r).distance(&b);
        prop_assert!((d2 - (d - r).max(0.0)).abs() < 1e-6,
            "expanding by r must shrink separation by exactly r (d={d}, r={r}, d2={d2})");
    }

    #[test]
    fn intersection_iff_expanded_radii_cover_distance(a in trr(), b in trr(), ra in 0.0..2000.0f64, rb in 0.0..2000.0f64) {
        let d = a.distance(&b);
        let isect = a.expanded(ra).intersection(&b.expanded(rb));
        if ra + rb >= d + 1e-6 {
            prop_assert!(isect.is_some(), "radii {ra}+{rb} cover distance {d}");
        }
        if ra + rb + 1e-6 < d {
            prop_assert!(isect.is_none(), "radii {ra}+{rb} cannot cover {d}");
        }
        if let Some(ms) = isect {
            // Every point of the merge region is within the tap radii.
            for p in sample(&ms, 4) {
                prop_assert!(a.distance_to_point(p) <= ra + 1e-6);
                prop_assert!(b.distance_to_point(p) <= rb + 1e-6);
            }
        }
    }

    #[test]
    fn zero_skew_merge_segment_is_equidistant(pa in point(), pb in point()) {
        let a = Trr::point(pa);
        let b = Trr::point(pb);
        let d = pa.manhattan(pb);
        prop_assume!(d > 1.0);
        // Split the distance arbitrarily 30/70, keeping ea + eb == d exact
        // in floating point so the intersection cannot be empty by rounding.
        let ea = 0.3 * d;
        let eb = d - ea;
        let slack = 1e-9 * d.max(1.0);
        let ms = a
            .expanded(ea)
            .intersection_with_slack(&b.expanded(eb), slack)
            .expect("radii sum to d");
        for p in sample(&ms, 6) {
            prop_assert!((p.manhattan(pa) - ea).abs() < 1e-6 * d.max(1.0));
            prop_assert!((p.manhattan(pb) - eb).abs() < 1e-6 * d.max(1.0));
        }
    }

    #[test]
    fn closest_point_is_optimal(t in trr(), p in point()) {
        let c = t.closest_point(p);
        prop_assert!(t.distance_to_point(c) < 1e-6);
        let d = t.distance_to_point(p);
        prop_assert!((p.manhattan(c) - d).abs() < 1e-6,
            "closest point at {} but region distance {}", p.manhattan(c), d);
        // No sampled point does better.
        for q in sample(&t, 6) {
            prop_assert!(p.manhattan(q) + 1e-6 >= p.manhattan(c));
        }
    }

    #[test]
    fn bbox_contains_its_points(pts in prop::collection::vec(point(), 1..40)) {
        let bb = BBox::of_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
        prop_assert!(bb.contains(bb.center()));
    }

    #[test]
    fn subdivided_partitions_cover_center_points(levels in 0u32..3) {
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0));
        let parts = die.subdivide(levels);
        prop_assert_eq!(parts.len(), 4usize.pow(levels));
        // Every partition center is inside the die and no two coincide.
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(die.contains(p.center()));
            for q in &parts[i + 1..] {
                prop_assert!(p.center().manhattan(q.center()) > 1.0);
            }
        }
    }
}
