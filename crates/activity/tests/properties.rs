//! Property-based tests: the table-driven probability computation (§3.3)
//! must agree exactly with brute-force stream scanning, and the resulting
//! probabilities must satisfy the algebra the router relies on.

use gcr_activity::{ActivityTables, CpuModel, ModuleSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Table-driven == brute force, on random models, streams and sets.
    #[test]
    fn tables_match_brute_force(
        seed in 0u64..1_000,
        modules in 4usize..40,
        instructions in 2usize..12,
        persistence in 0.0..0.95f64,
        set_bits in prop::collection::vec(any::<bool>(), 40),
    ) {
        let model = CpuModel::builder(modules)
            .instructions(instructions)
            .persistence(persistence)
            .seed(seed)
            .build()
            .unwrap();
        let stream = model.generate_stream(500);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let set = ModuleSet::with_modules(
            modules,
            (0..modules).filter(|&m| set_bits[m]),
        );
        prop_assume!(!set.is_empty());
        let stats = tables.enable_stats(&set);
        let sig = stream.signal_probability(model.rtl(), &set);
        let tr = stream.transition_probability(model.rtl(), &set);
        prop_assert!((stats.signal - sig).abs() < 1e-12);
        prop_assert!((stats.transition - tr).abs() < 1e-12);
    }

    /// Probability algebra: 0 ≤ P ≤ 1; P_tr ≤ 2·min(P, 1−P) (an enable can
    /// only toggle by leaving its majority state); union monotonicity and
    /// the union bound.
    #[test]
    fn probability_invariants(
        seed in 0u64..1_000,
        modules in 6usize..30,
        split in 1usize..5,
    ) {
        let model = CpuModel::builder(modules)
            .instructions(8)
            .seed(seed)
            .build()
            .unwrap();
        let stream = model.generate_stream(400);
        let tables = ActivityTables::scan(model.rtl(), &stream);

        let a = ModuleSet::with_modules(modules, 0..split);
        let b = ModuleSet::with_modules(modules, split..modules.min(split + 4));
        let u = a.union(&b);
        let (sa, sb, su) = (
            tables.enable_stats(&a),
            tables.enable_stats(&b),
            tables.enable_stats(&u),
        );
        for s in [sa, sb, su] {
            // Allow a few ulps of float-summation error around the bounds.
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s.signal));
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s.transition));
            prop_assert!(
                s.transition <= 2.0 * s.signal.min(1.0 - s.signal) + 1e-9,
                "P_tr {} exceeds 2·min(P, 1-P) for P {}",
                s.transition,
                s.signal
            );
        }
        // P(EN) grows monotonically as subtrees merge…
        prop_assert!(su.signal + 1e-12 >= sa.signal.max(sb.signal));
        // …but never beyond the union bound.
        prop_assert!(su.signal <= sa.signal + sb.signal + 1e-12);
    }

    /// The full module set's enable is on whenever any instruction runs,
    /// i.e. always (every instruction uses at least one module).
    #[test]
    fn root_enable_is_always_on(seed in 0u64..500, modules in 4usize..30) {
        let model = CpuModel::builder(modules).instructions(6).seed(seed).build().unwrap();
        let stream = model.generate_stream(300);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let all = ModuleSet::with_modules(modules, 0..modules);
        let stats = tables.enable_stats(&all);
        prop_assert!((stats.signal - 1.0).abs() < 1e-12);
        prop_assert!(stats.transition.abs() < 1e-12);
    }
}
