//! Property-based bit-identity of the streaming/parallel scan.
//!
//! The contract under test: [`scan_source`] over any [`TraceSource`], at
//! any thread count in {1, 2, 4, 8} and any chunk size — including chunk
//! boundaries that split consecutive pairs — produces `ActivityTables`
//! **bit-identical** (f64 `==`, not epsilon) to the sequential
//! [`ActivityTables::scan`] of the materialized trace. Same for the
//! push-based [`TableBuilder`] under arbitrary feed chunkings and shard
//! merges, and for the text round-trip through [`TextTraceSource`].

use gcr_activity::io::{format_trace, TextTraceSource};
use gcr_activity::{
    scan_source, ActivityTables, CpuModel, ScanParams, ScanScratch, SliceSource, TableBuilder,
};
use proptest::prelude::*;

fn assert_bit_identical(
    got: &ActivityTables,
    oracle: &ActivityTables,
) -> Result<(), TestCaseError> {
    // PartialEq on Ift/Itmatt compares every f64 (dense matrix and sparse
    // view) with `==` — exact bit-identity for non-NaN probabilities.
    prop_assert_eq!(got.ift(), oracle.ift());
    prop_assert_eq!(got.itmatt(), oracle.itmatt());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel chunked scan == sequential scan, across thread counts,
    /// chunk sizes and dense/sparse worker tables.
    #[test]
    fn scan_source_bit_identical_across_threads_and_chunks(
        seed in 0u64..1_000,
        modules in 4usize..48,
        instructions in 2usize..14,
        persistence in 0.0..0.95f64,
        len in 2usize..2_500,
        chunk_cycles in 1usize..300,
        threads_idx in 0usize..4,
        force_sparse in any::<bool>(),
    ) {
        let threads = [1usize, 2, 4, 8][threads_idx];
        let model = CpuModel::builder(modules)
            .instructions(instructions)
            .persistence(persistence)
            .seed(seed)
            .build()
            .unwrap();
        let stream = model.generate_stream(len.max(2));
        let oracle = ActivityTables::scan(model.rtl(), &stream);
        let params = ScanParams {
            threads: Some(threads),
            chunk_cycles,
            dense_limit: if force_sparse { 0 } else { gcr_activity::DEFAULT_DENSE_LIMIT },
        };
        let mut scratch = ScanScratch::new();
        // In-memory source.
        let mut source = SliceSource::new(&stream);
        let (tables, profile) =
            scan_source(model.rtl(), &mut source, &params, &mut scratch).unwrap();
        assert_bit_identical(&tables, &oracle)?;
        prop_assert_eq!(profile.cycles, stream.len() as u64);
        prop_assert_eq!(profile.threads, threads);
        // Generator source, reusing the (possibly differently-shaped)
        // scratch — never materializes the trace.
        let mut gen_source = model.trace_source(stream.len() as u64);
        let (gen_tables, _) =
            scan_source(model.rtl(), &mut gen_source, &params, &mut scratch).unwrap();
        assert_bit_identical(&gen_tables, &oracle)?;
    }

    /// Push-based TableBuilder: arbitrary feed chunkings and shard splits
    /// (boundaries landing anywhere, including inside pairs) all stitch
    /// back to the sequential tables.
    #[test]
    fn table_builder_bit_identical_under_arbitrary_chunking(
        seed in 0u64..1_000,
        modules in 4usize..32,
        instructions in 2usize..10,
        len in 2usize..600,
        feed_chunk in 1usize..97,
        split_a in 0usize..600,
        split_b in 0usize..600,
    ) {
        let model = CpuModel::builder(modules)
            .instructions(instructions)
            .seed(seed)
            .build()
            .unwrap();
        let stream = model.generate_stream(len.max(2));
        let ids = stream.instructions();
        let oracle = ActivityTables::scan(model.rtl(), &stream);

        // One builder, ragged chunking.
        let mut builder = TableBuilder::new(model.rtl()).unwrap();
        for chunk in ids.chunks(feed_chunk) {
            builder.feed(chunk);
        }
        assert_bit_identical(&builder.finish(model.rtl()).unwrap(), &oracle)?;

        // Three shards split at arbitrary (possibly degenerate) points,
        // merged in stream order.
        let (mut lo, mut hi) = (split_a % ids.len(), split_b % ids.len());
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let mut left = TableBuilder::new(model.rtl()).unwrap();
        left.feed(&ids[..lo]);
        let mut mid = TableBuilder::new(model.rtl()).unwrap();
        mid.feed(&ids[lo..hi]);
        let mut right = TableBuilder::new(model.rtl()).unwrap();
        right.feed(&ids[hi..]);
        left.merge(&mid).unwrap();
        left.merge(&right).unwrap();
        assert_bit_identical(&left.finish(model.rtl()).unwrap(), &oracle)?;
    }

    /// Text traces: format → stream through TextTraceSource → scan must
    /// equal the sequential scan of the parsed stream.
    #[test]
    fn text_source_scan_bit_identical(
        seed in 0u64..200,
        len in 2usize..400,
        chunk_cycles in 1usize..64,
    ) {
        let model = CpuModel::builder(12).instructions(6).seed(seed).build().unwrap();
        let stream = model.generate_stream(len.max(2));
        let oracle = ActivityTables::scan(model.rtl(), &stream);
        let text = format_trace(model.rtl(), &stream);
        let mut source = TextTraceSource::new(model.rtl(), text.as_bytes());
        let params = ScanParams {
            threads: Some(2),
            chunk_cycles,
            ..ScanParams::default()
        };
        let mut scratch = ScanScratch::new();
        let (tables, _) = scan_source(model.rtl(), &mut source, &params, &mut scratch).unwrap();
        assert_bit_identical(&tables, &oracle)?;
    }
}

/// `GCR_THREADS` is honored (and sanitized) when `ScanParams::threads`
/// is `None`. Runs outside the proptest block because it mutates process
/// environment; single test body so the env var cannot race a sibling.
#[test]
fn gcr_threads_env_resolution() {
    let model = CpuModel::builder(16)
        .instructions(8)
        .seed(3)
        .build()
        .unwrap();
    let stream = model.generate_stream(1_000);
    let oracle = ActivityTables::scan(model.rtl(), &stream);
    let mut scratch = ScanScratch::new();
    for (value, expect) in [("3", 3usize), ("0", 1), ("99", 16), ("not-a-number", 1)] {
        std::env::set_var("GCR_THREADS", value);
        let mut source = SliceSource::new(&stream);
        let (tables, profile) = scan_source(
            model.rtl(),
            &mut source,
            &ScanParams::default(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(profile.threads, expect, "GCR_THREADS={value}");
        assert_eq!(tables.itmatt(), oracle.itmatt());
    }
    std::env::remove_var("GCR_THREADS");
}
