//! Property-based round-trip tests of the plain-text RTL/trace formats.

use gcr_activity::{io, CpuModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// format_rtl -> parse_rtl preserves every usage bit, for arbitrary
    /// generated models.
    #[test]
    fn rtl_round_trip(
        modules in 1usize..60,
        instructions in 1usize..20,
        usage in 0.05..0.9f64,
        seed in 0u64..1_000,
    ) {
        let model = CpuModel::builder(modules)
            .instructions(instructions)
            .usage_fraction(usage)
            .seed(seed)
            .build()
            .unwrap();
        let rtl = model.rtl();
        let text = io::format_rtl(rtl);
        let back = io::parse_rtl(&text, Some(modules)).unwrap();
        prop_assert_eq!(back.num_instructions(), rtl.num_instructions());
        prop_assert_eq!(back.num_modules(), rtl.num_modules());
        for id in rtl.instruction_ids() {
            let bid = back.instruction(id.index()).unwrap();
            prop_assert_eq!(back.name(bid), rtl.name(id));
            for m in 0..modules {
                prop_assert_eq!(back.uses(bid, m), rtl.uses(id, m), "instr {} module {}", id, m);
            }
        }
    }

    /// format_trace -> parse_trace reproduces the exact stream, and the
    /// derived probability tables are therefore identical.
    #[test]
    fn trace_round_trip(
        modules in 2usize..30,
        seed in 0u64..1_000,
        len in 2usize..500,
    ) {
        let model = CpuModel::builder(modules)
            .instructions(6)
            .seed(seed)
            .build()
            .unwrap();
        let rtl = model.rtl();
        let stream = model.generate_stream(len);
        let text = io::format_trace(rtl, &stream);
        let back = io::parse_trace(rtl, &text).unwrap();
        prop_assert_eq!(&back, &stream);
        let a = gcr_activity::ActivityTables::scan(rtl, &stream);
        let b = gcr_activity::ActivityTables::scan(rtl, &back);
        let set = gcr_activity::ModuleSet::with_modules(modules, [0]);
        prop_assert_eq!(a.enable_stats(&set), b.enable_stats(&set));
    }
}
