//! Streaming, memory-bounded, parallel construction of [`ActivityTables`].
//!
//! The sequential [`ActivityTables::scan`] needs the whole trace as a
//! `Vec<InstructionId>` and walks it twice (IFT, then ITMATT). This module
//! builds the same tables from a [`TraceSource`] one chunk at a time:
//!
//! * **Integer counts, one normalization.** Workers accumulate `u64`
//!   per-instruction and per-pair counts. Integer addition is exact and
//!   commutative, so partial tables merge deterministically regardless of
//!   worker scheduling, and the single `count as f64 / denominator` divide
//!   at the end uses exactly the arithmetic of the sequential scan — the
//!   result is **bit-identical** at every thread count and chunk size.
//! * **Boundary-pair stitching.** Chunk reads are serialized behind a
//!   mutex that also carries the last instruction of the previous chunk;
//!   the worker that reads the next chunk counts the spanning pair. Every
//!   one of the B−1 consecutive pairs is counted exactly once.
//! * **Bounded memory.** Peak usage is O(threads · chunk) buffer space
//!   plus the per-worker count tables: dense K×K `u64` below
//!   [`ScanParams::dense_limit`] instructions, a sparse hash map above it
//!   — O(observed pairs), not O(K²), per worker.
//! * **Warm-rescan reuse.** A [`ScanScratch`] keeps buffers and count
//!   tables across scans; a warm single-threaded rescan performs zero
//!   heap allocations in the chunk loop (enforced by the allocation-probe
//!   test, reported in [`ScanProfile`]).
//!
//! For push-style integration (the trace arrives from a simulator
//! callback rather than a pullable source), feed chunks into a
//! [`TableBuilder`] and [`TableBuilder::merge`] independently built
//! shards.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use gcr_trace::Tracer;

use crate::{ActivityError, ActivityTables, Ift, InstructionId, Itmatt, Rtl, TraceSource};

/// Default cycles per chunk: 64 Ki cycles = 256 KiB per worker buffer,
/// small enough to stay cache-friendly, large enough that the mutex on
/// the source is uncontended.
pub const DEFAULT_CHUNK_CYCLES: usize = 64 * 1024;

/// Default instruction-count threshold below which per-worker counts use
/// a dense K×K array (8 MiB of `u64` at the limit); above it they fall
/// back to sparse accumulation so per-worker memory tracks the observed
/// pairs instead of K².
pub const DEFAULT_DENSE_LIMIT: usize = 1024;

/// Tuning knobs of [`scan_source`].
#[derive(Clone, Debug)]
pub struct ScanParams {
    /// Worker threads; `None` resolves `GCR_THREADS`, then
    /// `available_parallelism()`. Clamped to `1..=16`.
    pub threads: Option<usize>,
    /// Cycles per chunk read (min 1; default [`DEFAULT_CHUNK_CYCLES`]).
    pub chunk_cycles: usize,
    /// Dense/sparse threshold for per-worker count tables (default
    /// [`DEFAULT_DENSE_LIMIT`]); 0 forces sparse accumulation.
    pub dense_limit: usize,
}

impl Default for ScanParams {
    fn default() -> Self {
        Self {
            threads: None,
            chunk_cycles: DEFAULT_CHUNK_CYCLES,
            dense_limit: DEFAULT_DENSE_LIMIT,
        }
    }
}

/// Wall times and allocation counts of one streaming scan, measured on
/// the calling thread like the greedy engine's `GreedyProfile`.
///
/// Allocation counts come from the probe installed with
/// [`set_alloc_probe`]; without a probe they stay 0. The steady-state
/// invariant is `chunk_allocs == 0` on a **warm single-threaded** rescan
/// (reused [`ScanScratch`], an in-memory or generator source): every
/// chunk-loop buffer then already has capacity. Multi-threaded runs spawn
/// scoped workers inside the chunk window, which allocates thread stacks;
/// those runs report honest nonzero counts. The merge window builds the
/// returned tables and always allocates (it is the output).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanProfile {
    /// Cycles scanned (the paper's B).
    pub cycles: u64,
    /// Chunks read from the source.
    pub chunks: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time (ms) of the chunk loop (read + count, all workers).
    pub chunk_ms: f64,
    /// Wall time (ms) of the merge + final normalization.
    pub merge_ms: f64,
    /// Heap allocations during the chunk loop.
    pub chunk_allocs: u64,
    /// Heap allocations during merge + normalization.
    pub merge_allocs: u64,
}

impl ScanProfile {
    /// Scan throughput in cycles per second (0 when nothing was timed).
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = (self.chunk_ms + self.merge_ms) / 1e3;
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }
}

/// Global allocation-count probe used by [`ScanProfile`].
///
/// The activity crate forbids `unsafe`, so it cannot host a counting
/// `#[global_allocator]` itself; binaries that have one (the bench
/// harness, the zero-alloc test) register a reader here.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the allocation-count reader consulted by [`scan_source`]'s
/// profile. The probe must be monotone (a running total of allocations in
/// the process). First installation wins; later calls are ignored.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Current allocation count, or 0 when no probe is installed.
fn alloc_count() -> u64 {
    ALLOC_PROBE.get().map_or(0, |probe| probe())
}

/// Worker-thread count for this scan: explicit [`ScanParams::threads`],
/// else the `GCR_THREADS` environment variable, else
/// `available_parallelism()`; clamped to `1..=16`. Long-lived services
/// resolve once at startup and pin [`ScanParams::threads`] instead.
///
/// Delegates to the workspace-shared resolver
/// ([`gcr_trace::threads::resolve`]) so the rejection policy and warn
/// wording stay bit-identical to the greedy engine's; an unparsable
/// `GCR_THREADS` warns under `activity.threads` and resolves to 1.
fn resolve_threads(explicit: Option<usize>, tracer: &Tracer) -> usize {
    gcr_trace::threads::resolve(explicit, "activity.threads", tracer)
}

/// One worker's partial count table: exact `u64` numerators of the IFT
/// and ITMATT. Dense K×K storage below the dense limit, sparse hash
/// accumulation (key `a·K + b`) above it.
#[derive(Clone, Debug, Default)]
struct PartialCounts {
    k: usize,
    dense_mode: bool,
    /// Per-instruction cycle counts (IFT numerators), length K.
    instr: Vec<u64>,
    /// Dense row-major K×K pair counts (dense mode), else empty.
    dense: Vec<u64>,
    /// Sparse pair counts keyed `a·K + b` (sparse mode), else empty.
    sparse: HashMap<u32, u64>,
}

impl PartialCounts {
    /// (Re)shapes for `k` instructions and zeroes all counts. Keeps
    /// existing capacity when the shape is unchanged, so warm rescans do
    /// not allocate here.
    fn reset(&mut self, k: usize, dense_limit: usize) {
        let dense_mode = k <= dense_limit;
        if self.k != k || self.dense_mode != dense_mode {
            self.k = k;
            self.dense_mode = dense_mode;
            self.instr.clear();
            self.instr.resize(k, 0);
            self.dense.clear();
            self.dense.resize(if dense_mode { k * k } else { 0 }, 0);
            self.sparse.clear();
        } else {
            self.instr.fill(0);
            self.dense.fill(0);
            self.sparse.clear();
        }
    }

    /// Counts one consecutive pair (the chunk-boundary stitch).
    #[inline]
    fn count_pair(&mut self, a: InstructionId, b: InstructionId) {
        if self.dense_mode {
            self.dense[a.index() * self.k + b.index()] += 1;
        } else {
            let key = (a.index() * self.k + b.index()) as u32;
            *self.sparse.entry(key).or_insert(0) += 1;
        }
    }

    /// Counts every cycle and every intra-chunk pair of `chunk`.
    fn count_chunk(&mut self, chunk: &[InstructionId]) {
        for &i in chunk {
            self.instr[i.index()] += 1;
        }
        if self.dense_mode {
            for w in chunk.windows(2) {
                self.dense[w[0].index() * self.k + w[1].index()] += 1;
            }
        } else {
            for w in chunk.windows(2) {
                let key = (w[0].index() * self.k + w[1].index()) as u32;
                *self.sparse.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Adds `other`'s counts into `self`. Slot-wise exact integer adds:
    /// the result is independent of merge order.
    fn absorb(&mut self, other: &PartialCounts) {
        debug_assert_eq!(self.k, other.k);
        for (dst, &src) in self.instr.iter_mut().zip(&other.instr) {
            *dst += src;
        }
        if other.dense_mode {
            if self.dense_mode {
                for (dst, &src) in self.dense.iter_mut().zip(&other.dense) {
                    *dst += src;
                }
            } else {
                for (i, &src) in other.dense.iter().enumerate() {
                    if src > 0 {
                        *self.sparse.entry(i as u32).or_insert(0) += src;
                    }
                }
            }
        } else {
            for (&key, &src) in &other.sparse {
                if self.dense_mode {
                    self.dense[key as usize] += src;
                } else {
                    *self.sparse.entry(key).or_insert(0) += src;
                }
            }
        }
    }

    /// Total cycles these counts have absorbed.
    fn cycles(&self) -> u64 {
        self.instr.iter().sum()
    }

    /// The dense f64 pair-probability matrix — the single final
    /// normalization. `pairs` is B−1. Zero slots become `+0.0`, exactly
    /// as in the sequential scan's `0 / pairs`.
    fn to_pair_probs(&self, pairs: u64) -> Vec<f64> {
        let denom = pairs as f64;
        if self.dense_mode {
            self.dense.iter().map(|&c| c as f64 / denom).collect()
        } else {
            let mut probs = vec![0.0f64; self.k * self.k];
            for (&key, &c) in &self.sparse {
                probs[key as usize] = c as f64 / denom;
            }
            probs
        }
    }
}

/// Incremental push-based table construction: feed trace chunks as they
/// arrive, merge independently built shards, normalize once at the end.
///
/// The counts are exact integers, so `feed`ing a trace in any chunking
/// and `merge`ing shards in stream order produces tables bit-identical
/// to [`ActivityTables::scan`] over the concatenated trace.
///
/// ```
/// use gcr_activity::{paper_example_rtl, ActivityTables, InstructionStream, TableBuilder};
///
/// let rtl = paper_example_rtl();
/// let stream = InstructionStream::from_indices(&rtl, [0, 1, 3, 0, 2, 1])?;
/// let mut builder = TableBuilder::new(&rtl)?;
/// for chunk in stream.instructions().chunks(2) {
///     builder.feed(chunk);
/// }
/// let tables = builder.finish(&rtl)?;
/// let oracle = ActivityTables::scan(&rtl, &stream);
/// assert_eq!(tables.itmatt(), oracle.itmatt());
/// # Ok::<(), gcr_activity::ActivityError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TableBuilder {
    counts: PartialCounts,
    first: Option<InstructionId>,
    last: Option<InstructionId>,
    cycles: u64,
}

impl TableBuilder {
    /// A builder for `rtl`'s instruction universe, using the default
    /// dense/sparse threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::CapacityExceeded`] when `rtl` exceeds
    /// [`Itmatt::MAX_INSTRUCTIONS`] — checked before any K-sized
    /// allocation.
    pub fn new(rtl: &Rtl) -> Result<Self, ActivityError> {
        Self::with_dense_limit(rtl, DEFAULT_DENSE_LIMIT)
    }

    /// As [`Self::new`] with an explicit dense/sparse threshold
    /// (`dense_limit == 0` forces sparse accumulation).
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::CapacityExceeded`] when `rtl` exceeds
    /// [`Itmatt::MAX_INSTRUCTIONS`].
    pub fn with_dense_limit(rtl: &Rtl, dense_limit: usize) -> Result<Self, ActivityError> {
        let k = rtl.num_instructions();
        Itmatt::check_capacity(k)?;
        let mut counts = PartialCounts::default();
        counts.reset(k, dense_limit);
        Ok(Self {
            counts,
            first: None,
            last: None,
            cycles: 0,
        })
    }

    /// Feeds the next cycles of the trace, in stream order. Pairs inside
    /// `chunk` and the pair spanning the previous `feed` call are both
    /// counted, so any chunking of a trace yields the same counts.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` contains an id outside the builder's RTL
    /// (sources constructed through this crate only yield validated ids).
    pub fn feed(&mut self, chunk: &[InstructionId]) {
        let Some(&chunk_first) = chunk.first() else {
            return;
        };
        if let Some(prev) = self.last {
            self.counts.count_pair(prev, chunk_first);
        }
        if self.first.is_none() {
            self.first = Some(chunk_first);
        }
        self.counts.count_chunk(chunk);
        self.last = chunk.last().copied();
        self.cycles += chunk.len() as u64;
    }

    /// Cycles fed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Appends `other`'s counts, stitching the pair spanning the shard
    /// boundary — `other` must have observed the cycles *immediately
    /// following* this builder's, and both must share an RTL universe.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InvalidStream`] when instruction
    /// universes differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), ActivityError> {
        if self.counts.k != other.counts.k {
            return Err(ActivityError::InvalidStream {
                reason: format!(
                    "cannot merge builders over {} and {} instructions",
                    self.counts.k, other.counts.k
                ),
            });
        }
        if let (Some(prev), Some(next)) = (self.last, other.first) {
            self.counts.count_pair(prev, next);
        }
        if self.first.is_none() {
            self.first = other.first;
        }
        if other.last.is_some() {
            self.last = other.last;
        }
        self.counts.absorb(&other.counts);
        self.cycles += other.cycles;
        Ok(())
    }

    /// The single final normalization: builds [`ActivityTables`] from the
    /// accumulated integer counts, bit-identical to a sequential scan of
    /// the same trace.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InvalidStream`] when fewer than two
    /// cycles were fed or `rtl` does not match the builder's universe.
    pub fn finish(&self, rtl: &Rtl) -> Result<ActivityTables, ActivityError> {
        if rtl.num_instructions() != self.counts.k {
            return Err(ActivityError::InvalidStream {
                reason: format!(
                    "RTL defines {} instructions but the builder counted {}",
                    rtl.num_instructions(),
                    self.counts.k
                ),
            });
        }
        if self.cycles < 2 {
            return Err(ActivityError::InvalidStream {
                reason: format!(
                    "need at least 2 cycles for transition statistics, got {}",
                    self.cycles
                ),
            });
        }
        let ift = Ift::from_counts(&self.counts.instr, self.cycles);
        let pair_probs = self.counts.to_pair_probs(self.cycles - 1);
        let itmatt = Itmatt::from_dense(self.counts.k, pair_probs)?;
        Ok(ActivityTables::from_parts(rtl.clone(), ift, itmatt))
    }
}

/// One worker's reusable state: a chunk buffer plus its partial counts.
#[derive(Clone, Debug, Default)]
struct WorkerSlot {
    buf: Vec<InstructionId>,
    counts: PartialCounts,
}

/// Reusable buffers of [`scan_source`]. A warm rescan with the same
/// shape (instructions, chunk size, threads) performs zero chunk-loop
/// allocations when single-threaded.
#[derive(Clone, Debug, Default)]
pub struct ScanScratch {
    workers: Vec<WorkerSlot>,
}

impl ScanScratch {
    /// An empty scratch; the first scan grows it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Shapes `threads` worker slots for `k` instructions and
    /// `chunk`-cycle buffers, zeroing counts but keeping capacity.
    fn ensure(&mut self, k: usize, chunk: usize, threads: usize, dense_limit: usize) {
        if self.workers.len() < threads {
            self.workers.resize_with(threads, WorkerSlot::default);
        }
        for slot in &mut self.workers[..threads] {
            if slot.buf.len() != chunk {
                slot.buf.clear();
                slot.buf.resize(chunk, InstructionId::default());
            }
            slot.counts.reset(k, dense_limit);
        }
    }
}

/// The shared cursor workers pull chunks through. Reads are serialized,
/// which is what makes the boundary stitch exact: `prev_last` always
/// holds the final instruction of the chunk read immediately before.
struct SourceCursor<'s> {
    source: &'s mut dyn TraceSource,
    prev_last: Option<InstructionId>,
    cycles: u64,
    chunks: u64,
    done: bool,
    failed: Option<ActivityError>,
}

fn lock_cursor<'a, 's>(
    shared: &'a Mutex<SourceCursor<'s>>,
) -> std::sync::MutexGuard<'a, SourceCursor<'s>> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker: pull a chunk under the lock, count the boundary pair,
/// release the lock, count the chunk body into the worker's own table.
fn worker_loop(shared: &Mutex<SourceCursor<'_>>, slot: &mut WorkerSlot) {
    loop {
        let mut cursor = lock_cursor(shared);
        if cursor.done || cursor.failed.is_some() {
            return;
        }
        match cursor.source.next_chunk(&mut slot.buf) {
            Ok(0) => {
                cursor.done = true;
                return;
            }
            Ok(n) => {
                let n = n.min(slot.buf.len());
                if let Some(prev) = cursor.prev_last {
                    slot.counts.count_pair(prev, slot.buf[0]);
                }
                cursor.prev_last = Some(slot.buf[n - 1]);
                cursor.cycles += n as u64;
                cursor.chunks += 1;
                drop(cursor);
                slot.counts.count_chunk(&slot.buf[..n]);
            }
            Err(e) => {
                cursor.failed = Some(e);
                return;
            }
        }
    }
}

/// Builds [`ActivityTables`] by streaming `source` through a chunked,
/// parallel count pipeline. Bit-identical to [`ActivityTables::scan`]
/// over the same trace at every thread count and chunk size; peak memory
/// is O(threads · chunk + observed pairs) — the trace is never
/// materialized.
///
/// # Errors
///
/// Returns [`ActivityError::CapacityExceeded`] for oversized RTLs,
/// [`ActivityError::InvalidStream`] when the source yields fewer than two
/// cycles, and any error the source itself reports.
///
/// # Panics
///
/// Panics if the source yields an instruction id outside `rtl` (sources
/// constructed through this crate only yield validated ids) or if a
/// worker thread panics.
pub fn scan_source(
    rtl: &Rtl,
    source: &mut dyn TraceSource,
    params: &ScanParams,
    scratch: &mut ScanScratch,
) -> Result<(ActivityTables, ScanProfile), ActivityError> {
    scan_source_traced(rtl, source, params, scratch, &Tracer::disabled())
}

/// As [`scan_source`], reporting `activity.scan > activity.chunks /
/// activity.merge` spans and cycle/throughput counters through `tracer`
/// (see `docs/observability.md`). Events are emitted after each timed
/// window closes, so tracing does not perturb the allocation counts.
///
/// # Errors
///
/// As [`scan_source`].
///
/// # Panics
///
/// As [`scan_source`].
#[expect(
    clippy::expect_used,
    reason = "a panicking scan worker is unrecoverable; propagate the panic"
)]
pub fn scan_source_traced(
    rtl: &Rtl,
    source: &mut dyn TraceSource,
    params: &ScanParams,
    scratch: &mut ScanScratch,
    tracer: &Tracer,
) -> Result<(ActivityTables, ScanProfile), ActivityError> {
    let scan_start_ns = tracer.now_ns();
    let k = rtl.num_instructions();
    Itmatt::check_capacity(k)?;
    let chunk = params.chunk_cycles.max(1);
    let threads = resolve_threads(params.threads, tracer);
    scratch.ensure(k, chunk, threads, params.dense_limit);
    let workers = &mut scratch.workers[..threads];

    let shared = Mutex::new(SourceCursor {
        source,
        prev_last: None,
        cycles: 0,
        chunks: 0,
        done: false,
        failed: None,
    });

    // Chunk window: reads + counting across all workers. Single-threaded
    // scans run the worker loop inline — no spawn, so a warm rescan's
    // window is allocation-free.
    let chunks_start_ns = tracer.now_ns();
    let chunk_start = Instant::now();
    let allocs_before = alloc_count();
    if threads == 1 {
        worker_loop(&shared, &mut workers[0]);
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter_mut()
                .map(|slot| {
                    let shared = &shared;
                    scope.spawn(move || worker_loop(shared, slot))
                })
                .collect();
            for handle in handles {
                handle.join().expect("activity scan worker panicked");
            }
        });
    }
    let chunk_ms = chunk_start.elapsed().as_secs_f64() * 1e3;
    let chunk_allocs = alloc_count() - allocs_before;

    let cursor = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(err) = cursor.failed {
        return Err(err);
    }
    if cursor.cycles < 2 {
        return Err(ActivityError::InvalidStream {
            reason: format!(
                "need at least 2 cycles for transition statistics, got {}",
                cursor.cycles
            ),
        });
    }

    // Merge window: fold the partial tables (slot-wise integer adds, so
    // the fold order cannot affect the result) and normalize once.
    let merge_start_ns = tracer.now_ns();
    let merge_start = Instant::now();
    let merge_allocs_before = alloc_count();
    let (first, rest) = workers
        .split_first_mut()
        .expect("threads >= 1 worker slots");
    for other in rest.iter() {
        first.counts.absorb(&other.counts);
    }
    debug_assert_eq!(first.counts.cycles(), cursor.cycles);
    let ift = Ift::from_counts(&first.counts.instr, cursor.cycles);
    let pair_probs = first.counts.to_pair_probs(cursor.cycles - 1);
    let itmatt = Itmatt::from_dense(k, pair_probs)?;
    let tables = ActivityTables::from_parts(rtl.clone(), ift, itmatt);
    let merge_ms = merge_start.elapsed().as_secs_f64() * 1e3;
    let merge_allocs = alloc_count() - merge_allocs_before;

    let profile = ScanProfile {
        cycles: cursor.cycles,
        chunks: cursor.chunks,
        threads,
        chunk_ms,
        merge_ms,
        chunk_allocs,
        merge_allocs,
    };

    // All trace events fire after the timed windows close, so an active
    // sink cannot perturb the allocation discipline being measured.
    if tracer.enabled() {
        let ns = |ms: f64| (ms * 1e6) as u64;
        tracer.complete_span("activity.chunks", chunks_start_ns, ns(chunk_ms));
        tracer.complete_span("activity.merge", merge_start_ns, ns(merge_ms));
        tracer.complete_span(
            "activity.scan",
            scan_start_ns,
            tracer.now_ns().saturating_sub(scan_start_ns),
        );
        tracer.counter("activity.cycles", profile.cycles as f64);
        tracer.counter("activity.chunks", profile.chunks as f64);
        tracer.counter("activity.threads", threads as f64);
        tracer.counter("activity.cycles_per_sec", profile.cycles_per_sec());
        tracer.counter("activity.instructions", k as f64);
        tracer.counter("activity.modules", rtl.num_modules() as f64);
        tracer.counter(
            "activity.itmatt_nonzero",
            tables.itmatt().nonzero_len() as f64,
        );
    }

    Ok((tables, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_example_rtl, InstructionStream, SliceSource};

    fn paper_stream(rtl: &Rtl) -> InstructionStream {
        InstructionStream::from_indices(
            rtl,
            [0, 1, 3, 0, 2, 1, 0, 0, 1, 0, 2, 0, 1, 2, 0, 0, 1, 1, 3, 1],
        )
        .unwrap()
    }

    fn assert_tables_identical(a: &ActivityTables, b: &ActivityTables) {
        assert_eq!(a.ift(), b.ift());
        assert_eq!(a.itmatt(), b.itmatt());
    }

    #[test]
    fn scan_source_matches_sequential_scan_exactly() {
        let rtl = paper_example_rtl();
        let stream = paper_stream(&rtl);
        let oracle = ActivityTables::scan(&rtl, &stream);
        for chunk_cycles in [1, 2, 3, 7, 64] {
            for threads in [1, 2, 4] {
                let params = ScanParams {
                    threads: Some(threads),
                    chunk_cycles,
                    ..ScanParams::default()
                };
                let mut scratch = ScanScratch::new();
                let mut source = SliceSource::new(&stream);
                let (tables, profile) =
                    scan_source(&rtl, &mut source, &params, &mut scratch).unwrap();
                assert_tables_identical(&tables, &oracle);
                assert_eq!(profile.cycles, 20);
                assert_eq!(profile.threads, threads);
            }
        }
    }

    #[test]
    fn sparse_accumulation_matches_dense() {
        let rtl = paper_example_rtl();
        let stream = paper_stream(&rtl);
        let oracle = ActivityTables::scan(&rtl, &stream);
        let params = ScanParams {
            threads: Some(2),
            chunk_cycles: 3,
            dense_limit: 0, // force the sparse per-worker path
        };
        let mut scratch = ScanScratch::new();
        let mut source = SliceSource::new(&stream);
        let (tables, _) = scan_source(&rtl, &mut source, &params, &mut scratch).unwrap();
        assert_tables_identical(&tables, &oracle);
    }

    #[test]
    fn scratch_reuse_across_scans_is_exact() {
        let rtl = paper_example_rtl();
        let stream = paper_stream(&rtl);
        let oracle = ActivityTables::scan(&rtl, &stream);
        let params = ScanParams {
            threads: Some(1),
            chunk_cycles: 4,
            ..ScanParams::default()
        };
        let mut scratch = ScanScratch::new();
        for _ in 0..3 {
            let mut source = SliceSource::new(&stream);
            let (tables, _) = scan_source(&rtl, &mut source, &params, &mut scratch).unwrap();
            assert_tables_identical(&tables, &oracle);
        }
    }

    #[test]
    fn table_builder_feed_and_merge_stitch_boundaries() {
        let rtl = paper_example_rtl();
        let stream = paper_stream(&rtl);
        let oracle = ActivityTables::scan(&rtl, &stream);
        let ids = stream.instructions();

        // Arbitrary chunking through one builder.
        let mut builder = TableBuilder::new(&rtl).unwrap();
        for chunk in ids.chunks(3) {
            builder.feed(chunk);
        }
        builder.feed(&[]); // empty feeds are no-ops
        assert_eq!(builder.cycles(), 20);
        assert_tables_identical(&builder.finish(&rtl).unwrap(), &oracle);

        // Three shards merged in stream order.
        let mut left = TableBuilder::new(&rtl).unwrap();
        left.feed(&ids[..7]);
        let mut mid = TableBuilder::new(&rtl).unwrap();
        mid.feed(&ids[7..13]);
        let mut right = TableBuilder::new(&rtl).unwrap();
        right.feed(&ids[13..]);
        left.merge(&mid).unwrap();
        left.merge(&right).unwrap();
        assert_tables_identical(&left.finish(&rtl).unwrap(), &oracle);

        // Merging an empty shard is a no-op.
        let empty = TableBuilder::new(&rtl).unwrap();
        left.merge(&empty).unwrap();
        assert_tables_identical(&left.finish(&rtl).unwrap(), &oracle);
    }

    #[test]
    fn builder_errors_are_structured() {
        let rtl = paper_example_rtl();
        // Too few cycles.
        let builder = TableBuilder::new(&rtl).unwrap();
        assert!(matches!(
            builder.finish(&rtl).unwrap_err(),
            ActivityError::InvalidStream { .. }
        ));
        // Universe mismatch on merge.
        let other_rtl = Rtl::builder(1)
            .instruction("X", [0])
            .unwrap()
            .build()
            .unwrap();
        let mut a = TableBuilder::new(&rtl).unwrap();
        let b = TableBuilder::new(&other_rtl).unwrap();
        assert!(a.merge(&b).is_err());
        // Universe mismatch on finish.
        let mut c = TableBuilder::new(&other_rtl).unwrap();
        c.feed(&[InstructionId(0), InstructionId(0)]);
        assert!(c.finish(&rtl).is_err());
    }

    #[test]
    fn scan_source_rejects_short_traces() {
        let rtl = paper_example_rtl();
        let stream = paper_stream(&rtl);
        let one = [stream.instructions()[0]];
        let mut source = crate::SliceSource::from_ids(&one);
        let mut scratch = ScanScratch::new();
        let err = scan_source(&rtl, &mut source, &ScanParams::default(), &mut scratch).unwrap_err();
        assert!(matches!(err, ActivityError::InvalidStream { .. }));
    }

    #[test]
    fn traced_scan_is_identical_and_emits_taxonomy() {
        use std::sync::Arc;

        let rtl = paper_example_rtl();
        let stream = paper_stream(&rtl);
        let oracle = ActivityTables::scan(&rtl, &stream);
        let sink = Arc::new(gcr_trace::ChromeTraceSink::new());
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn gcr_trace::TraceSink>);
        let params = ScanParams {
            threads: Some(2),
            chunk_cycles: 5,
            ..ScanParams::default()
        };
        let mut scratch = ScanScratch::new();
        let mut source = SliceSource::new(&stream);
        let (tables, _) =
            scan_source_traced(&rtl, &mut source, &params, &mut scratch, &tracer).unwrap();
        assert_tables_identical(&tables, &oracle);
        let json = sink.to_json();
        for name in [
            "activity.scan",
            "activity.chunks",
            "activity.merge",
            "activity.cycles_per_sec",
        ] {
            assert!(json.contains(name), "trace missing {name}");
        }
    }
}
