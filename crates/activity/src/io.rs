//! Plain-text import/export for RTL descriptions and instruction traces,
//! so the library can be driven by real instruction-level simulators.
//!
//! # RTL format
//!
//! One instruction per line: `name: module module …`, where each module is
//! either `M<k>` (1-based, the paper's Table-1 notation) or a bare 0-based
//! index. Blank lines and `#` comments are ignored. The module universe is
//! either given explicitly or inferred as the largest index + 1.
//!
//! ```text
//! # Table 1 of the paper
//! I1: M1 M2 M3 M5
//! I2: M1 M4
//! I3: M2 M5 M6
//! I4: M3 M4
//! ```
//!
//! # Trace format
//!
//! Whitespace-separated instruction names (or 0-based indices), in
//! execution order; `#` starts a comment until end of line.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::BufRead;

use crate::{ActivityError, InstructionId, InstructionStream, Rtl, TraceSource};

/// Parses an RTL description from the text format above.
///
/// `num_modules` fixes the module universe; pass `None` to infer it from
/// the largest module index used.
///
/// # Errors
///
/// Returns [`ActivityError::InvalidStream`] for malformed lines or module
/// tokens, and the usual builder errors for out-of-range indices or empty
/// descriptions.
pub fn parse_rtl(text: &str, num_modules: Option<usize>) -> Result<Rtl, ActivityError> {
    let mut entries: Vec<(String, Vec<usize>)> = Vec::new();
    let mut max_module = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| ActivityError::InvalidStream {
                reason: format!("line {}: expected `name: modules…`", lineno + 1),
            })?;
        let name = name.trim();
        if name.is_empty() {
            return Err(ActivityError::InvalidStream {
                reason: format!("line {}: empty instruction name", lineno + 1),
            });
        }
        let mut modules = Vec::new();
        for tok in rest.split_whitespace() {
            let m = parse_module(tok).ok_or_else(|| ActivityError::InvalidStream {
                reason: format!("line {}: bad module token `{tok}`", lineno + 1),
            })?;
            max_module = max_module.max(m);
            modules.push(m);
        }
        entries.push((name.to_owned(), modules));
    }
    let universe = num_modules.unwrap_or(if entries.is_empty() {
        0
    } else {
        max_module + 1
    });
    let mut builder = Rtl::builder(universe);
    for (name, modules) in entries {
        builder = builder.instruction(&name, modules)?;
    }
    builder.build()
}

/// Parses an instruction trace: whitespace-separated instruction names or
/// 0-based indices, validated against `rtl`.
///
/// Materializes the whole trace; for multi-million-cycle inputs stream a
/// [`TextTraceSource`] through [`crate::scan_source`] instead — this
/// function is a thin drain over the same tokenizer.
///
/// # Errors
///
/// Returns [`ActivityError::InvalidStream`] for unknown instruction names
/// and the usual stream errors (length < 2, index out of range).
pub fn parse_trace(rtl: &Rtl, text: &str) -> Result<InstructionStream, ActivityError> {
    let mut source = TextTraceSource::new(rtl, text.as_bytes());
    let mut ids = Vec::new();
    let mut buf = [InstructionId::default(); 256];
    loop {
        let n = source.next_chunk(&mut buf)?;
        if n == 0 {
            break;
        }
        ids.extend_from_slice(&buf[..n]);
    }
    InstructionStream::from_ids(ids)
}

/// A [`TraceSource`] tokenizing the text trace format from any buffered
/// reader — one line in memory at a time, so a trace file of any length
/// streams through [`crate::scan_source`] in bounded memory.
///
/// Tokens are instruction names or 0-based indices, `#` starts a comment
/// until end of line, exactly as in [`parse_trace`].
///
/// ```
/// use gcr_activity::io::TextTraceSource;
/// use gcr_activity::{paper_example_rtl, ScanParams, ScanScratch};
///
/// let rtl = paper_example_rtl();
/// let mut source = TextTraceSource::new(&rtl, "I1 I2 # warm-up\nI1 I4\n".as_bytes());
/// let mut scratch = ScanScratch::new();
/// let (tables, profile) =
///     gcr_activity::scan_source(&rtl, &mut source, &ScanParams::default(), &mut scratch)?;
/// assert_eq!(profile.cycles, 4);
/// # let _ = tables;
/// # Ok::<(), gcr_activity::ActivityError>(())
/// ```
#[derive(Debug)]
pub struct TextTraceSource<R> {
    reader: R,
    by_name: HashMap<String, u32>,
    num_instructions: usize,
    /// Current line; `pos..end` is the unconsumed, comment-stripped tail.
    line: String,
    pos: usize,
    end: usize,
}

impl<R: BufRead> TextTraceSource<R> {
    /// Streams the trace text from `reader`, resolving tokens against
    /// `rtl`.
    #[must_use]
    pub fn new(rtl: &Rtl, reader: R) -> Self {
        let by_name = rtl
            .instruction_ids()
            .map(|id| (rtl.name(id).to_owned(), id.index() as u32))
            .collect();
        Self {
            reader,
            by_name,
            num_instructions: rtl.num_instructions(),
            line: String::new(),
            pos: 0,
            end: 0,
        }
    }

    /// Pulls the next line into the reused buffer; false at end of input.
    fn refill(&mut self) -> Result<bool, ActivityError> {
        self.line.clear();
        let read =
            self.reader
                .read_line(&mut self.line)
                .map_err(|e| ActivityError::InvalidStream {
                    reason: format!("trace read error: {e}"),
                })?;
        self.pos = 0;
        self.end = strip_comment(&self.line).len();
        Ok(read > 0)
    }

    /// The next whitespace-delimited token of the current line, if any.
    fn next_line_token(&mut self) -> Option<(usize, usize)> {
        let bytes = self.line.as_bytes();
        let mut start = self.pos;
        while start < self.end && bytes[start].is_ascii_whitespace() {
            start += 1;
        }
        if start >= self.end {
            self.pos = self.end;
            return None;
        }
        let mut stop = start;
        while stop < self.end && !bytes[stop].is_ascii_whitespace() {
            stop += 1;
        }
        self.pos = stop;
        Some((start, stop))
    }

    /// Resolves one token to a validated instruction id.
    fn resolve(&self, start: usize, stop: usize) -> Result<InstructionId, ActivityError> {
        let tok = &self.line[start..stop];
        if let Some(&i) = self.by_name.get(tok) {
            return Ok(InstructionId(i));
        }
        if let Ok(i) = tok.parse::<usize>() {
            if i >= self.num_instructions {
                return Err(ActivityError::InstructionOutOfRange {
                    instruction: i,
                    num_instructions: self.num_instructions,
                });
            }
            return Ok(InstructionId(i as u32));
        }
        Err(ActivityError::InvalidStream {
            reason: format!("unknown instruction `{tok}`"),
        })
    }
}

impl<R: BufRead + Send> TraceSource for TextTraceSource<R> {
    fn next_chunk(&mut self, buf: &mut [InstructionId]) -> Result<usize, ActivityError> {
        let mut written = 0usize;
        while written < buf.len() {
            if let Some((start, stop)) = self.next_line_token() {
                buf[written] = self.resolve(start, stop)?;
                written += 1;
            } else if !self.refill()? {
                break;
            }
        }
        Ok(written)
    }
}

/// Serializes an RTL description to the text format (round-trips through
/// [`parse_rtl`]).
#[must_use]
pub fn format_rtl(rtl: &Rtl) -> String {
    let mut out = String::new();
    for id in rtl.instruction_ids() {
        let _ = write!(out, "{}:", rtl.name(id));
        for m in rtl.modules_used(id).iter() {
            let _ = write!(out, " M{}", m + 1);
        }
        out.push('\n');
    }
    out
}

/// Serializes a trace as one instruction name per line (round-trips
/// through [`parse_trace`]).
#[must_use]
pub fn format_trace(rtl: &Rtl, stream: &InstructionStream) -> String {
    let mut out = String::new();
    for &id in stream.instructions() {
        out.push_str(rtl.name(id));
        out.push('\n');
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// `M<k>` (1-based) or a bare 0-based index.
fn parse_module(tok: &str) -> Option<usize> {
    if let Some(rest) = tok.strip_prefix(['M', 'm']) {
        let k: usize = rest.parse().ok()?;
        (k >= 1).then(|| k - 1)
    } else {
        tok.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_example_rtl, ModuleSet};

    const PAPER_RTL: &str = "\
# Table 1 of the paper
I1: M1 M2 M3 M5
I2: M1 M4

I3: M2 M5 M6
I4: M3 M4  # integer/memory
";

    #[test]
    fn parses_the_paper_rtl() {
        let rtl = parse_rtl(PAPER_RTL, None).unwrap();
        assert_eq!(rtl.num_instructions(), 4);
        assert_eq!(rtl.num_modules(), 6);
        let i1 = rtl.instruction(0).unwrap();
        assert_eq!(rtl.name(i1), "I1");
        assert!(rtl.uses(i1, 0) && rtl.uses(i1, 4) && !rtl.uses(i1, 3));
    }

    #[test]
    fn explicit_universe_overrides_inference() {
        let rtl = parse_rtl("a: 0 1\nb: 2", Some(10)).unwrap();
        assert_eq!(rtl.num_modules(), 10);
    }

    #[test]
    fn rtl_round_trip() {
        let rtl = paper_example_rtl();
        let text = format_rtl(&rtl);
        let back = parse_rtl(&text, Some(rtl.num_modules())).unwrap();
        assert_eq!(back.num_instructions(), rtl.num_instructions());
        for id in rtl.instruction_ids() {
            let back_id = back.instruction(id.index()).unwrap();
            assert_eq!(back.name(back_id), rtl.name(id));
            for m in 0..rtl.num_modules() {
                assert_eq!(back.uses(back_id, m), rtl.uses(id, m));
            }
        }
    }

    #[test]
    fn trace_by_name_and_index() {
        let rtl = parse_rtl(PAPER_RTL, None).unwrap();
        let s = parse_trace(&rtl, "I1 I2 0 3 I3 # trailing comment\nI1").unwrap();
        assert_eq!(s.len(), 6);
        // Name and index resolve to the same instruction.
        assert_eq!(s.instructions()[0], s.instructions()[2]);
        // And probabilities work end to end.
        let m1 = ModuleSet::with_modules(6, [0]);
        assert!(s.signal_probability(&rtl, &m1) > 0.0);
    }

    #[test]
    fn trace_round_trip() {
        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 1, 2, 3, 0]).unwrap();
        let text = format_trace(&rtl, &s);
        let back = parse_trace(&rtl, &text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(parse_rtl("no-colon-here", None).is_err());
        assert!(parse_rtl("x: M0", None).is_err()); // M is 1-based
        assert!(parse_rtl("x: banana", None).is_err());
        assert!(parse_rtl(": M1", None).is_err());
        let rtl = paper_example_rtl();
        assert!(parse_trace(&rtl, "I1 NOPE").is_err());
        assert!(parse_trace(&rtl, "I1").is_err()); // too short
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let rtl = parse_rtl("# header\n\n  a: M1  # tail\n", Some(2)).unwrap();
        assert_eq!(rtl.num_instructions(), 1);
    }

    #[test]
    fn text_source_matches_parse_trace() {
        use crate::TraceSource;
        let rtl = parse_rtl(PAPER_RTL, None).unwrap();
        let text = "I1 I2 0 3 I3 # trailing comment\nI1\n\n# only a comment\n2 I4";
        let oracle = parse_trace(&rtl, text).unwrap();
        // Drain through a tiny buffer to exercise token carry-over.
        let mut source = TextTraceSource::new(&rtl, text.as_bytes());
        let mut got = Vec::new();
        let mut buf = [crate::InstructionId::default(); 3];
        loop {
            let n = source.next_chunk(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, oracle.instructions());
        // Exhausted sources keep returning 0.
        assert_eq!(source.next_chunk(&mut buf).unwrap(), 0);
    }

    #[test]
    fn text_source_reports_structured_errors() {
        use crate::{ActivityError, TraceSource};
        let rtl = paper_example_rtl();
        let mut buf = [crate::InstructionId::default(); 8];
        let mut bad_name = TextTraceSource::new(&rtl, "I1 NOPE".as_bytes());
        assert!(matches!(
            bad_name.next_chunk(&mut buf).unwrap_err(),
            ActivityError::InvalidStream { .. }
        ));
        let mut bad_index = TextTraceSource::new(&rtl, "I1 9".as_bytes());
        assert!(matches!(
            bad_index.next_chunk(&mut buf).unwrap_err(),
            ActivityError::InstructionOutOfRange {
                instruction: 9,
                num_instructions: 4,
            }
        ));
    }
}
