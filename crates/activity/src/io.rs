//! Plain-text import/export for RTL descriptions and instruction traces,
//! so the library can be driven by real instruction-level simulators.
//!
//! # RTL format
//!
//! One instruction per line: `name: module module …`, where each module is
//! either `M<k>` (1-based, the paper's Table-1 notation) or a bare 0-based
//! index. Blank lines and `#` comments are ignored. The module universe is
//! either given explicitly or inferred as the largest index + 1.
//!
//! ```text
//! # Table 1 of the paper
//! I1: M1 M2 M3 M5
//! I2: M1 M4
//! I3: M2 M5 M6
//! I4: M3 M4
//! ```
//!
//! # Trace format
//!
//! Whitespace-separated instruction names (or 0-based indices), in
//! execution order; `#` starts a comment until end of line.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{ActivityError, InstructionStream, Rtl};

/// Parses an RTL description from the text format above.
///
/// `num_modules` fixes the module universe; pass `None` to infer it from
/// the largest module index used.
///
/// # Errors
///
/// Returns [`ActivityError::InvalidStream`] for malformed lines or module
/// tokens, and the usual builder errors for out-of-range indices or empty
/// descriptions.
pub fn parse_rtl(text: &str, num_modules: Option<usize>) -> Result<Rtl, ActivityError> {
    let mut entries: Vec<(String, Vec<usize>)> = Vec::new();
    let mut max_module = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| ActivityError::InvalidStream {
                reason: format!("line {}: expected `name: modules…`", lineno + 1),
            })?;
        let name = name.trim();
        if name.is_empty() {
            return Err(ActivityError::InvalidStream {
                reason: format!("line {}: empty instruction name", lineno + 1),
            });
        }
        let mut modules = Vec::new();
        for tok in rest.split_whitespace() {
            let m = parse_module(tok).ok_or_else(|| ActivityError::InvalidStream {
                reason: format!("line {}: bad module token `{tok}`", lineno + 1),
            })?;
            max_module = max_module.max(m);
            modules.push(m);
        }
        entries.push((name.to_owned(), modules));
    }
    let universe = num_modules.unwrap_or(if entries.is_empty() {
        0
    } else {
        max_module + 1
    });
    let mut builder = Rtl::builder(universe);
    for (name, modules) in entries {
        builder = builder.instruction(&name, modules)?;
    }
    builder.build()
}

/// Parses an instruction trace: whitespace-separated instruction names or
/// 0-based indices, validated against `rtl`.
///
/// # Errors
///
/// Returns [`ActivityError::InvalidStream`] for unknown instruction names
/// and the usual stream errors (length < 2, index out of range).
pub fn parse_trace(rtl: &Rtl, text: &str) -> Result<InstructionStream, ActivityError> {
    let by_name: HashMap<&str, usize> = rtl
        .instruction_ids()
        .map(|id| (rtl.name(id), id.index()))
        .collect();
    let mut indices = Vec::new();
    for raw in text.lines() {
        for tok in strip_comment(raw).split_whitespace() {
            let idx = if let Some(&i) = by_name.get(tok) {
                i
            } else if let Ok(i) = tok.parse::<usize>() {
                i
            } else {
                return Err(ActivityError::InvalidStream {
                    reason: format!("unknown instruction `{tok}`"),
                });
            };
            indices.push(idx);
        }
    }
    InstructionStream::from_indices(rtl, indices)
}

/// Serializes an RTL description to the text format (round-trips through
/// [`parse_rtl`]).
#[must_use]
pub fn format_rtl(rtl: &Rtl) -> String {
    let mut out = String::new();
    for id in rtl.instruction_ids() {
        let _ = write!(out, "{}:", rtl.name(id));
        for m in rtl.modules_used(id).iter() {
            let _ = write!(out, " M{}", m + 1);
        }
        out.push('\n');
    }
    out
}

/// Serializes a trace as one instruction name per line (round-trips
/// through [`parse_trace`]).
#[must_use]
pub fn format_trace(rtl: &Rtl, stream: &InstructionStream) -> String {
    let mut out = String::new();
    for &id in stream.instructions() {
        out.push_str(rtl.name(id));
        out.push('\n');
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// `M<k>` (1-based) or a bare 0-based index.
fn parse_module(tok: &str) -> Option<usize> {
    if let Some(rest) = tok.strip_prefix(['M', 'm']) {
        let k: usize = rest.parse().ok()?;
        (k >= 1).then(|| k - 1)
    } else {
        tok.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_example_rtl, ModuleSet};

    const PAPER_RTL: &str = "\
# Table 1 of the paper
I1: M1 M2 M3 M5
I2: M1 M4

I3: M2 M5 M6
I4: M3 M4  # integer/memory
";

    #[test]
    fn parses_the_paper_rtl() {
        let rtl = parse_rtl(PAPER_RTL, None).unwrap();
        assert_eq!(rtl.num_instructions(), 4);
        assert_eq!(rtl.num_modules(), 6);
        let i1 = rtl.instruction(0).unwrap();
        assert_eq!(rtl.name(i1), "I1");
        assert!(rtl.uses(i1, 0) && rtl.uses(i1, 4) && !rtl.uses(i1, 3));
    }

    #[test]
    fn explicit_universe_overrides_inference() {
        let rtl = parse_rtl("a: 0 1\nb: 2", Some(10)).unwrap();
        assert_eq!(rtl.num_modules(), 10);
    }

    #[test]
    fn rtl_round_trip() {
        let rtl = paper_example_rtl();
        let text = format_rtl(&rtl);
        let back = parse_rtl(&text, Some(rtl.num_modules())).unwrap();
        assert_eq!(back.num_instructions(), rtl.num_instructions());
        for id in rtl.instruction_ids() {
            let back_id = back.instruction(id.index()).unwrap();
            assert_eq!(back.name(back_id), rtl.name(id));
            for m in 0..rtl.num_modules() {
                assert_eq!(back.uses(back_id, m), rtl.uses(id, m));
            }
        }
    }

    #[test]
    fn trace_by_name_and_index() {
        let rtl = parse_rtl(PAPER_RTL, None).unwrap();
        let s = parse_trace(&rtl, "I1 I2 0 3 I3 # trailing comment\nI1").unwrap();
        assert_eq!(s.len(), 6);
        // Name and index resolve to the same instruction.
        assert_eq!(s.instructions()[0], s.instructions()[2]);
        // And probabilities work end to end.
        let m1 = ModuleSet::with_modules(6, [0]);
        assert!(s.signal_probability(&rtl, &m1) > 0.0);
    }

    #[test]
    fn trace_round_trip() {
        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 1, 2, 3, 0]).unwrap();
        let text = format_trace(&rtl, &s);
        let back = parse_trace(&rtl, &text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(parse_rtl("no-colon-here", None).is_err());
        assert!(parse_rtl("x: M0", None).is_err()); // M is 1-based
        assert!(parse_rtl("x: banana", None).is_err());
        assert!(parse_rtl(": M1", None).is_err());
        let rtl = paper_example_rtl();
        assert!(parse_trace(&rtl, "I1 NOPE").is_err());
        assert!(parse_trace(&rtl, "I1").is_err()); // too short
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let rtl = parse_rtl("# header\n\n  a: M1  # tail\n", Some(2)).unwrap();
        assert_eq!(rtl.num_instructions(), 1);
    }
}
