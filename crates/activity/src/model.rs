use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ActivityError, InstructionId, InstructionStream, Rtl, TraceSource};

/// A synthetic processor model: a randomly generated RTL description plus a
/// first-order Markov instruction process.
///
/// This substitutes for the paper's "instruction level simulation of the
/// processor with a number of benchmark programs" (§3.2 / §5): the router
/// consumes only instruction statistics, and this model controls exactly
/// the statistics the paper's experiments vary —
///
/// * **usage fraction** — the average fraction of modules each instruction
///   uses (Table 4's `Ave(M(I))` ≈ 40 %), which sets the average module
///   activity swept in Fig. 4;
/// * **persistence** — the probability that the next cycle repeats the
///   current instruction, which sets how often enables toggle and thus the
///   controller-tree switched capacitance;
/// * **frequency skew** — a Zipf-like exponent making some instructions
///   much more common than others, as in real instruction mixes.
///
/// ```
/// use gcr_activity::{ActivityTables, CpuModel};
///
/// let model = CpuModel::builder(64)  // 64 modules
///     .instructions(16)
///     .usage_fraction(0.4)
///     .persistence(0.6)
///     .seed(7)
///     .build()?;
/// let stream = model.generate_stream(5_000);
/// let tables = ActivityTables::scan(model.rtl(), &stream);
/// # let _ = tables;
/// # Ok::<(), gcr_activity::ActivityError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CpuModel {
    rtl: Rtl,
    base_probs: Vec<f64>,
    cumulative: Vec<f64>,
    persistence: f64,
    phases: usize,
    phase_length: usize,
    seed: u64,
}

impl CpuModel {
    /// Starts building a model over `num_modules` modules.
    #[must_use]
    pub fn builder(num_modules: usize) -> CpuModelBuilder {
        CpuModelBuilder {
            num_modules,
            num_instructions: 32,
            usage_fraction: 0.4,
            persistence: 0.6,
            frequency_skew: 1.0,
            groups: 0,
            phases: 1,
            phase_length: 500,
            seed: 0xC10C_CA7E,
        }
    }

    /// The generated RTL description.
    #[must_use]
    pub fn rtl(&self) -> &Rtl {
        &self.rtl
    }

    /// The stationary instruction probabilities of the Markov process.
    ///
    /// Because the process either repeats the current instruction or draws
    /// fresh from this base distribution, the base distribution *is* the
    /// stationary one.
    #[must_use]
    pub fn base_probabilities(&self) -> &[f64] {
        &self.base_probs
    }

    /// The probability that consecutive cycles execute the same
    /// instruction (beyond the base distribution's own mass).
    #[must_use]
    pub fn persistence(&self) -> f64 {
        self.persistence
    }

    /// Closed-form activity tables of the Markov process — no stream
    /// sampling, no Monte-Carlo noise. The stationary distribution is the
    /// base distribution, and consecutive pairs follow
    /// `P(a→b) = base_a · (persistence·[a = b] + (1−persistence)·base_b)`.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InvalidParameter`] for phased models
    /// (`phases > 1`), whose pair distribution is not first-order
    /// stationary in this closed form.
    pub fn analytic_tables(&self) -> Result<crate::ActivityTables, ActivityError> {
        if self.phases > 1 {
            return Err(ActivityError::InvalidParameter {
                name: "phases",
                value: self.phases as f64,
            });
        }
        let k = self.base_probs.len();
        let p = self.persistence;
        let mut pairs = vec![0.0f64; k * k];
        for a in 0..k {
            for b in 0..k {
                let fresh = (1.0 - p) * self.base_probs[b];
                let stay = if a == b { p } else { 0.0 };
                pairs[a * k + b] = self.base_probs[a] * (stay + fresh);
            }
        }
        crate::ActivityTables::from_probabilities(&self.rtl, self.base_probs.clone(), pairs)
    }

    /// Generates an instruction stream of `len` cycles.
    ///
    /// Deterministic for a given model (the builder seed also seeds stream
    /// generation); successive calls return the same stream. Implemented
    /// by draining a [`Self::trace_source`], so the materialized stream
    /// and the streaming path are identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `len < 2` (transition statistics need at least one pair).
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "from_ids only rejects streams shorter than 2, ruled out by the assert"
    )]
    pub fn generate_stream(&self, len: usize) -> InstructionStream {
        assert!(len >= 2, "stream length must be >= 2, got {len}");
        let mut source = self.trace_source(len as u64);
        let mut out = vec![InstructionId(0); len];
        let mut filled = 0usize;
        while filled < len {
            let n = source
                .next_chunk(&mut out[filled..])
                .expect("model sources are infallible");
            assert!(n > 0, "model source ended early at {filled}/{len} cycles");
            filled += n;
        }
        InstructionStream::from_ids(out).expect("len >= 2 checked above")
    }

    /// A [`TraceSource`](crate::TraceSource) generating `len` cycles of
    /// this model's Markov process incrementally — the streaming
    /// counterpart of [`Self::generate_stream`], producing the identical
    /// cycle sequence without ever materializing it (peak memory is one
    /// chunk, whatever the trace length).
    #[must_use]
    pub fn trace_source(&self, len: u64) -> ModelTraceSource<'_> {
        ModelTraceSource {
            model: self,
            rng: StdRng::seed_from_u64(self.seed ^ 0x5EED_57EA),
            phase: 0,
            current: InstructionId(0),
            started: false,
            remaining: len,
            len,
        }
    }

    /// Draws from the base distribution, restricted to the instructions of
    /// `phase` (rejection sampling; every phase is non-empty because
    /// `phases <= num_instructions`).
    fn sample_base(&self, rng: &mut StdRng, phase: usize) -> InstructionId {
        loop {
            let x: f64 = rng.gen();
            let idx = match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
                Ok(i) | Err(i) => i.min(self.base_probs.len() - 1),
            };
            if self.phases <= 1 || idx % self.phases == phase {
                return InstructionId(idx as u32);
            }
        }
    }
}

/// Incremental generator of a [`CpuModel`] instruction trace; see
/// [`CpuModel::trace_source`].
///
/// Carries only the Markov state (RNG, phase, current instruction), so a
/// 10⁸-cycle trace streams through [`crate::scan_source`] in bounded
/// memory. The emitted sequence is bit-identical to
/// [`CpuModel::generate_stream`] of the same length — `generate_stream`
/// is a thin wrapper that drains this source.
#[derive(Clone, Debug)]
pub struct ModelTraceSource<'m> {
    model: &'m CpuModel,
    rng: StdRng,
    phase: usize,
    current: InstructionId,
    started: bool,
    remaining: u64,
    len: u64,
}

impl TraceSource for ModelTraceSource<'_> {
    fn len_hint(&self) -> Option<u64> {
        Some(self.len)
    }

    fn next_chunk(&mut self, buf: &mut [InstructionId]) -> Result<usize, ActivityError> {
        let mut written = 0usize;
        let model = self.model;
        for slot in buf.iter_mut() {
            if self.remaining == 0 {
                break;
            }
            if !self.started {
                self.started = true;
                self.current = model.sample_base(&mut self.rng, self.phase);
            } else if model.phases > 1 && self.rng.gen::<f64>() < 1.0 / model.phase_length as f64 {
                self.phase = (self.phase + 1) % model.phases;
                self.current = model.sample_base(&mut self.rng, self.phase);
            } else if self.rng.gen::<f64>() >= model.persistence {
                self.current = model.sample_base(&mut self.rng, self.phase);
            }
            *slot = self.current;
            self.remaining -= 1;
            written += 1;
        }
        Ok(written)
    }
}

/// Builder for [`CpuModel`]; see [`CpuModel::builder`].
#[derive(Clone, Debug)]
pub struct CpuModelBuilder {
    num_modules: usize,
    num_instructions: usize,
    usage_fraction: f64,
    persistence: f64,
    frequency_skew: f64,
    groups: usize,
    phases: usize,
    phase_length: usize,
    seed: u64,
}

impl CpuModelBuilder {
    /// Sets the number of instructions (default 32).
    #[must_use]
    pub fn instructions(mut self, k: usize) -> Self {
        self.num_instructions = k;
        self
    }

    /// Sets the average fraction of modules each instruction uses
    /// (default 0.4, the paper's ≈ 40 %). Must lie in (0, 1].
    #[must_use]
    pub fn usage_fraction(mut self, f: f64) -> Self {
        self.usage_fraction = f;
        self
    }

    /// Sets the Markov self-repeat probability (default 0.6). Must lie in
    /// [0, 1).
    #[must_use]
    pub fn persistence(mut self, p: f64) -> Self {
        self.persistence = p;
        self
    }

    /// Sets the Zipf exponent of the instruction mix (default 1.0; 0 means
    /// uniform). Must be ≥ 0.
    #[must_use]
    pub fn frequency_skew(mut self, s: f64) -> Self {
        self.frequency_skew = s;
        self
    }

    /// Partitions the modules into `g` functional groups with strongly
    /// correlated usage (default 0 = independent per-module usage).
    ///
    /// Real processors activate related datapath modules *together* — an
    /// FP instruction wakes the whole FP cluster. With groups, each
    /// instruction selects each group with probability `usage_fraction`
    /// and then uses the selected groups' modules almost completely
    /// (95 %), sprinkling 2 % background usage elsewhere; module `m`
    /// belongs to group `m % g`. This correlation is what lets subtree
    /// enables stay quiet — the structural property gated clock routing
    /// exploits.
    #[must_use]
    pub fn groups(mut self, g: usize) -> Self {
        self.groups = g;
        self
    }

    /// Splits the instruction mix into `p` round-robin program phases
    /// (instruction `i` belongs to phase `i % p`; default 1 = no phases).
    ///
    /// Real traces run in bursts — an integer loop, then an FP kernel —
    /// so class-level enables stay put for long stretches and toggle
    /// rarely. Phases reproduce that temporal structure; their mean
    /// duration is set by [`Self::phase_length`].
    #[must_use]
    pub fn phases(mut self, p: usize) -> Self {
        self.phases = p;
        self
    }

    /// Mean program-phase duration in cycles (default 500); only
    /// meaningful with [`Self::phases`] > 1.
    #[must_use]
    pub fn phase_length(mut self, cycles: usize) -> Self {
        self.phase_length = cycles;
        self
    }

    /// Sets the RNG seed (model generation *and* stream generation are
    /// deterministic functions of this).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the RTL and the instruction process.
    ///
    /// Every module is guaranteed to be used by at least one instruction,
    /// so no sink is trivially always-off.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InvalidParameter`] for out-of-range knobs
    /// and [`ActivityError::EmptyRtl`] when `num_modules` or
    /// `num_instructions` is zero.
    pub fn build(self) -> Result<CpuModel, ActivityError> {
        if self.num_modules == 0 || self.num_instructions == 0 {
            return Err(ActivityError::EmptyRtl);
        }
        if !(self.usage_fraction > 0.0 && self.usage_fraction <= 1.0) {
            return Err(ActivityError::InvalidParameter {
                name: "usage_fraction",
                value: self.usage_fraction,
            });
        }
        if !(0.0..1.0).contains(&self.persistence) {
            return Err(ActivityError::InvalidParameter {
                name: "persistence",
                value: self.persistence,
            });
        }
        if !(self.frequency_skew >= 0.0 && self.frequency_skew.is_finite()) {
            return Err(ActivityError::InvalidParameter {
                name: "frequency_skew",
                value: self.frequency_skew,
            });
        }
        if self.phases == 0 || self.phases > self.num_instructions {
            return Err(ActivityError::InvalidParameter {
                name: "phases",
                value: self.phases as f64,
            });
        }
        if self.phase_length == 0 {
            return Err(ActivityError::InvalidParameter {
                name: "phase_length",
                value: 0.0,
            });
        }

        let mut rng = StdRng::seed_from_u64(self.seed);

        // Per-instruction module usage. Ungrouped: each module joins each
        // instruction independently with probability `usage_fraction`.
        // Grouped: the instruction selects whole functional groups with
        // that probability and then uses their members almost completely,
        // which produces the correlated co-activity of real datapaths.
        let mut usage: Vec<Vec<usize>> = (0..self.num_instructions)
            .map(|_| {
                if self.groups == 0 {
                    (0..self.num_modules)
                        .filter(|_| rng.gen::<f64>() < self.usage_fraction)
                        .collect()
                } else {
                    // Hierarchical selection: instruction classes first
                    // pick among (up to) four supergroups, then groups
                    // within them, with √f probabilities each so the
                    // marginal group-selection rate stays `usage_fraction`.
                    // This mirrors real ISAs (integer / FP / memory /
                    // control classes) and keeps multi-group subtree
                    // enables well below 1.
                    let sg_count = if self.groups >= 4 { 4 } else { 1 };
                    let (p_super, p_group) = if sg_count > 1 {
                        (self.usage_fraction.sqrt(), self.usage_fraction.sqrt())
                    } else {
                        (1.0, self.usage_fraction)
                    };
                    let supers: Vec<bool> =
                        (0..sg_count).map(|_| rng.gen::<f64>() < p_super).collect();
                    let selected: Vec<bool> = (0..self.groups)
                        .map(|g| supers[g % sg_count] && rng.gen::<f64>() < p_group)
                        .collect();
                    (0..self.num_modules)
                        .filter(|m| {
                            let p = if selected[m % self.groups] {
                                0.95
                            } else {
                                0.005
                            };
                            rng.gen::<f64>() < p
                        })
                        .collect()
                }
            })
            .collect();
        // Guarantee non-empty instructions and full module coverage.
        for set in usage.iter_mut() {
            if set.is_empty() {
                set.push(rng.gen_range(0..self.num_modules));
            }
        }
        let mut covered = vec![false; self.num_modules];
        for set in &usage {
            for &m in set {
                covered[m] = true;
            }
        }
        for (m, c) in covered.iter().enumerate() {
            if !c {
                let k = rng.gen_range(0..self.num_instructions);
                usage[k].push(m);
            }
        }

        let mut builder = Rtl::builder(self.num_modules);
        for (k, set) in usage.iter().enumerate() {
            builder = builder.instruction(&format!("I{}", k + 1), set.iter().copied())?;
        }
        let rtl = builder.build()?;

        // Zipf-like base distribution.
        let mut base_probs: Vec<f64> = (0..self.num_instructions)
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.frequency_skew))
            .collect();
        let total: f64 = base_probs.iter().sum();
        for p in base_probs.iter_mut() {
            *p /= total;
        }
        let mut cumulative = Vec::with_capacity(base_probs.len());
        let mut acc = 0.0;
        for &p in &base_probs {
            acc += p;
            cumulative.push(acc);
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }

        Ok(CpuModel {
            rtl,
            base_probs,
            cumulative,
            persistence: self.persistence,
            phases: self.phases,
            phase_length: self.phase_length,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActivityTables;

    #[test]
    fn model_is_deterministic_for_a_seed() {
        let a = CpuModel::builder(40).seed(11).build().unwrap();
        let b = CpuModel::builder(40).seed(11).build().unwrap();
        assert_eq!(a.generate_stream(200), b.generate_stream(200));
        let c = CpuModel::builder(40).seed(12).build().unwrap();
        assert_ne!(a.generate_stream(200), c.generate_stream(200));
    }

    #[test]
    fn usage_fraction_is_respected() {
        let m = CpuModel::builder(500)
            .instructions(20)
            .usage_fraction(0.4)
            .seed(3)
            .build()
            .unwrap();
        let f = m.rtl().avg_usage_fraction();
        assert!((f - 0.4).abs() < 0.05, "avg usage {f} far from 0.4");
    }

    #[test]
    fn every_module_is_used_somewhere() {
        let m = CpuModel::builder(200)
            .instructions(8)
            .usage_fraction(0.02) // sparse: coverage backfill must kick in
            .seed(5)
            .build()
            .unwrap();
        for module in 0..200 {
            let used = m.rtl().instruction_ids().any(|i| m.rtl().uses(i, module));
            assert!(used, "module {module} unused");
        }
    }

    #[test]
    fn stationary_distribution_matches_base() {
        let m = CpuModel::builder(30)
            .instructions(6)
            .persistence(0.7)
            .seed(9)
            .build()
            .unwrap();
        let stream = m.generate_stream(200_000);
        let mut counts = [0usize; 6];
        for &i in stream.instructions() {
            counts[i.index()] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let empirical = c as f64 / stream.len() as f64;
            let expected = m.base_probabilities()[k];
            assert!(
                (empirical - expected).abs() < 0.02,
                "instruction {k}: empirical {empirical} vs base {expected}"
            );
        }
    }

    #[test]
    fn persistence_lowers_transition_probability() {
        let stats = |persistence: f64| {
            let m = CpuModel::builder(60)
                .instructions(12)
                .usage_fraction(0.3)
                .persistence(persistence)
                .seed(21)
                .build()
                .unwrap();
            let stream = m.generate_stream(30_000);
            let tables = ActivityTables::scan(m.rtl(), &stream);
            let set = crate::ModuleSet::with_modules(60, [0, 1, 2]);
            tables.enable_stats(&set).transition
        };
        assert!(
            stats(0.9) < stats(0.0),
            "high persistence must toggle enables less often"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CpuModel::builder(10).usage_fraction(0.0).build().is_err());
        assert!(CpuModel::builder(10).usage_fraction(1.5).build().is_err());
        assert!(CpuModel::builder(10).persistence(1.0).build().is_err());
        assert!(CpuModel::builder(10).persistence(-0.1).build().is_err());
        assert!(CpuModel::builder(10).frequency_skew(-1.0).build().is_err());
        assert!(CpuModel::builder(0).build().is_err());
        assert!(CpuModel::builder(10).instructions(0).build().is_err());
    }

    #[test]
    #[should_panic(expected = "stream length")]
    fn one_cycle_stream_panics() {
        let m = CpuModel::builder(10).build().unwrap();
        let _ = m.generate_stream(1);
    }

    #[test]
    fn trace_source_is_bit_identical_to_generate_stream() {
        use crate::TraceSource;
        // Phased and unphased models, drained through ragged chunk sizes:
        // the incremental source must replay the exact RNG call sequence
        // of the materializing generator.
        for phases in [1usize, 3] {
            let m = CpuModel::builder(24)
                .instructions(9)
                .persistence(0.7)
                .phases(phases)
                .phase_length(50)
                .seed(41)
                .build()
                .unwrap();
            let oracle = m.generate_stream(2_000);
            let mut source = m.trace_source(2_000);
            assert_eq!(source.len_hint(), Some(2_000));
            let mut got = Vec::new();
            let mut buf = vec![InstructionId(0); 1];
            let mut chunk = 1usize;
            loop {
                buf.resize(chunk, InstructionId(0));
                let n = source.next_chunk(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
                chunk = chunk % 97 + 13; // ragged chunk sizes
            }
            assert_eq!(got, oracle.instructions());
        }
    }

    #[test]
    fn analytic_tables_match_long_streams() {
        let model = CpuModel::builder(30)
            .instructions(6)
            .usage_fraction(0.35)
            .persistence(0.7)
            .groups(3)
            .seed(77)
            .build()
            .unwrap();
        let analytic = model.analytic_tables().unwrap();
        let sampled = ActivityTables::scan(model.rtl(), &model.generate_stream(300_000));
        for mask in [0b1u32, 0b11, 0b10101, 0b111111] {
            let set =
                crate::ModuleSet::with_modules(30, (0..30).filter(|m| mask & (1 << (m % 6)) != 0));
            let a = analytic.enable_stats(&set);
            let s = sampled.enable_stats(&set);
            assert!(
                (a.signal - s.signal).abs() < 0.01,
                "signal {} vs {}",
                a.signal,
                s.signal
            );
            assert!(
                (a.transition - s.transition).abs() < 0.01,
                "transition {} vs {}",
                a.transition,
                s.transition
            );
        }
    }

    #[test]
    fn analytic_tables_reject_phases() {
        let model = CpuModel::builder(10)
            .instructions(4)
            .phases(2)
            .build()
            .unwrap();
        assert!(model.analytic_tables().is_err());
    }

    #[test]
    fn phases_slow_down_class_level_toggling() {
        // Instructions split into two phases; the set of modules touched
        // by phase-0 instructions should toggle far less often in a phased
        // stream than in an unphased one. The effect is statistical — a
        // single seed can land on an RTL where it is within noise — so the
        // tendency is asserted on the mean over several seeds.
        let build = |phases: usize, seed: u64| {
            CpuModel::builder(40)
                .instructions(8)
                .usage_fraction(0.3)
                .persistence(0.5)
                .groups(4)
                .phases(phases)
                .phase_length(400)
                .seed(seed)
                .build()
                .unwrap()
        };
        let toggling = |model: &CpuModel| {
            let stream = model.generate_stream(30_000);
            let tables = ActivityTables::scan(model.rtl(), &stream);
            // Modules used by instruction 0 (a phase-0 instruction).
            let set = model
                .rtl()
                .modules_used(model.rtl().instruction(0).unwrap())
                .clone();
            tables.enable_stats(&set).transition
        };
        let seeds = [31u64, 32, 33, 34, 35];
        let mean = |phases: usize| {
            seeds
                .iter()
                .map(|&s| toggling(&build(phases, s)))
                .sum::<f64>()
                / seeds.len() as f64
        };
        let phased = mean(2);
        let flat = mean(1);
        assert!(
            phased < flat,
            "phases must reduce class toggling on average: {phased} vs {flat}"
        );
    }

    #[test]
    fn phase_validation() {
        assert!(CpuModel::builder(10).phases(0).build().is_err());
        assert!(CpuModel::builder(10)
            .instructions(4)
            .phases(5)
            .build()
            .is_err());
        assert!(CpuModel::builder(10)
            .phase_length(0)
            .phases(2)
            .build()
            .is_err());
        assert!(CpuModel::builder(10)
            .instructions(4)
            .phases(2)
            .build()
            .is_ok());
    }

    #[test]
    fn grouped_usage_is_correlated_within_groups() {
        // Modules 0 and 8 share group 0; module 1 is in group 1. The union
        // with a same-group sibling should barely raise P(EN); a
        // cross-group union should raise it a lot. Any one sampled RTL can
        // blur the contrast, so the tendency is asserted on means over
        // several seeds.
        let g = 8;
        let seeds = [2u64, 3, 4, 5, 6];
        let mut single = 0.0;
        let mut same_group = 0.0;
        let mut cross_group = 0.0;
        let mut usage = 0.0;
        for &seed in &seeds {
            let m = CpuModel::builder(64)
                .instructions(16)
                .usage_fraction(0.4)
                .groups(g)
                .seed(seed)
                .build()
                .unwrap();
            let stream = m.generate_stream(20_000);
            let tables = ActivityTables::scan(m.rtl(), &stream);
            let p = |mods: &[usize]| {
                tables
                    .enable_stats(&crate::ModuleSet::with_modules(64, mods.iter().copied()))
                    .signal
            };
            single += p(&[0]);
            same_group += p(&[0, 8]);
            cross_group += p(&[0, 1]);
            usage += m.rtl().avg_usage_fraction();
        }
        let n = seeds.len() as f64;
        let (single, same_group, cross_group) = (single / n, same_group / n, cross_group / n);
        assert!(
            same_group - single < 0.1,
            "same-group union jumped from {single} to {same_group}"
        );
        assert!(
            cross_group > same_group + 0.05,
            "cross-group union {cross_group} should exceed same-group {same_group}"
        );
        // Average usage stays near the knob.
        let f = usage / n;
        assert!((f - 0.4).abs() < 0.12, "avg usage {f}");
    }

    #[test]
    fn zipf_skew_orders_frequencies() {
        let m = CpuModel::builder(20)
            .instructions(8)
            .frequency_skew(1.5)
            .build()
            .unwrap();
        let p = m.base_probabilities();
        for w in p.windows(2) {
            assert!(w[0] >= w[1], "Zipf probabilities must be non-increasing");
        }
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
