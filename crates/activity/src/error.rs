use std::error::Error;
use std::fmt;

/// Errors produced while building activity models.
#[derive(Clone, Debug, PartialEq)]
pub enum ActivityError {
    /// A module index was outside the RTL's module universe.
    ModuleOutOfRange {
        /// Offending module index.
        module: usize,
        /// Number of modules in the universe.
        num_modules: usize,
    },
    /// An instruction index was outside the RTL's instruction list.
    InstructionOutOfRange {
        /// Offending instruction index.
        instruction: usize,
        /// Number of instructions defined.
        num_instructions: usize,
    },
    /// An instruction was declared with an empty module set.
    EmptyInstruction {
        /// Name of the offending instruction.
        name: String,
    },
    /// The RTL was built with no instructions or no modules.
    EmptyRtl,
    /// A stream or probability input was empty or inconsistent.
    InvalidStream {
        /// Human-readable reason.
        reason: String,
    },
    /// A model-builder parameter was out of its valid range.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A table would exceed a hard capacity limit (checked *before* the
    /// dense K² allocation is attempted, mirroring
    /// `CtsError::CapacityExceeded`).
    CapacityExceeded {
        /// Requested instruction count K.
        instructions: usize,
        /// The hard limit ([`crate::Itmatt::MAX_INSTRUCTIONS`]).
        limit: usize,
    },
}

impl fmt::Display for ActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivityError::ModuleOutOfRange {
                module,
                num_modules,
            } => write!(
                f,
                "module index {module} out of range (universe has {num_modules})"
            ),
            ActivityError::InstructionOutOfRange {
                instruction,
                num_instructions,
            } => write!(
                f,
                "instruction index {instruction} out of range ({num_instructions} defined)"
            ),
            ActivityError::EmptyInstruction { name } => {
                write!(f, "instruction `{name}` uses no modules")
            }
            ActivityError::EmptyRtl => write!(f, "RTL needs at least one instruction and module"),
            ActivityError::InvalidStream { reason } => write!(f, "invalid stream: {reason}"),
            ActivityError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` out of range: {value}")
            }
            ActivityError::CapacityExceeded {
                instructions,
                limit,
            } => write!(
                f,
                "instruction count {instructions} exceeds the dense table capacity ({limit})"
            ),
        }
    }
}

impl Error for ActivityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ActivityError::ModuleOutOfRange {
            module: 9,
            num_modules: 6,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('6'));
        let e = ActivityError::InvalidParameter {
            name: "usage_fraction",
            value: 2.0,
        };
        assert!(e.to_string().contains("usage_fraction"));
        let e = ActivityError::CapacityExceeded {
            instructions: 70_000,
            limit: 4096,
        };
        assert!(e.to_string().contains("70000") && e.to_string().contains("4096"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<ActivityError>();
    }
}
