use std::fmt;

/// A set of module indices, stored as a fixed-width bitset.
///
/// Clock-tree nodes carry the set of modules (sinks) in their subtree; a
/// merge is a set union, and "instruction I activates node v" is a bitset
/// intersection test. With module universes in the low thousands (the
/// largest benchmark has 3101 sinks), the word-packed representation keeps
/// these operations at a few dozen machine words.
///
/// ```
/// use gcr_activity::ModuleSet;
///
/// let mut a = ModuleSet::new(100);
/// a.insert(3);
/// a.insert(97);
/// let b = ModuleSet::with_modules(100, [97, 40]);
/// assert!(a.intersects(&b));
/// assert_eq!(a.union(&b).len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ModuleSet {
    num_modules: usize,
    words: Vec<u64>,
}

impl ModuleSet {
    /// Creates an empty set over a universe of `num_modules` modules.
    #[must_use]
    pub fn new(num_modules: usize) -> Self {
        Self {
            num_modules,
            words: vec![0; num_modules.div_ceil(64)],
        }
    }

    /// Creates a set containing the given module indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= num_modules`.
    #[must_use]
    pub fn with_modules<I: IntoIterator<Item = usize>>(num_modules: usize, modules: I) -> Self {
        let mut s = Self::new(num_modules);
        for m in modules {
            s.insert(m);
        }
        s
    }

    /// Size of the module universe (not the cardinality).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.num_modules
    }

    /// Number of modules in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds module `m` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `m >= universe()`.
    pub fn insert(&mut self, m: usize) {
        assert!(
            m < self.num_modules,
            "module {m} outside universe {}",
            self.num_modules
        );
        self.words[m / 64] |= 1 << (m % 64);
    }

    /// Whether module `m` is in the set.
    #[must_use]
    pub fn contains(&self, m: usize) -> bool {
        m < self.num_modules && self.words[m / 64] & (1 << (m % 64)) != 0
    }

    /// Whether the two sets share any module.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersects(&self, other: &ModuleSet) -> bool {
        self.check_universe(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &ModuleSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The union of the two sets.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn union(&self, other: &ModuleSet) -> ModuleSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Iterates over the module indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    fn check_universe(&self, other: &ModuleSet) {
        assert_eq!(
            self.num_modules, other.num_modules,
            "module universes differ ({} vs {})",
            self.num_modules, other.num_modules
        );
    }
}

impl fmt::Debug for ModuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ModuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "M{}", m + 1)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for ModuleSet {
    /// Collects module indices into a set whose universe is just large
    /// enough to hold the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let universe = items.iter().max().map_or(0, |&m| m + 1);
        ModuleSet::with_modules(universe, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = ModuleSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(!s.contains(500)); // out of range is simply absent
    }

    #[test]
    fn union_and_intersection() {
        let a = ModuleSet::with_modules(200, [1, 100, 199]);
        let b = ModuleSet::with_modules(200, [2, 100]);
        assert!(a.intersects(&b));
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        let c = ModuleSet::with_modules(200, [3, 4]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = ModuleSet::with_modules(300, [250, 3, 64, 65]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![3, 64, 65, 250]);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: ModuleSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        ModuleSet::new(10).insert(10);
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mismatched_universe_panics() {
        let a = ModuleSet::new(10);
        let b = ModuleSet::new(20);
        let _ = a.intersects(&b);
    }

    #[test]
    fn display_matches_paper_naming() {
        let s = ModuleSet::with_modules(6, [4, 5]);
        assert_eq!(format!("{s}"), "{M5, M6}");
    }
}
