//! Streaming trace sources: chunk-at-a-time instruction producers that
//! never require the full trace in memory.
//!
//! A [`TraceSource`] hands out instructions into a caller-owned buffer, so
//! a multi-million-cycle trace flows through the streaming scan
//! ([`crate::scan_source`]) with peak memory O(chunk + observed pairs)
//! instead of O(B). Implementations in this crate:
//!
//! * [`SliceSource`] — adapts an in-memory [`InstructionStream`] (or any
//!   id slice), the bridge between the materialized and streaming worlds;
//! * [`crate::ModelTraceSource`] — generates a [`crate::CpuModel`] Markov
//!   trace incrementally, bit-identical to
//!   [`crate::CpuModel::generate_stream`];
//! * [`crate::io::TextTraceSource`] — parses the text trace format from
//!   any `BufRead` without materializing the token stream.

use crate::{ActivityError, InstructionId, InstructionStream};

/// A producer of instruction-trace chunks.
///
/// The contract is `read`-like: each call fills a prefix of `buf` and
/// returns how many cycles were written; `Ok(0)` means the trace is
/// exhausted (and must keep returning 0 afterwards). Sources are free to
/// return short chunks. Implementations must be `Send` so the parallel
/// scan can hand the source to a worker pool behind a mutex.
pub trait TraceSource: Send {
    /// Total cycles this source will produce, when known up front. Purely
    /// advisory (progress reporting, preallocation); the scan never trusts
    /// it for correctness.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Fills a prefix of `buf` with the next cycles of the trace and
    /// returns the count written; 0 signals end of trace.
    ///
    /// # Errors
    ///
    /// Implementations return [`ActivityError`] for malformed input (e.g.
    /// unknown instruction tokens in a text trace).
    fn next_chunk(&mut self, buf: &mut [InstructionId]) -> Result<usize, ActivityError>;
}

/// A [`TraceSource`] over an in-memory instruction slice.
///
/// ```
/// use gcr_activity::{paper_example_rtl, InstructionStream, SliceSource, TraceSource};
///
/// let rtl = paper_example_rtl();
/// let stream = InstructionStream::from_indices(&rtl, [0, 1, 0, 2])?;
/// let mut source = SliceSource::new(&stream);
/// assert_eq!(source.len_hint(), Some(4));
/// let mut buf = [gcr_activity::InstructionId::default(); 3];
/// assert_eq!(source.next_chunk(&mut buf)?, 3);
/// assert_eq!(source.next_chunk(&mut buf)?, 1);
/// assert_eq!(source.next_chunk(&mut buf)?, 0);
/// # Ok::<(), gcr_activity::ActivityError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    ids: &'a [InstructionId],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams the cycles of `stream`.
    #[must_use]
    pub fn new(stream: &'a InstructionStream) -> Self {
        Self::from_ids(stream.instructions())
    }

    /// Streams an already-validated id slice.
    #[must_use]
    pub fn from_ids(ids: &'a [InstructionId]) -> Self {
        Self { ids, pos: 0 }
    }
}

impl TraceSource for SliceSource<'_> {
    fn len_hint(&self) -> Option<u64> {
        Some(self.ids.len() as u64)
    }

    fn next_chunk(&mut self, buf: &mut [InstructionId]) -> Result<usize, ActivityError> {
        let n = buf.len().min(self.ids.len() - self.pos);
        buf[..n].copy_from_slice(&self.ids[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example_rtl;

    #[test]
    fn slice_source_drains_in_chunks() {
        let rtl = paper_example_rtl();
        let stream = InstructionStream::from_indices(&rtl, [0, 1, 2, 3, 0, 1, 2]).unwrap();
        let mut source = SliceSource::new(&stream);
        let mut buf = [InstructionId::default(); 3];
        let mut got = Vec::new();
        loop {
            let n = source.next_chunk(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, stream.instructions());
        // Exhausted sources keep returning 0.
        assert_eq!(source.next_chunk(&mut buf).unwrap(), 0);
    }

    #[test]
    fn empty_buffer_reads_zero_without_ending() {
        let rtl = paper_example_rtl();
        let stream = InstructionStream::from_indices(&rtl, [0, 1]).unwrap();
        let mut source = SliceSource::new(&stream);
        assert_eq!(source.next_chunk(&mut []).unwrap(), 0);
        let mut buf = [InstructionId::default(); 2];
        assert_eq!(source.next_chunk(&mut buf).unwrap(), 2);
    }
}
