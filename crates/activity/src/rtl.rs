use std::fmt;

use crate::{ActivityError, ModuleSet};

/// Identifier of an instruction inside an [`Rtl`] description.
///
/// `Default` is the first instruction (index 0) — handy as a fill value
/// for the chunk buffers the streaming scan reads into.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstructionId(pub(crate) u32);

impl InstructionId {
    /// Dense index of the instruction.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstructionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0 + 1)
    }
}

/// The RTL description of a processor: which modules each instruction uses
/// (Table 1 of the paper).
///
/// ```
/// use gcr_activity::Rtl;
///
/// let rtl = Rtl::builder(6)
///     .instruction("I1", [0, 1, 2, 4])?
///     .instruction("I2", [0, 3])?
///     .build()?;
/// assert_eq!(rtl.num_instructions(), 2);
/// assert!(rtl.uses(rtl.instruction_ids().next().unwrap(), 2));
/// # Ok::<(), gcr_activity::ActivityError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Rtl {
    num_modules: usize,
    names: Vec<String>,
    usage: Vec<ModuleSet>,
}

impl Rtl {
    /// Starts building an RTL description over `num_modules` modules.
    #[must_use]
    pub fn builder(num_modules: usize) -> RtlBuilder {
        RtlBuilder {
            num_modules,
            names: Vec::new(),
            usage: Vec::new(),
        }
    }

    /// Number of modules in the universe (the paper's N).
    #[must_use]
    pub fn num_modules(&self) -> usize {
        self.num_modules
    }

    /// Number of instructions (the paper's K).
    #[must_use]
    pub fn num_instructions(&self) -> usize {
        self.usage.len()
    }

    /// The name of instruction `id`.
    #[must_use]
    pub fn name(&self, id: InstructionId) -> &str {
        &self.names[id.index()]
    }

    /// The set of modules instruction `id` uses.
    #[must_use]
    pub fn modules_used(&self, id: InstructionId) -> &ModuleSet {
        &self.usage[id.index()]
    }

    /// Whether instruction `id` uses module `m`.
    #[must_use]
    pub fn uses(&self, id: InstructionId, m: usize) -> bool {
        self.usage[id.index()].contains(m)
    }

    /// Whether instruction `id` uses any module of `set` — i.e. whether the
    /// enable signal of a node owning `set` is on while `id` executes.
    ///
    /// # Panics
    ///
    /// Panics if `set` is over a different module universe.
    #[must_use]
    pub fn activates(&self, id: InstructionId, set: &ModuleSet) -> bool {
        self.usage[id.index()].intersects(set)
    }

    /// Iterator over all instruction ids in order.
    pub fn instruction_ids(&self) -> impl Iterator<Item = InstructionId> + '_ {
        (0..self.usage.len() as u32).map(InstructionId)
    }

    /// Checked conversion from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InstructionOutOfRange`] when `index` is not
    /// a valid instruction.
    pub fn instruction(&self, index: usize) -> Result<InstructionId, ActivityError> {
        if index < self.usage.len() {
            Ok(InstructionId(index as u32))
        } else {
            Err(ActivityError::InstructionOutOfRange {
                instruction: index,
                num_instructions: self.usage.len(),
            })
        }
    }

    /// Average number of used modules per instruction, as a fraction of the
    /// module universe — the paper's `Ave(M(I))` column of Table 4.
    #[must_use]
    pub fn avg_usage_fraction(&self) -> f64 {
        if self.usage.is_empty() || self.num_modules == 0 {
            return 0.0;
        }
        let total: usize = self.usage.iter().map(ModuleSet::len).sum();
        total as f64 / (self.usage.len() as f64 * self.num_modules as f64)
    }
}

/// Builder for [`Rtl`]; see [`Rtl::builder`].
#[derive(Clone, Debug)]
pub struct RtlBuilder {
    num_modules: usize,
    names: Vec<String>,
    usage: Vec<ModuleSet>,
}

impl RtlBuilder {
    /// Declares an instruction and the modules it uses.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::ModuleOutOfRange`] for bad module indices
    /// and [`ActivityError::EmptyInstruction`] when `modules` is empty.
    pub fn instruction<I: IntoIterator<Item = usize>>(
        mut self,
        name: &str,
        modules: I,
    ) -> Result<Self, ActivityError> {
        let mut set = ModuleSet::new(self.num_modules);
        let mut any = false;
        for m in modules {
            if m >= self.num_modules {
                return Err(ActivityError::ModuleOutOfRange {
                    module: m,
                    num_modules: self.num_modules,
                });
            }
            set.insert(m);
            any = true;
        }
        if !any {
            return Err(ActivityError::EmptyInstruction {
                name: name.to_owned(),
            });
        }
        self.names.push(name.to_owned());
        self.usage.push(set);
        Ok(self)
    }

    /// Finishes the description.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::EmptyRtl`] when no instructions (or no
    /// modules) were declared.
    pub fn build(self) -> Result<Rtl, ActivityError> {
        if self.usage.is_empty() || self.num_modules == 0 {
            return Err(ActivityError::EmptyRtl);
        }
        Ok(Rtl {
            num_modules: self.num_modules,
            names: self.names,
            usage: self.usage,
        })
    }
}

/// The paper's Table 1 example RTL: four instructions over six modules.
///
/// ```
/// let rtl = gcr_activity::paper_example_rtl();
/// assert_eq!(rtl.num_instructions(), 4);
/// assert_eq!(rtl.num_modules(), 6);
/// ```
#[must_use]
#[expect(
    clippy::expect_used,
    reason = "the literal Table-1 module sets are statically in range"
)]
pub fn paper_example_rtl() -> Rtl {
    Rtl::builder(6)
        .instruction("I1", [0, 1, 2, 4])
        .and_then(|b| b.instruction("I2", [0, 3]))
        .and_then(|b| b.instruction("I3", [1, 4, 5]))
        .and_then(|b| b.instruction("I4", [2, 3]))
        .and_then(RtlBuilder::build)
        .expect("paper example RTL is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_round_trip() {
        let rtl = paper_example_rtl();
        let i1 = rtl.instruction(0).unwrap();
        let i3 = rtl.instruction(2).unwrap();
        assert_eq!(rtl.name(i1), "I1");
        assert!(rtl.uses(i1, 0) && rtl.uses(i1, 4) && !rtl.uses(i1, 5));
        // I1 and I3 are the instructions touching {M5, M6}.
        let m56 = ModuleSet::with_modules(6, [4, 5]);
        let activators: Vec<String> = rtl
            .instruction_ids()
            .filter(|&i| rtl.activates(i, &m56))
            .map(|i| rtl.name(i).to_owned())
            .collect();
        assert_eq!(activators, vec!["I1", "I3"]);
        assert!(rtl.uses(i3, 5));
    }

    #[test]
    fn avg_usage_fraction_matches_hand_count() {
        let rtl = paper_example_rtl();
        // (4 + 2 + 3 + 2) / (4 * 6) = 11/24.
        assert!((rtl.avg_usage_fraction() - 11.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn bad_module_index_is_reported() {
        let err = Rtl::builder(4).instruction("X", [7]).unwrap_err();
        assert_eq!(
            err,
            ActivityError::ModuleOutOfRange {
                module: 7,
                num_modules: 4
            }
        );
    }

    #[test]
    fn empty_instruction_is_rejected() {
        let err = Rtl::builder(4)
            .instruction("NOP", std::iter::empty())
            .unwrap_err();
        assert!(matches!(err, ActivityError::EmptyInstruction { .. }));
    }

    #[test]
    fn empty_rtl_is_rejected() {
        assert_eq!(
            Rtl::builder(4).build().unwrap_err(),
            ActivityError::EmptyRtl
        );
        assert!(Rtl::builder(0).build().is_err());
    }

    #[test]
    fn out_of_range_instruction_lookup() {
        let rtl = paper_example_rtl();
        assert!(rtl.instruction(3).is_ok());
        assert!(matches!(
            rtl.instruction(4),
            Err(ActivityError::InstructionOutOfRange { .. })
        ));
    }

    #[test]
    fn instruction_id_display() {
        let rtl = paper_example_rtl();
        assert_eq!(format!("{}", rtl.instruction(0).unwrap()), "I1");
        assert_eq!(format!("{}", rtl.instruction(3).unwrap()), "I4");
    }
}
