//! Instruction-level activity model for gated clock routing.
//!
//! The paper derives the on/off behaviour of every clock-gate enable signal
//! from *instruction statistics* rather than from expensive clock-by-clock
//! RTL simulation (§3):
//!
//! 1. An **RTL description** ([`Rtl`]) says which modules every instruction
//!    uses (Table 1 of the paper).
//! 2. An **instruction stream** ([`InstructionStream`]) comes from
//!    instruction-level simulation; here it is produced by a synthetic
//!    [`CpuModel`] with controllable instruction mix and temporal
//!    persistence.
//! 3. One scan of the stream builds two tables:
//!    * the **Instruction Frequency Table** ([`Ift`], Table 2) — `P(I_k)`;
//!    * the **Instruction-Transition Module-Activation Table**
//!      ([`Itmatt`], Table 3) — probabilities of consecutive instruction
//!      pairs, from which 2-bit activation tags `AT(M_j)` follow.
//! 4. For any module set S (the sinks under a clock-tree node), the
//!    **signal probability** `P(EN) = P(⋃ M_i active)` and the **transition
//!    probability** `P_tr(EN)` are computed from the tables *without
//!    rescanning the stream* ([`EnableStats`]).
//!
//! Both the table-driven computation and the brute-force stream scan are
//! implemented; they agree exactly (same denominators: B cycles for signal
//! probabilities, B−1 consecutive pairs for transition probabilities), and
//! the test-suite cross-checks them on random streams.
//!
//! # Streaming at production scale
//!
//! Multi-million-cycle traces need not be materialized: any
//! [`TraceSource`] (an in-memory [`SliceSource`], an incremental
//! [`ModelTraceSource`], a text-file [`io::TextTraceSource`]) streams
//! through [`scan_source`] — a chunked, parallel count pipeline whose
//! result is **bit-identical** to [`ActivityTables::scan`] at every
//! thread count and chunk size (integer counts merge exactly; the f64
//! normalization happens once). Push-style integration goes through
//! [`TableBuilder`]. See `docs/algorithms.md` for the chunk-stitch and
//! exact-merge argument.
//!
//! # Example
//!
//! The paper's worked example: four instructions over six modules, with
//! `P(M1) = 0.75` and `P(EN) = P(M5 ∨ M6) = 0.55` for its 20-cycle stream.
//!
//! ```
//! use gcr_activity::{ActivityTables, InstructionStream, ModuleSet, Rtl};
//!
//! let rtl = Rtl::builder(6)
//!     .instruction("I1", [0, 1, 2, 4])? // M1, M2, M3, M5
//!     .instruction("I2", [0, 3])?       // M1, M4
//!     .instruction("I3", [1, 4, 5])?    // M2, M5, M6
//!     .instruction("I4", [2, 3])?       // M3, M4
//!     .build()?;
//! let stream = InstructionStream::from_indices(
//!     &rtl,
//!     [0, 1, 3, 0, 2, 1, 0, 0, 1, 0, 2, 0, 1, 2, 0, 0, 1, 1, 3, 1],
//! )?;
//! let tables = ActivityTables::scan(&rtl, &stream);
//!
//! let m1 = ModuleSet::with_modules(6, [0]);
//! assert!((tables.enable_stats(&m1).signal - 0.75).abs() < 1e-12);
//! let m56 = ModuleSet::with_modules(6, [4, 5]);
//! assert!((tables.enable_stats(&m56).signal - 0.55).abs() < 1e-12);
//! # Ok::<(), gcr_activity::ActivityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
pub mod io;
mod model;
mod moduleset;
mod rtl;
mod source;
mod stats;
mod stream;
mod tables;

pub use builder::{
    scan_source, scan_source_traced, set_alloc_probe, ScanParams, ScanProfile, ScanScratch,
    TableBuilder, DEFAULT_CHUNK_CYCLES, DEFAULT_DENSE_LIMIT,
};
pub use error::ActivityError;
pub use model::{CpuModel, CpuModelBuilder, ModelTraceSource};
pub use moduleset::ModuleSet;
pub use rtl::{paper_example_rtl, InstructionId, Rtl, RtlBuilder};
pub use source::{SliceSource, TraceSource};
pub use stats::StreamStats;
pub use stream::InstructionStream;
pub use tables::{ActivityTables, EnableStats, Ift, Itmatt};
