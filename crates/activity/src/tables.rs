use std::fmt;

use crate::{ActivityError, InstructionId, InstructionStream, ModuleSet, Rtl};

/// The Instruction Frequency Table (Table 2 of the paper): the probability
/// that each instruction executes in a random cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct Ift {
    probs: Vec<f64>,
}

impl Ift {
    /// Builds the table by scanning `stream` once (O(B)).
    #[must_use]
    pub fn scan(rtl: &Rtl, stream: &InstructionStream) -> Self {
        let mut counts = vec![0usize; rtl.num_instructions()];
        for &i in stream.instructions() {
            counts[i.index()] += 1;
        }
        let b = stream.len() as f64;
        Self {
            probs: counts.iter().map(|&c| c as f64 / b).collect(),
        }
    }

    /// Builds the table from integer per-instruction counts over `cycles`
    /// cycles — the normalization the streaming builder performs once after
    /// its exact integer merge. Arithmetic is identical to [`Self::scan`]
    /// (`count as f64 / cycles as f64`), so counts that match a sequential
    /// scan produce a bit-identical table.
    pub(crate) fn from_counts(counts: &[u64], cycles: u64) -> Self {
        let b = cycles as f64;
        Self {
            probs: counts.iter().map(|&c| c as f64 / b).collect(),
        }
    }

    /// Builds the table from explicit probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InvalidStream`] when any probability is
    /// negative/non-finite or the probabilities do not sum to 1 (within
    /// 1e-9).
    pub fn from_probabilities(probs: Vec<f64>) -> Result<Self, ActivityError> {
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(ActivityError::InvalidStream {
                reason: "instruction probabilities must be finite and >= 0".into(),
            });
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(ActivityError::InvalidStream {
                reason: format!("instruction probabilities sum to {sum}, expected 1"),
            });
        }
        Ok(Self { probs })
    }

    /// P(I) for instruction `id`.
    #[must_use]
    pub fn probability(&self, id: InstructionId) -> f64 {
        self.probs[id.index()]
    }

    /// Number of instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// The Instruction-Transition Module-Activation Table (Table 3 of the
/// paper): for every ordered pair of instructions, the probability that
/// they execute in consecutive cycles.
///
/// The per-module 2-bit activation tags `AT(M_j)` of the paper are not
/// stored — they are fully determined by the pair's two usage bitsets and
/// are evaluated on the fly during
/// [`ActivityTables::enable_stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct Itmatt {
    k: usize,
    /// Dense row-major K×K pair probabilities.
    pair_probs: Vec<f64>,
    /// Sparse view of the non-zero pairs — streams with high persistence
    /// populate only a sliver of the K² matrix, and the transition query
    /// in the router's inner loop only needs those.
    nonzero: Vec<(u16, u16, f64)>,
}

impl Itmatt {
    /// Hard capacity limit on the instruction count K: the table is a
    /// dense K² matrix of `f64` (128 MiB at the cap) and the sparse view
    /// packs indices into `u16`. The check runs **before** the K²
    /// allocation is attempted, so an oversized RTL fails with a
    /// structured [`ActivityError::CapacityExceeded`] instead of an
    /// abort-on-OOM.
    pub const MAX_INSTRUCTIONS: usize = 4096;

    /// Builds the table by scanning the B−1 consecutive pairs of `stream`
    /// once (O(B)).
    ///
    /// # Panics
    ///
    /// Panics when `rtl` defines more than [`Self::MAX_INSTRUCTIONS`]
    /// instructions; use [`Self::try_scan`] to handle that structurally.
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "documented panic; try_scan is the fallible form"
    )]
    pub fn scan(rtl: &Rtl, stream: &InstructionStream) -> Self {
        Self::try_scan(rtl, stream).expect("instruction count exceeds Itmatt::MAX_INSTRUCTIONS")
    }

    /// As [`Self::scan`], returning a structured error instead of
    /// panicking on oversized RTLs.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::CapacityExceeded`] when `rtl` defines more
    /// than [`Self::MAX_INSTRUCTIONS`] instructions — checked before the
    /// dense K² count array is allocated.
    pub fn try_scan(rtl: &Rtl, stream: &InstructionStream) -> Result<Self, ActivityError> {
        let k = rtl.num_instructions();
        Self::check_capacity(k)?;
        let mut counts = vec![0usize; k * k];
        for (a, b) in stream.pairs() {
            counts[a.index() * k + b.index()] += 1;
        }
        let pairs = (stream.len() - 1) as f64;
        let pair_probs: Vec<f64> = counts.iter().map(|&c| c as f64 / pairs).collect();
        Self::from_dense(k, pair_probs)
    }

    /// Rejects instruction counts the dense representation cannot hold.
    pub(crate) fn check_capacity(k: usize) -> Result<(), ActivityError> {
        if k > Self::MAX_INSTRUCTIONS {
            return Err(ActivityError::CapacityExceeded {
                instructions: k,
                limit: Self::MAX_INSTRUCTIONS,
            });
        }
        Ok(())
    }

    pub(crate) fn from_dense(k: usize, pair_probs: Vec<f64>) -> Result<Self, ActivityError> {
        Self::check_capacity(k)?;
        let nonzero = pair_probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(i, &p)| ((i / k) as u16, (i % k) as u16, p))
            .collect();
        Ok(Self {
            k,
            pair_probs,
            nonzero,
        })
    }

    /// Probability that `a` is followed by `b` in consecutive cycles.
    #[must_use]
    pub fn pair_probability(&self, a: InstructionId, b: InstructionId) -> f64 {
        self.pair_probs[a.index() * self.k + b.index()]
    }

    /// Iterator over the pairs with non-zero probability.
    ///
    /// Walks the sparse view cached at construction — O(observed pairs)
    /// per call, not O(K²) — which is what the gate-reduction loop
    /// iterates per candidate grouping.
    pub fn nonzero_pairs(&self) -> impl Iterator<Item = (InstructionId, InstructionId, f64)> + '_ {
        self.nonzero
            .iter()
            .map(|&(a, b, p)| (InstructionId(u32::from(a)), InstructionId(u32::from(b)), p))
    }

    /// Number of pairs with non-zero probability (size of the sparse view).
    #[must_use]
    pub fn nonzero_len(&self) -> usize {
        self.nonzero.len()
    }

    /// Number of instructions covered (K); the table holds K² entries.
    #[must_use]
    pub fn num_instructions(&self) -> usize {
        self.k
    }
}

/// Signal and transition probability of one gate-enable signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnableStats {
    /// `P(EN)` — probability the enable is 1 in a random cycle. Weights the
    /// clock-tree switched capacitance (§2.1).
    pub signal: f64,
    /// `P_tr(EN)` — probability the enable changes value across a random
    /// cycle boundary. Weights the controller-tree switched capacitance
    /// (§2.2).
    pub transition: f64,
}

impl EnableStats {
    /// Stats for an always-on signal (ungated node).
    pub const ALWAYS_ON: EnableStats = EnableStats {
        signal: 1.0,
        transition: 0.0,
    };
}

/// IFT + ITMATT bundled with the RTL: everything needed to answer
/// probability queries for arbitrary module sets without rescanning the
/// instruction stream (§3.3).
#[derive(Clone, Debug)]
pub struct ActivityTables {
    rtl: Rtl,
    ift: Ift,
    itmatt: Itmatt,
}

impl ActivityTables {
    /// Builds both tables with a single O(B) scan of `stream`.
    ///
    /// # Panics
    ///
    /// Panics when `rtl` exceeds [`Itmatt::MAX_INSTRUCTIONS`]; use
    /// [`Self::try_scan`] to handle that structurally.
    #[must_use]
    pub fn scan(rtl: &Rtl, stream: &InstructionStream) -> Self {
        Self::scan_traced(rtl, stream, &gcr_trace::Tracer::disabled())
    }

    /// As [`Self::scan`], reporting per-table spans and size counters
    /// through `tracer` (see `docs/observability.md` for the taxonomy).
    ///
    /// # Panics
    ///
    /// Panics when `rtl` exceeds [`Itmatt::MAX_INSTRUCTIONS`].
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "documented panic; try_scan_traced is the fallible form"
    )]
    pub fn scan_traced(rtl: &Rtl, stream: &InstructionStream, tracer: &gcr_trace::Tracer) -> Self {
        Self::try_scan_traced(rtl, stream, tracer)
            .expect("instruction count exceeds Itmatt::MAX_INSTRUCTIONS")
    }

    /// As [`Self::scan`], returning a structured error instead of
    /// panicking on oversized RTLs.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::CapacityExceeded`] when `rtl` defines more
    /// than [`Itmatt::MAX_INSTRUCTIONS`] instructions.
    pub fn try_scan(rtl: &Rtl, stream: &InstructionStream) -> Result<Self, ActivityError> {
        Self::try_scan_traced(rtl, stream, &gcr_trace::Tracer::disabled())
    }

    /// As [`Self::try_scan`], reporting per-table spans and size counters
    /// through `tracer`.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::CapacityExceeded`] when `rtl` defines more
    /// than [`Itmatt::MAX_INSTRUCTIONS`] instructions.
    pub fn try_scan_traced(
        rtl: &Rtl,
        stream: &InstructionStream,
        tracer: &gcr_trace::Tracer,
    ) -> Result<Self, ActivityError> {
        let _scan = tracer.span("activity.scan");
        let ift = {
            let _span = tracer.span("activity.ift");
            Ift::scan(rtl, stream)
        };
        let itmatt = {
            let _span = tracer.span("activity.itmatt");
            Itmatt::try_scan(rtl, stream)?
        };
        tracer.counter("activity.cycles", stream.len() as f64);
        tracer.counter("activity.instructions", rtl.num_instructions() as f64);
        tracer.counter("activity.modules", rtl.num_modules() as f64);
        tracer.counter("activity.itmatt_nonzero", itmatt.nonzero.len() as f64);
        Ok(Self {
            rtl: rtl.clone(),
            ift,
            itmatt,
        })
    }

    /// Assembles tables from already-built parts (the streaming builder's
    /// final normalization step).
    pub(crate) fn from_parts(rtl: Rtl, ift: Ift, itmatt: Itmatt) -> Self {
        Self { rtl, ift, itmatt }
    }

    /// Builds tables from explicit probabilities instead of a stream scan:
    /// `ift` is the stationary instruction distribution and
    /// `pair_probs[a][b]` the probability of the consecutive pair
    /// `(I_a, I_b)` (row-major K×K, summing to 1).
    ///
    /// Used with closed-form models (see
    /// [`CpuModel::analytic_tables`](crate::CpuModel::analytic_tables)),
    /// and handy when statistics come from an external simulator that
    /// already aggregated them.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::InvalidStream`] when dimensions mismatch
    /// the RTL or the probabilities are invalid, and
    /// [`ActivityError::CapacityExceeded`] when the RTL exceeds
    /// [`Itmatt::MAX_INSTRUCTIONS`].
    pub fn from_probabilities(
        rtl: &Rtl,
        ift: Vec<f64>,
        pair_probs: Vec<f64>,
    ) -> Result<Self, ActivityError> {
        let k = rtl.num_instructions();
        if ift.len() != k || pair_probs.len() != k * k {
            return Err(ActivityError::InvalidStream {
                reason: format!(
                    "expected {k} IFT entries and {} pair entries, got {} and {}",
                    k * k,
                    ift.len(),
                    pair_probs.len()
                ),
            });
        }
        let ift = Ift::from_probabilities(ift)?;
        if pair_probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(ActivityError::InvalidStream {
                reason: "pair probabilities must be finite and >= 0".into(),
            });
        }
        let sum: f64 = pair_probs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(ActivityError::InvalidStream {
                reason: format!("pair probabilities sum to {sum}, expected 1"),
            });
        }
        Ok(Self {
            rtl: rtl.clone(),
            ift,
            itmatt: Itmatt::from_dense(k, pair_probs)?,
        })
    }

    /// The RTL description the tables refer to.
    #[must_use]
    pub fn rtl(&self) -> &Rtl {
        &self.rtl
    }

    /// The instruction frequency table.
    #[must_use]
    pub fn ift(&self) -> &Ift {
        &self.ift
    }

    /// The instruction-transition table.
    #[must_use]
    pub fn itmatt(&self) -> &Itmatt {
        &self.itmatt
    }

    /// Which instructions activate a node owning module set `set`.
    ///
    /// O(K·W) for W bitset words; exposed so callers issuing many queries
    /// against the same set can reuse the vector via
    /// [`Self::enable_stats_for_active`].
    #[must_use]
    pub fn active_vector(&self, set: &ModuleSet) -> Vec<bool> {
        self.rtl
            .instruction_ids()
            .map(|i| self.rtl.activates(i, set))
            .collect()
    }

    /// Signal and transition probability of the enable of a node owning
    /// `set`, computed from the tables in O(KL + K²) — Equation (2) and the
    /// OR-of-activation-tags rule of §3.3.
    ///
    /// # Panics
    ///
    /// Panics if `set` is over a different module universe than the RTL.
    #[must_use]
    pub fn enable_stats(&self, set: &ModuleSet) -> EnableStats {
        self.enable_stats_for_active(&self.active_vector(set))
    }

    /// Probability that the modules of `a` and of `b` are active in the
    /// *same* cycle — the co-activity the gated router exploits when it
    /// groups modules under one enable.
    ///
    /// # Panics
    ///
    /// Panics if either set is over a different module universe.
    #[must_use]
    pub fn joint_signal(&self, a: &ModuleSet, b: &ModuleSet) -> f64 {
        self.rtl
            .instruction_ids()
            .filter(|&i| self.rtl.activates(i, a) && self.rtl.activates(i, b))
            .map(|i| self.ift.probability(i))
            .sum()
    }

    /// The lift of two module sets' activities:
    /// `P(A ∧ B) / (P(A) · P(B))` — 1 for independent activity, > 1 for
    /// co-active groups (a functional cluster), < 1 for mutually exclusive
    /// ones (e.g. integer vs FP pipelines). Returns `f64::NAN` when either
    /// marginal is zero.
    ///
    /// # Panics
    ///
    /// Panics if either set is over a different module universe.
    #[must_use]
    pub fn activity_lift(&self, a: &ModuleSet, b: &ModuleSet) -> f64 {
        let pa = self.enable_stats(a).signal;
        let pb = self.enable_stats(b).signal;
        if pa <= 0.0 || pb <= 0.0 {
            return f64::NAN;
        }
        self.joint_signal(a, b) / (pa * pb)
    }

    /// As [`Self::enable_stats`], for a precomputed activation vector.
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the instruction count.
    #[must_use]
    pub fn enable_stats_for_active(&self, active: &[bool]) -> EnableStats {
        assert_eq!(
            active.len(),
            self.rtl.num_instructions(),
            "activation vector length mismatch"
        );
        let signal = self
            .rtl
            .instruction_ids()
            .filter(|i| active[i.index()])
            .map(|i| self.ift.probability(i))
            .sum();
        // Only the observed pairs can contribute; with persistent streams
        // that is far fewer than K².
        let mut transition = 0.0;
        for &(a, b, p) in &self.itmatt.nonzero {
            if active[a as usize] != active[b as usize] {
                transition += p;
            }
        }
        EnableStats { signal, transition }
    }
}

impl fmt::Display for ActivityTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ActivityTables[{} instructions, {} modules]",
            self.rtl.num_instructions(),
            self.rtl.num_modules()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_example_rtl, RtlBuilder};

    fn paper_stream(rtl: &Rtl) -> InstructionStream {
        InstructionStream::from_indices(
            rtl,
            [0, 1, 3, 0, 2, 1, 0, 0, 1, 0, 2, 0, 1, 2, 0, 0, 1, 1, 3, 1],
        )
        .unwrap()
    }

    #[test]
    fn ift_matches_hand_counts() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let ift = Ift::scan(&rtl, &s);
        // Counts: I1=8, I2=7, I3=3, I4=2 over 20 cycles.
        assert!((ift.probability(rtl.instruction(0).unwrap()) - 0.40).abs() < 1e-12);
        assert!((ift.probability(rtl.instruction(1).unwrap()) - 0.35).abs() < 1e-12);
        assert!((ift.probability(rtl.instruction(2).unwrap()) - 0.15).abs() < 1e-12);
        assert!((ift.probability(rtl.instruction(3).unwrap()) - 0.10).abs() < 1e-12);
        let total: f64 = rtl.instruction_ids().map(|i| ift.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn itmatt_pair_probabilities_sum_to_one() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let t = Itmatt::scan(&rtl, &s);
        let total: f64 = t.nonzero_pairs().map(|(_, _, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(t.num_instructions(), 4);
        // Pair (I1, I2) occurs 4 times in the 19 pairs.
        let (i1, i2) = (rtl.instruction(0).unwrap(), rtl.instruction(1).unwrap());
        assert!((t.pair_probability(i1, i2) - 4.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn table_driven_signal_matches_paper_values() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let tables = ActivityTables::scan(&rtl, &s);
        let m1 = ModuleSet::with_modules(6, [0]);
        assert!((tables.enable_stats(&m1).signal - 0.75).abs() < 1e-12);
        let m56 = ModuleSet::with_modules(6, [4, 5]);
        assert!((tables.enable_stats(&m56).signal - 0.55).abs() < 1e-12);
    }

    /// The heart of §3.3: the table-driven computation must agree *exactly*
    /// with the brute-force stream scan — for every one of the 63 nonempty
    /// module subsets of the worked example.
    #[test]
    fn tables_equal_brute_force_on_all_subsets() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let tables = ActivityTables::scan(&rtl, &s);
        for mask in 1u32..64 {
            let set = ModuleSet::with_modules(6, (0..6).filter(|m| mask & (1 << m) != 0));
            let stats = tables.enable_stats(&set);
            let sig = s.signal_probability(&rtl, &set);
            let tr = s.transition_probability(&rtl, &set);
            assert!(
                (stats.signal - sig).abs() < 1e-12,
                "signal mismatch for {set}: table {} vs scan {sig}",
                stats.signal
            );
            assert!(
                (stats.transition - tr).abs() < 1e-12,
                "transition mismatch for {set}: table {} vs scan {tr}",
                stats.transition
            );
        }
    }

    #[test]
    fn enable_stats_monotone_under_union() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let tables = ActivityTables::scan(&rtl, &s);
        let a = ModuleSet::with_modules(6, [4]);
        let b = ModuleSet::with_modules(6, [5]);
        let u = a.union(&b);
        let (sa, sb, su) = (
            tables.enable_stats(&a),
            tables.enable_stats(&b),
            tables.enable_stats(&u),
        );
        assert!(su.signal >= sa.signal.max(sb.signal) - 1e-12);
        assert!(su.signal <= sa.signal + sb.signal + 1e-12);
    }

    #[test]
    fn joint_signal_and_lift() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let tables = ActivityTables::scan(&rtl, &s);
        // M1 is used by I1 and I2; M4 by I2 and I4. Joint = P(I2).
        let m1 = ModuleSet::with_modules(6, [0]);
        let m4 = ModuleSet::with_modules(6, [3]);
        let i2 = rtl.instruction(1).unwrap();
        assert!((tables.joint_signal(&m1, &m4) - tables.ift().probability(i2)).abs() < 1e-12);
        // Joint probability is bounded by each marginal.
        let j = tables.joint_signal(&m1, &m4);
        assert!(j <= tables.enable_stats(&m1).signal + 1e-12);
        assert!(j <= tables.enable_stats(&m4).signal + 1e-12);
        // A set is perfectly co-active with itself: lift = 1/P.
        let lift_self = tables.activity_lift(&m1, &m1);
        assert!((lift_self - 1.0 / tables.enable_stats(&m1).signal).abs() < 1e-9);
        // Lift vs a never-active... there is none here; check NaN guard via
        // an empty set instead.
        let empty = ModuleSet::new(6);
        assert!(tables.activity_lift(&m1, &empty).is_nan());
    }

    #[test]
    fn from_probabilities_validation() {
        assert!(Ift::from_probabilities(vec![0.5, 0.5]).is_ok());
        assert!(Ift::from_probabilities(vec![0.5, 0.6]).is_err());
        assert!(Ift::from_probabilities(vec![-0.1, 1.1]).is_err());
        assert!(Ift::from_probabilities(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn from_probabilities_rejects_empty_table() {
        // An empty IFT sums to 0, not 1 — there is no empty-but-valid table.
        assert!(Ift::from_probabilities(vec![]).is_err());
        let rtl = paper_example_rtl();
        // Dimension mismatches (including fully empty inputs) are rejected
        // before any probability is inspected.
        assert!(ActivityTables::from_probabilities(&rtl, vec![], vec![]).is_err());
        assert!(ActivityTables::from_probabilities(&rtl, vec![0.25; 4], vec![]).is_err());
    }

    #[test]
    fn single_instruction_tables() {
        // K = 1: the lone instruction always executes, so every owned
        // module set is always enabled and nothing ever transitions.
        let rtl = Rtl::builder(2)
            .instruction("I1", [0])
            .unwrap()
            .build()
            .unwrap();
        let tables = ActivityTables::from_probabilities(&rtl, vec![1.0], vec![1.0]).unwrap();
        let i1 = rtl.instruction(0).unwrap();
        assert_eq!(tables.ift().len(), 1);
        assert!((tables.ift().probability(i1) - 1.0).abs() < 1e-12);
        assert!((tables.itmatt().pair_probability(i1, i1) - 1.0).abs() < 1e-12);
        let used = ModuleSet::with_modules(2, [0]);
        let unused = ModuleSet::with_modules(2, [1]);
        let on = tables.enable_stats(&used);
        let off = tables.enable_stats(&unused);
        assert!((on.signal - 1.0).abs() < 1e-12 && on.transition.abs() < 1e-12);
        assert!(off.signal.abs() < 1e-12 && off.transition.abs() < 1e-12);
    }

    #[test]
    fn minimal_two_cycle_stream_scan() {
        // The shortest legal stream (B = 2) yields exactly one pair.
        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 1]).unwrap();
        let tables = ActivityTables::scan(&rtl, &s);
        let (i1, i2) = (rtl.instruction(0).unwrap(), rtl.instruction(1).unwrap());
        assert!((tables.ift().probability(i1) - 0.5).abs() < 1e-12);
        assert!((tables.itmatt().pair_probability(i1, i2) - 1.0).abs() < 1e-12);
        assert_eq!(tables.itmatt().nonzero_pairs().count(), 1);
    }

    #[test]
    fn itmatt_all_zero_rows_are_skipped() {
        // Instruction I2 never starts a pair: its ITMATT row is all zero.
        // The sparse view must skip it and transition sums must stay exact.
        let rtl = Rtl::builder(2)
            .instruction("I1", [0])
            .and_then(|b| b.instruction("I2", [1]))
            .and_then(RtlBuilder::build)
            .unwrap();
        let ift = vec![0.75, 0.25];
        let pair_probs = vec![0.5, 0.5, 0.0, 0.0]; // row-major: rows (I1, _), (I2, _)
        let tables = ActivityTables::from_probabilities(&rtl, ift, pair_probs).unwrap();
        let (i1, i2) = (rtl.instruction(0).unwrap(), rtl.instruction(1).unwrap());
        assert_eq!(tables.itmatt().pair_probability(i2, i1), 0.0);
        assert_eq!(tables.itmatt().pair_probability(i2, i2), 0.0);
        assert_eq!(tables.itmatt().nonzero_pairs().count(), 2);
        // Only M1 toggles: the (I1, I2) pair flips its enable.
        let m1 = ModuleSet::with_modules(2, [0]);
        let stats = tables.enable_stats(&m1);
        assert!((stats.signal - 0.75).abs() < 1e-12);
        assert!((stats.transition - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oversized_rtl_is_rejected_before_dense_allocation() {
        // One instruction past the cap: try_scan must fail with the
        // structured capacity error (before attempting the K² allocation —
        // at the cap+1 that would still succeed, but the guard is what
        // keeps a 10⁵-instruction RTL from aborting on OOM).
        let k = Itmatt::MAX_INSTRUCTIONS + 1;
        let mut builder = Rtl::builder(1);
        for i in 0..k {
            builder = builder.instruction(&format!("I{i}"), [0]).unwrap();
        }
        let rtl = builder.build().unwrap();
        let stream = InstructionStream::from_indices(&rtl, [0, 1]).unwrap();
        let err = Itmatt::try_scan(&rtl, &stream).unwrap_err();
        assert_eq!(
            err,
            ActivityError::CapacityExceeded {
                instructions: k,
                limit: Itmatt::MAX_INSTRUCTIONS,
            }
        );
        assert!(ActivityTables::try_scan(&rtl, &stream).is_err());
        // from_probabilities hits the same guard (after validating the
        // probabilities themselves).
        let mut ift = vec![0.0; k];
        ift[0] = 1.0;
        let mut pairs = vec![0.0; k * k];
        pairs[0] = 1.0;
        assert!(matches!(
            ActivityTables::from_probabilities(&rtl, ift, pairs).unwrap_err(),
            ActivityError::CapacityExceeded { .. }
        ));
    }

    #[test]
    fn nonzero_pairs_matches_dense_filter() {
        // The sparse iterator must agree with a direct dense filter —
        // same pairs, same order (row-major), same probabilities.
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let t = Itmatt::scan(&rtl, &s);
        let k = t.num_instructions();
        let dense: Vec<_> = (0..k * k)
            .map(|i| {
                (
                    InstructionId((i / k) as u32),
                    InstructionId((i % k) as u32),
                    t.pair_probability(
                        InstructionId((i / k) as u32),
                        InstructionId((i % k) as u32),
                    ),
                )
            })
            .filter(|&(_, _, p)| p > 0.0)
            .collect();
        let sparse: Vec<_> = t.nonzero_pairs().collect();
        assert_eq!(sparse, dense);
        assert_eq!(t.nonzero_len(), dense.len());
    }

    #[test]
    fn always_on_constant() {
        assert_eq!(EnableStats::ALWAYS_ON.signal, 1.0);
        assert_eq!(EnableStats::ALWAYS_ON.transition, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let rtl = paper_example_rtl();
        let s = paper_stream(&rtl);
        let tables = ActivityTables::scan(&rtl, &s);
        assert!(format!("{tables}").contains("4 instructions"));
    }
}
