use std::fmt;

use crate::{ActivityTables, InstructionStream, ModuleSet, Rtl};

/// Summary statistics of an instruction stream against an RTL description —
/// the quantities reported in Table 4 of the paper.
///
/// ```
/// use gcr_activity::{paper_example_rtl, InstructionStream, StreamStats};
///
/// let rtl = paper_example_rtl();
/// let s = InstructionStream::from_indices(&rtl, [0, 1, 2, 3, 0, 0])?;
/// let stats = StreamStats::collect(&rtl, &s);
/// assert_eq!(stats.num_cycles, 6);
/// assert!(stats.avg_module_activity > 0.0 && stats.avg_module_activity < 1.0);
/// # Ok::<(), gcr_activity::ActivityError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StreamStats {
    /// Number of cycles in the stream (Table 4's "No. of instr").
    pub num_cycles: usize,
    /// Number of distinct instructions in the RTL.
    pub num_instructions: usize,
    /// Number of modules in the universe.
    pub num_modules: usize,
    /// Average fraction of modules active per cycle — Table 4's
    /// `Ave(M(I))`, "about 40 % of the modules are active at any given
    /// time".
    pub avg_module_activity: f64,
    /// Per-module signal probability `P(M_j)`.
    pub module_activity: Vec<f64>,
}

/// `num / den`, defined as 0 when the denominator is 0: an empty
/// instruction stream or a zero-module universe has no activity, and a
/// 0/0 here would otherwise surface as NaN probabilities that poison
/// every downstream Equation-3 cost.
fn ratio_or_zero(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

impl StreamStats {
    /// Scans `stream` once and collects the statistics.
    ///
    /// Degenerate inputs produce well-defined zeros rather than NaN:
    /// with no cycles or no modules, `avg_module_activity` and every
    /// `module_activity` entry are 0.
    #[must_use]
    pub fn collect(rtl: &Rtl, stream: &InstructionStream) -> Self {
        let n = rtl.num_modules();
        let mut active_cycles = vec![0usize; n];
        let mut active_total = 0usize;
        for &i in stream.instructions() {
            let used = rtl.modules_used(i);
            active_total += used.len();
            for m in used.iter() {
                active_cycles[m] += 1;
            }
        }
        let b = stream.len() as f64;
        Self {
            num_cycles: stream.len(),
            num_instructions: rtl.num_instructions(),
            num_modules: n,
            avg_module_activity: ratio_or_zero(active_total as f64, b * n as f64),
            module_activity: active_cycles
                .iter()
                .map(|&c| ratio_or_zero(c as f64, b))
                .collect(),
        }
    }

    /// Collects the same statistics from pre-built tables (no stream scan):
    /// `P(M_j)` is the table-driven signal probability of the singleton set
    /// and the average activity is the IFT-weighted usage fraction.
    ///
    /// As with [`Self::collect`], a zero-module universe yields an
    /// average activity of 0, not NaN.
    #[must_use]
    pub fn from_tables(tables: &ActivityTables) -> Self {
        let rtl = tables.rtl();
        let n = rtl.num_modules();
        let module_activity: Vec<f64> = (0..n)
            .map(|m| tables.enable_stats(&ModuleSet::with_modules(n, [m])).signal)
            .collect();
        let weighted: f64 = rtl
            .instruction_ids()
            .map(|i| tables.ift().probability(i) * rtl.modules_used(i).len() as f64)
            .sum();
        Self {
            num_cycles: 0, // unknown without the stream
            num_instructions: rtl.num_instructions(),
            num_modules: n,
            avg_module_activity: ratio_or_zero(weighted, n as f64),
            module_activity,
        }
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} instructions, {} modules, avg activity {:.1}%",
            self.num_cycles,
            self.num_instructions,
            self.num_modules,
            100.0 * self.avg_module_activity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_example_rtl, CpuModel};

    #[test]
    fn per_module_activity_matches_brute_force() {
        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 1, 2, 3, 0, 2]).unwrap();
        let stats = StreamStats::collect(&rtl, &s);
        for m in 0..6 {
            let set = ModuleSet::with_modules(6, [m]);
            assert!((stats.module_activity[m] - s.signal_probability(&rtl, &set)).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_scan_and_tables_agree() {
        let model = CpuModel::builder(50)
            .instructions(10)
            .seed(42)
            .build()
            .unwrap();
        let stream = model.generate_stream(5_000);
        let scanned = StreamStats::collect(model.rtl(), &stream);
        let tabled = StreamStats::from_tables(&ActivityTables::scan(model.rtl(), &stream));
        assert!((scanned.avg_module_activity - tabled.avg_module_activity).abs() < 1e-9);
        for (a, b) in scanned.module_activity.iter().zip(&tabled.module_activity) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn avg_activity_is_mean_of_module_activities() {
        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 0, 1, 2, 3, 1]).unwrap();
        let stats = StreamStats::collect(&rtl, &s);
        let mean: f64 = stats.module_activity.iter().sum::<f64>() / stats.num_modules as f64;
        assert!((stats.avg_module_activity - mean).abs() < 1e-12);
    }

    /// Regression: the stats divisions must never produce NaN. The public
    /// constructors reject empty streams and zero-module RTLs, so the
    /// guard is exercised directly: a zero denominator yields 0, and the
    /// smallest legal inputs stay finite end to end.
    #[test]
    fn degenerate_inputs_yield_zeros_not_nan() {
        // The raw guard: 0/0 and x/0 are defined as 0.
        assert_eq!(ratio_or_zero(0.0, 0.0), 0.0);
        assert_eq!(ratio_or_zero(3.0, 0.0), 0.0);
        assert!((ratio_or_zero(3.0, 4.0) - 0.75).abs() < 1e-12);

        // Smallest legal inputs (B = 2 cycles, one instruction, one
        // module): every statistic stays finite, and a module the stream
        // never exercises reports exactly 0.
        let rtl = Rtl::builder(2)
            .instruction("I1", [0])
            .unwrap()
            .build()
            .unwrap();
        let s = InstructionStream::from_indices(&rtl, [0, 0]).unwrap();
        let stats = StreamStats::collect(&rtl, &s);
        assert!(stats.avg_module_activity.is_finite());
        assert!(stats.module_activity.iter().all(|p| p.is_finite()));
        assert_eq!(stats.module_activity[1], 0.0);

        let tabled = StreamStats::from_tables(&ActivityTables::scan(&rtl, &s));
        assert!(tabled.avg_module_activity.is_finite());
        assert_eq!(tabled.module_activity[1], 0.0);
    }

    #[test]
    fn scan_traced_reports_spans_and_counters() {
        use gcr_trace::{MemorySink, Tracer};
        use std::sync::Arc;

        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 1, 2, 3, 0, 2]).unwrap();
        let sink = Arc::new(MemorySink::new());
        let traced = ActivityTables::scan_traced(&rtl, &s, &Tracer::new(sink.clone()));
        let plain = ActivityTables::scan(&rtl, &s);
        assert_eq!(traced.ift(), plain.ift());
        assert_eq!(traced.itmatt(), plain.itmatt());
        let nesting = sink.nesting().unwrap();
        assert_eq!(
            nesting,
            vec![
                ("activity.scan", 0),
                ("activity.ift", 1),
                ("activity.itmatt", 1)
            ]
        );
        assert_eq!(sink.counter("activity.cycles"), Some(6.0));
        assert_eq!(sink.counter("activity.instructions"), Some(4.0));
        assert_eq!(sink.counter("activity.modules"), Some(6.0));
    }

    #[test]
    fn display_shows_percentage() {
        let rtl = paper_example_rtl();
        let s = InstructionStream::from_indices(&rtl, [0, 1]).unwrap();
        assert!(format!("{}", StreamStats::collect(&rtl, &s)).contains('%'));
    }
}
