//! Property-based tests of the gated clock router: zero skew always holds,
//! gating never increases the clock tree's switched capacitance, and the
//! §6 distributed-controller claim holds for every routed instance.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel, EnableStats};
use gcr_core::{
    evaluate, evaluate_with_mask, reduce_gates, reduce_gates_optimal, route_gated, simulate_stream,
    ControllerPlan, DeviceRole, ReductionParams, RouterConfig,
};
use gcr_cts::Sink;
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use proptest::prelude::*;

const SIDE: f64 = 20_000.0;

fn sinks_strategy(max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..SIDE, 0.0..SIDE, 0.01..0.1f64), 3..max).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
            .collect()
    })
}

fn setup(sinks: &[Sink], seed: u64) -> (ActivityTables, RouterConfig) {
    let (tables, config, _) = setup_with_stream(sinks, seed);
    (tables, config)
}

fn setup_with_stream(
    sinks: &[Sink],
    seed: u64,
) -> (
    ActivityTables,
    RouterConfig,
    gcr_activity::InstructionStream,
) {
    let model = CpuModel::builder(sinks.len())
        .instructions(8)
        .usage_fraction(0.4)
        .seed(seed)
        .build()
        .unwrap();
    let stream = model.generate_stream(2_000);
    let tables = ActivityTables::scan(model.rtl(), &stream);
    let die = BBox::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE));
    (
        tables,
        RouterConfig::new(Technology::default(), die),
        stream,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The routed gated tree is always zero-skew, before and after gate
    /// reduction at any strength.
    #[test]
    fn routing_and_reduction_preserve_zero_skew(
        sinks in sinks_strategy(14),
        seed in 0u64..500,
        strength in 0.0..1.0f64,
    ) {
        let (tables, config) = setup(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let tech = config.tech();
        let d = routing.tree.source_to_sink_delay(tech);
        prop_assert!(routing.tree.verify_skew(tech) <= 1e-9 * d.max(1.0));

        let reduced_assignment =
            reduce_gates(&routing, tech, &ReductionParams::from_strength(strength, tech));
        let reduced = routing.reembed(&sinks, reduced_assignment, &config).unwrap();
        let d2 = reduced.tree.source_to_sink_delay(tech);
        prop_assert!(reduced.tree.verify_skew(tech) <= 1e-9 * d2.max(1.0),
            "skew {} after reduction strength {strength}", reduced.tree.verify_skew(tech));
    }

    /// Gating the clock tree never burns more clock-tree capacitance than
    /// running the identical tree ungated (P = 1 everywhere).
    #[test]
    fn gating_never_increases_clock_tree_cap(
        sinks in sinks_strategy(12),
        seed in 0u64..500,
    ) {
        let (tables, config) = setup(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let tech = config.tech();
        let gated = evaluate(
            &routing.tree, &routing.node_stats, config.controller(), tech, DeviceRole::Gate,
        );
        let always_on = vec![EnableStats::ALWAYS_ON; routing.tree.len()];
        let ungated = evaluate(
            &routing.tree, &always_on, config.controller(), tech, DeviceRole::Gate,
        );
        prop_assert!(gated.clock_switched_cap <= ungated.clock_switched_cap + 1e-9,
            "gated {} > ungated {}", gated.clock_switched_cap, ungated.clock_switched_cap);
        // The floor: the clock tree can never switch less than its
        // activity-weighted leaf edges.
        prop_assert!(gated.clock_switched_cap > 0.0);
    }

    /// §6's distributed controllers: every star edge is bounded by the
    /// half-perimeter of the partition serving it — which shrinks by 2×
    /// per level and drives the √k area reduction. (The aggregate-average
    /// claim is validated on uniform gate fields in the controller unit
    /// tests; it is not a per-instance invariant, since a gate sitting on
    /// the die center is free under the centralized plan.)
    #[test]
    fn distributed_star_edges_are_partition_bounded(
        sinks in sinks_strategy(14),
        seed in 0u64..500,
        levels in 0u32..3,
    ) {
        let (tables, config) = setup(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let plan = if levels == 0 {
            ControllerPlan::centralized(&config.die())
        } else {
            ControllerPlan::distributed(config.die(), levels)
        };
        let bound = config.die().half_perimeter() / 2f64.powi(levels as i32 + 1);
        for (id, _) in routing.tree.devices() {
            let g = routing.tree.gate_location(id);
            // Gate locations live inside the die, so the serving partition
            // contains them.
            let len = plan.enable_wire_length(g);
            prop_assert!(len <= bound + 1e-6,
                "star edge {len} exceeds partition bound {bound} at levels {levels}");
        }
        // Sanity: the evaluator's total equals the sum of per-gate legs.
        let report = evaluate(
            &routing.tree, &routing.node_stats, &plan, config.tech(), DeviceRole::Gate,
        );
        let total: f64 = routing
            .tree
            .devices()
            .map(|(id, _)| plan.enable_wire_length(routing.tree.gate_location(id)))
            .sum();
        prop_assert!((report.control_wire_length - total).abs() < 1e-6);
    }

    /// For *any* control mask, the cycle-accurate replay of the training
    /// stream reproduces the analytic switched capacitance exactly.
    #[test]
    fn simulation_equals_analytics(
        sinks in sinks_strategy(12),
        seed in 0u64..500,
        mask_bits in any::<u64>(),
    ) {
        let (tables, config, stream) = setup_with_stream(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let tech = config.tech();
        let n = routing.tree.len();
        let mask: Vec<bool> = (0..n).map(|i| mask_bits & (1 << (i % 64)) != 0).collect();
        let analytic = evaluate_with_mask(
            &routing.tree, &routing.node_stats, config.controller(), tech, &mask,
        );
        let sim = simulate_stream(
            &routing.tree, &routing.node_modules, &mask,
            tables.rtl(), &stream, config.controller(), tech,
        );
        prop_assert!((sim.clock_switched_cap - analytic.clock_switched_cap).abs() < 1e-9);
        prop_assert!((sim.control_switched_cap - analytic.control_switched_cap).abs() < 1e-9);
    }

    /// The DP control-subset optimum is never beaten by a random mask.
    #[test]
    fn dp_beats_random_masks(
        sinks in sinks_strategy(12),
        seed in 0u64..500,
        mask_bits in any::<u64>(),
    ) {
        let (tables, config) = setup(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let tech = config.tech();
        let n = routing.tree.len();
        let eval = |mask: &[bool]| {
            evaluate_with_mask(
                &routing.tree, &routing.node_stats, config.controller(), tech, mask,
            )
            .total_switched_cap
        };
        let dp = eval(&reduce_gates_optimal(&routing, tech, config.controller()));
        let random: Vec<bool> = (0..n).map(|i| mask_bits & (1 << (i % 64)) != 0).collect();
        prop_assert!(dp <= eval(&random) + 1e-9,
            "DP {dp} beaten by a random mask {}", eval(&random));
    }

    /// ECO churn keeps the tree valid: any sequence of one insertion and
    /// one removal preserves zero skew and sink-count bookkeeping.
    #[test]
    fn eco_churn_preserves_invariants(
        sinks in sinks_strategy(10),
        seed in 0u64..300,
        insert_at in 0usize..10,
        remove_at in 0usize..10,
    ) {
        let (tables, config) = setup(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let tech = config.tech();
        let new_sink = Sink::new(
            Point::new(SIDE * 0.31, SIDE * 0.47),
            0.05,
        );
        let module = insert_at % sinks.len();
        let (grown, grown_sinks) = routing
            .insert_sink(&sinks, new_sink, module, &tables, &config)
            .unwrap();
        prop_assert_eq!(grown_sinks.len(), sinks.len() + 1);
        let d1 = grown.tree.source_to_sink_delay(tech);
        prop_assert!(grown.tree.verify_skew(tech) <= 1e-9 * d1.max(1.0));

        let victim = remove_at % grown_sinks.len();
        let (shrunk, shrunk_sinks) = grown
            .remove_sink(&grown_sinks, victim, &tables, &config)
            .unwrap();
        prop_assert_eq!(shrunk_sinks.len(), sinks.len());
        let d2 = shrunk.tree.source_to_sink_delay(tech);
        prop_assert!(shrunk.tree.verify_skew(tech) <= 1e-9 * d2.max(1.0));
        // Stats stay within probability bounds after the churn.
        for s in &shrunk.node_stats {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s.signal));
        }
    }

    /// Reduction monotonicity at the endpoints: strength 0 keeps all
    /// gates; any strength keeps at most that many.
    #[test]
    fn reduction_counts_are_bounded(
        sinks in sinks_strategy(12),
        seed in 0u64..500,
        strength in 0.0..1.0f64,
    ) {
        let (tables, config) = setup(&sinks, seed);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let tech = config.tech();
        let full = routing.assignment.device_count();
        prop_assert_eq!(full, routing.tree.len());
        let zero = reduce_gates(&routing, tech, &ReductionParams::from_strength(0.0, tech));
        prop_assert_eq!(zero.device_count(), full);
        let some = reduce_gates(&routing, tech, &ReductionParams::from_strength(strength, tech));
        prop_assert!(some.device_count() <= full);
    }
}
