use gcr_activity::EnableStats;
use gcr_rctree::Technology;

/// Equation (3): the switched capacitance incurred by merging two subtrees
/// `v_i`, `v_j` into a new node — the greedy objective of §4.2.
///
/// ```text
/// SC(v_i, v_j) = (c·e_i + C_i)·P(EN_i)  +  (c·e_j + C_j)·P(EN_j)
///              + (c·dist(CP, mid(ms_i)) + C_g)·P_tr(EN_i)
///              + (c·dist(CP, mid(ms_j)) + C_g)·P_tr(EN_j)
/// ```
///
/// The first two terms are the new clock-tree edges (wire plus the node
/// capacitance they feed) weighted by signal probability; the last two are
/// the enable star wires for the gates on those edges weighted by
/// transition probability. Because the gate locations are not known during
/// bottom-up merging, the controller distance is estimated from the
/// midpoint of each child's merging segment (`cp_dist_*`), exactly as in
/// the paper.
///
/// # Arguments
///
/// * `e_i`, `e_j` — electrical tap lengths from the zero-skew balance.
/// * `node_cap_i/j` — the node capacitance `C_i` at the bottom of each new
///   edge: the sink load for a leaf, the child gates' input capacitances
///   for an internal node.
/// * `stats_i/j` — signal/transition probabilities of the two enables.
/// * `cp_dist_i/j` — estimated controller-to-gate star distances.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn merge_switched_cap(
    tech: &Technology,
    e_i: f64,
    e_j: f64,
    node_cap_i: f64,
    node_cap_j: f64,
    stats_i: EnableStats,
    stats_j: EnableStats,
    cp_dist_i: f64,
    cp_dist_j: f64,
) -> f64 {
    let c = tech.unit_cap();
    let c_ctl = tech.control_unit_cap();
    let c_g = tech.and_gate().input_cap();
    (c * e_i + node_cap_i) * stats_i.signal
        + (c * e_j + node_cap_j) * stats_j.signal
        + (c_ctl * cp_dist_i + c_g) * stats_i.transition
        + (c_ctl * cp_dist_j + c_g) * stats_j.transition
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_geometry::{BBox, Point};

    fn tech() -> Technology {
        Technology::default()
    }

    #[test]
    fn hand_computed_cost() {
        let t = tech();
        let c = t.unit_cap();
        let cg = t.and_gate().input_cap();
        let si = EnableStats {
            signal: 0.5,
            transition: 0.2,
        };
        let sj = EnableStats {
            signal: 1.0,
            transition: 0.0,
        };
        let sc = merge_switched_cap(&t, 100.0, 200.0, 0.05, 0.07, si, sj, 1000.0, 2000.0);
        let c_ctl = t.control_unit_cap();
        let expect = (c * 100.0 + 0.05) * 0.5
            + (c * 200.0 + 0.07) * 1.0
            + (c_ctl * 1000.0 + cg) * 0.2
            + (c_ctl * 2000.0 + cg) * 0.0;
        assert!((sc - expect).abs() < 1e-15);
    }

    #[test]
    fn lower_activity_is_cheaper() {
        let t = tech();
        let base = EnableStats {
            signal: 0.9,
            transition: 0.1,
        };
        let quiet = EnableStats {
            signal: 0.2,
            transition: 0.1,
        };
        let cost = |s| merge_switched_cap(&t, 500.0, 500.0, 0.05, 0.05, s, base, 1000.0, 1000.0);
        assert!(cost(quiet) < cost(base));
    }

    #[test]
    fn higher_toggle_rate_is_costlier() {
        let t = tech();
        let calm = EnableStats {
            signal: 0.5,
            transition: 0.05,
        };
        let busy = EnableStats {
            signal: 0.5,
            transition: 0.6,
        };
        let cost = |s| merge_switched_cap(&t, 500.0, 500.0, 0.05, 0.05, s, calm, 1500.0, 1500.0);
        assert!(cost(busy) > cost(calm));
    }

    #[test]
    fn distance_to_controller_matters() {
        let t = tech();
        let s = EnableStats {
            signal: 0.5,
            transition: 0.3,
        };
        let near = merge_switched_cap(&t, 500.0, 500.0, 0.05, 0.05, s, s, 100.0, 100.0);
        let far = merge_switched_cap(&t, 500.0, 500.0, 0.05, 0.05, s, s, 10_000.0, 10_000.0);
        assert!(far > near);
    }

    #[test]
    fn controller_plan_feeds_the_distance_term() {
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
        let plan = crate::ControllerPlan::centralized(&die);
        let d = plan.enable_wire_length(Point::new(0.0, 0.0));
        assert_eq!(d, 10_000.0);
    }
}
