use std::collections::HashMap;

use gcr_rctree::Technology;

use crate::{ControllerPlan, GatedRouting};

/// Exact, optimal choice of which gates keep their controller connection,
/// under untie semantics — the problem the paper's §4.3 rules approximate.
///
/// On a fixed fully gated tree, untying a gate changes nothing electrical;
/// it only moves the wires below it into the *domain* of the nearest
/// controlled ancestor (whose enable probability weights their switching)
/// and deletes one enable star wire. Total cost therefore decomposes over
/// the tree once the controlling domain is known, and the controlling
/// domain at any node is the enable probability of one of its ancestors —
/// at most `depth` distinct values. Dynamic programming over
/// `(node, controlling ancestor)` finds the global optimum in
/// O(N · depth) states:
///
/// ```text
/// cost(i, d) = min(  d·C_i^clk + Σ_child cost(child, d),             — untied
///                    star_i + P_i·C_i^clk + Σ_child cost(child, P_i)) — controlled
/// ```
///
/// where `C_i^clk` is the edge wire + node capacitance and `star_i` the
/// enable wire's switched capacitance. Returns the `controlled` mask for
/// [`evaluate_with_mask`](crate::evaluate_with_mask).
///
/// This is an *extension* beyond the paper (its rules R1–R3 are local
/// heuristics); the `ablations` and `optimal_reduction` binaries report
/// how much the exact optimum improves on them. The implementation is
/// fully iterative (two index sweeps), so tree depth only affects memory
/// (O(N · depth) table entries), never the stack.
#[must_use]
pub fn reduce_gates_optimal(
    routing: &GatedRouting,
    tech: &Technology,
    controller: &ControllerPlan,
) -> Vec<bool> {
    /// Sentinel "ancestor" for the free-running clock source (domain 1.0).
    const SOURCE: usize = usize::MAX;
    let tree = &routing.tree;
    let stats = &routing.node_stats;
    let n = tree.len();
    let c = tech.unit_cap();

    // Per-node clock capacitance in this node's domain: edge wire + sink
    // load + the input pins of the children's (always present) gates.
    let clock_cap: Vec<f64> = (0..n)
        .map(|i| {
            let node = tree.node(tree.id(i));
            let mut cap = c * node.electrical_length();
            if let Some(s) = node.sink() {
                cap += tree.sink_cap(s);
            }
            for &ch in node.children() {
                if let Some(d) = tree.node(ch).device() {
                    cap += d.input_cap();
                }
            }
            cap
        })
        .collect();

    // Switched capacitance of keeping node i's enable wire (infinite when
    // the edge carries no gate and thus cannot be controlled).
    let star_cost: Vec<f64> = (0..n)
        .map(|i| {
            let id = tree.id(i);
            match tree.node(id).device() {
                Some(d) => {
                    let len = controller.enable_wire_length(tree.gate_location(id));
                    (tech.control_unit_cap() * len + d.input_cap()) * stats[i].transition
                }
                None => f64::INFINITY,
            }
        })
        .collect();

    let domain_p = |ancestor: usize| -> f64 {
        if ancestor == SOURCE {
            1.0
        } else {
            stats[ancestor].signal
        }
    };

    // Pass 1 (top-down): the candidate controlling ancestors of each node.
    // Children have smaller indices than parents, so descending index
    // order visits parents first.
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); n];
    let root = tree.root().index();
    candidates[root] = vec![SOURCE];
    for i in (0..n).rev() {
        let node = tree.node(tree.id(i));
        for &ch in node.children() {
            let mut list = candidates[i].clone();
            list.push(i);
            candidates[ch.index()] = list;
        }
    }

    // Pass 2 (bottom-up): cost(i, a) and the controlled decision, for
    // every candidate ancestor a of i. Ascending index order visits
    // children first.
    let mut cost: Vec<HashMap<usize, (f64, bool)>> = vec![HashMap::new(); n];
    for i in 0..n {
        let node = tree.node(tree.id(i));
        let children: Vec<usize> = node.children().iter().map(|ch| ch.index()).collect();
        // The controlled branch's subtree cost is ancestor-independent.
        let controlled_total = if star_cost[i].is_finite() {
            let mut v = star_cost[i] + stats[i].signal * clock_cap[i];
            for &ch in &children {
                v += cost[ch][&i].0;
            }
            v
        } else {
            f64::INFINITY
        };
        let cands = candidates[i].clone();
        for a in cands {
            let mut untied = domain_p(a) * clock_cap[i];
            for &ch in &children {
                untied += cost[ch][&a].0;
            }
            let entry = if controlled_total < untied {
                (controlled_total, true)
            } else {
                (untied, false)
            };
            cost[i].insert(a, entry);
        }
    }

    // Pass 3 (top-down): reconstruct the optimal mask.
    let mut mask = vec![false; n];
    let mut chosen_domain = vec![SOURCE; n];
    for i in (0..n).rev() {
        let a = chosen_domain[i];
        let (_, controlled) = cost[i][&a];
        mask[i] = controlled;
        let next = if controlled { i } else { a };
        for &ch in tree.node(tree.id(i)).children() {
            chosen_domain[ch.index()] = next;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        evaluate_with_mask, reduce_gates_untied, route_gated, ReductionParams, RouterConfig,
    };
    use gcr_activity::{ActivityTables, CpuModel};
    use gcr_cts::Sink;
    use gcr_geometry::{BBox, Point};

    fn setup(n: usize, seed: u64) -> (GatedRouting, RouterConfig) {
        let side = 20_000.0;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new((i as f64 * 6151.0) % side, (i as f64 * 9011.0) % side),
                    0.04,
                )
            })
            .collect();
        let model = CpuModel::builder(n)
            .instructions(8)
            .groups(4)
            .seed(seed)
            .build()
            .unwrap();
        let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(3_000));
        let die = BBox::new(Point::ORIGIN, Point::new(side, side));
        let config = RouterConfig::new(Technology::default(), die);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        (routing, config)
    }

    /// The DP optimum is never worse than any heuristic strength — and
    /// never worse than keeping or dropping everything.
    #[test]
    fn dp_dominates_the_heuristic_rules() {
        let tech = Technology::default();
        for seed in [3u64, 11, 29] {
            let (routing, config) = setup(24, seed);
            let eval = |mask: &[bool]| {
                evaluate_with_mask(
                    &routing.tree,
                    &routing.node_stats,
                    config.controller(),
                    &tech,
                    mask,
                )
                .total_switched_cap
            };
            let optimal = reduce_gates_optimal(&routing, &tech, config.controller());
            let opt_cost = eval(&optimal);
            let star = config.die().half_perimeter() / 8.0;
            for s in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
                let mask = reduce_gates_untied(
                    &routing,
                    &tech,
                    &ReductionParams::from_strength_scaled(s, &tech, star),
                );
                assert!(
                    opt_cost <= eval(&mask) + 1e-9,
                    "seed {seed}: DP {opt_cost} worse than heuristic s={s} ({})",
                    eval(&mask)
                );
            }
            assert!(opt_cost <= eval(&vec![true; routing.tree.len()]) + 1e-9);
            assert!(opt_cost <= eval(&vec![false; routing.tree.len()]) + 1e-9);
        }
    }

    /// Exhaustive verification on tiny trees: the DP equals brute force
    /// over all 2^(2N-1) masks.
    #[test]
    fn dp_matches_brute_force_on_tiny_trees() {
        let tech = Technology::default();
        for seed in [5u64, 7] {
            let (routing, config) = setup(4, seed);
            let n = routing.tree.len(); // 7 nodes -> 128 masks
            let eval = |mask: &[bool]| {
                evaluate_with_mask(
                    &routing.tree,
                    &routing.node_stats,
                    config.controller(),
                    &tech,
                    mask,
                )
                .total_switched_cap
            };
            let mut best = f64::INFINITY;
            for bits in 0u32..(1 << n) {
                let mask: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
                best = best.min(eval(&mask));
            }
            let dp = eval(&reduce_gates_optimal(&routing, &tech, config.controller()));
            assert!(
                (dp - best).abs() < 1e-9,
                "seed {seed}: DP {dp} vs brute force {best}"
            );
        }
    }

    /// The root's enable has P = 1 and a zero-length star wire — the DP
    /// must never pay a positive star cost for a domain that is already 1.
    #[test]
    fn dp_unties_useless_always_on_gates() {
        let tech = Technology::default();
        let (routing, config) = setup(16, 13);
        let mask = reduce_gates_optimal(&routing, &tech, config.controller());
        let root = routing.tree.root().index();
        if routing.node_stats[root].signal >= 1.0 - 1e-12
            && routing.node_stats[root].transition > 0.0
        {
            assert!(!mask[root], "controlled root gate with P=1 saves nothing");
        }
    }

    /// Deterministic across runs.
    #[test]
    fn dp_is_deterministic() {
        let tech = Technology::default();
        let (routing, config) = setup(20, 41);
        let a = reduce_gates_optimal(&routing, &tech, config.controller());
        let b = reduce_gates_optimal(&routing, &tech, config.controller());
        assert_eq!(a, b);
    }
}
