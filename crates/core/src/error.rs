use std::error::Error;
use std::fmt;

use gcr_cts::CtsError;

/// Errors produced by the gated clock router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The sink list and the activity model disagree on the module count
    /// (sink `i` must be module `i`).
    SinkModuleMismatch {
        /// Number of sinks supplied.
        sinks: usize,
        /// Number of modules in the activity model.
        modules: usize,
    },
    /// An underlying clock-tree-synthesis failure.
    Cts(CtsError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SinkModuleMismatch { sinks, modules } => write!(
                f,
                "sink list has {sinks} entries but the activity model covers {modules} modules"
            ),
            RouteError::Cts(e) => write!(f, "clock tree synthesis failed: {e}"),
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouteError::Cts(e) => Some(e),
            RouteError::SinkModuleMismatch { .. } => None,
        }
    }
}

impl From<CtsError> for RouteError {
    fn from(e: CtsError) -> Self {
        RouteError::Cts(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RouteError::SinkModuleMismatch {
            sinks: 4,
            modules: 6,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('6'));
        assert!(e.source().is_none());
        let c: RouteError = CtsError::NoSinks.into();
        assert!(c.source().is_some());
        assert!(c.to_string().contains("sink"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<RouteError>();
    }
}
