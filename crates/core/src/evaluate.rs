use std::fmt;

use gcr_activity::EnableStats;
use gcr_cts::ClockTree;
use gcr_rctree::Technology;

use crate::ControllerPlan;

/// How the devices in a tree behave for power accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceRole {
    /// Masking AND gates: edges below a gate switch with `P(EN)`, and each
    /// gate needs an enable wire from its controller (switching with
    /// `P_tr(EN)`).
    Gate,
    /// Plain buffers: everything switches every cycle and no control
    /// routing exists (the §5.1 baseline).
    Buffer,
}

/// The switched-capacitance and area report of §5 — the quantities plotted
/// in Figures 3, 4 and 5.
///
/// All capacitances are in pF (per-cycle switching probability already
/// folded in), lengths in layout units, areas in λ².
#[derive(Clone, Debug, PartialEq)]
pub struct PowerReport {
    /// `W(T)` — switched capacitance of the clock tree (wires, sink loads,
    /// gate input pins), Equation (2) summed over the tree.
    pub clock_switched_cap: f64,
    /// `W(S)` — switched capacitance of the controller star routing.
    pub control_switched_cap: f64,
    /// `W = W(T) + W(S)`, the paper's objective.
    pub total_switched_cap: f64,
    /// Total electrical clock wire length.
    pub clock_wire_length: f64,
    /// Total enable star wire length.
    pub control_wire_length: f64,
    /// Clock wiring area.
    pub clock_wire_area: f64,
    /// Control wiring area.
    pub control_wire_area: f64,
    /// Total device (gate/buffer) area.
    pub device_area: f64,
    /// Clock + control + device area.
    pub total_area: f64,
    /// Number of devices in the tree.
    pub num_devices: usize,
    /// Elmore skew across sinks (ps) — should be ≈ 0.
    pub skew: f64,
    /// Source-to-sink Elmore delay (ps).
    pub delay: f64,
}

impl PowerReport {
    /// Dissipated power in µW at the technology's clock and supply.
    #[must_use]
    pub fn power_uw(&self, tech: &Technology) -> f64 {
        tech.power_uw(self.total_switched_cap)
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "W(T)={:.3}pF W(S)={:.3}pF total={:.3}pF area={:.3}Mλ² gates={}",
            self.clock_switched_cap,
            self.control_switched_cap,
            self.total_switched_cap,
            self.total_area / 1e6,
            self.num_devices
        )
    }
}

/// Evaluates the switched capacitance and area of an embedded clock tree
/// (§2's `W = W(T) + W(S)` plus the area accounting of §5).
///
/// `node_stats[i]` must hold the enable statistics of topology node `i`
/// (`EnableStats::ALWAYS_ON` everywhere reproduces an ungated/buffered
/// tree). Under [`DeviceRole::Gate`], a wire switches with the signal
/// probability of the nearest gate at-or-above it, and every gate
/// contributes an enable star wire weighted by its transition
/// probability; under [`DeviceRole::Buffer`] everything switches each
/// cycle and no control routing exists.
///
/// # Panics
///
/// Panics if `node_stats.len() != tree.len()`.
#[must_use]
pub fn evaluate(
    tree: &ClockTree,
    node_stats: &[EnableStats],
    controller: &ControllerPlan,
    tech: &Technology,
    role: DeviceRole,
) -> PowerReport {
    evaluate_traced(
        tree,
        node_stats,
        controller,
        tech,
        role,
        &gcr_trace::Tracer::disabled(),
    )
}

/// As [`evaluate`], reporting the Equation-3 evaluation through `tracer`
/// (span `evaluate.equation3` plus `evaluate.*` result counters).
///
/// # Panics
///
/// As [`evaluate`].
#[must_use]
pub fn evaluate_traced(
    tree: &ClockTree,
    node_stats: &[EnableStats],
    controller: &ControllerPlan,
    tech: &Technology,
    role: DeviceRole,
    tracer: &gcr_trace::Tracer,
) -> PowerReport {
    let controlled = match role {
        DeviceRole::Gate => vec![true; tree.len()],
        DeviceRole::Buffer => vec![false; tree.len()],
    };
    evaluate_with_mask_traced(tree, node_stats, controller, tech, &controlled, tracer)
}

/// As [`evaluate`], but with per-edge control: `controlled[i]` says whether
/// the device on edge `i` (if any) is an *enabled masking gate* — wired to
/// the controller and gating its subtree — or an always-on buffer (an AND
/// gate with its enable tied high). The §4.3 gate-reduction heuristic in
/// untie mode produces exactly such masks: reduced gates stay in place
/// electrically but lose their enable wire.
///
/// # Panics
///
/// Panics if `node_stats` or `controlled` do not cover every tree node.
#[must_use]
pub fn evaluate_with_mask(
    tree: &ClockTree,
    node_stats: &[EnableStats],
    controller: &ControllerPlan,
    tech: &Technology,
    controlled: &[bool],
) -> PowerReport {
    evaluate_with_mask_traced(
        tree,
        node_stats,
        controller,
        tech,
        controlled,
        &gcr_trace::Tracer::disabled(),
    )
}

/// As [`evaluate_with_mask`], reporting the evaluation through `tracer`
/// (same spans as [`evaluate_traced`]).
///
/// # Panics
///
/// As [`evaluate_with_mask`].
#[must_use]
pub fn evaluate_with_mask_traced(
    tree: &ClockTree,
    node_stats: &[EnableStats],
    controller: &ControllerPlan,
    tech: &Technology,
    controlled: &[bool],
    tracer: &gcr_trace::Tracer,
) -> PowerReport {
    let _span = tracer.span("evaluate.equation3");
    assert_eq!(
        node_stats.len(),
        tree.len(),
        "stats must cover every tree node"
    );
    assert_eq!(
        controlled.len(),
        tree.len(),
        "controlled mask must cover every tree node"
    );
    let c = tech.unit_cap();
    let n = tree.len();

    // The switching probability of each node's wire: the signal
    // probability of the nearest masking gate at-or-above the wire.
    let mut domain = vec![1.0f64; n];
    for idx in (0..n).rev() {
        let id = tree.id(idx);
        let node = tree.node(id);
        let gated_here = controlled[idx] && node.device().is_some();
        domain[idx] = if gated_here {
            node_stats[idx].signal
        } else {
            match node.parent() {
                Some(p) => domain[p.index()],
                None => 1.0,
            }
        };
    }

    let mut clock_cap = 0.0;
    for (idx, &dom) in domain.iter().enumerate() {
        let id = tree.id(idx);
        let node = tree.node(id);
        // Wire of this edge plus the sink load at its foot…
        let mut cap_here = c * node.electrical_length();
        if let Some(s) = node.sink() {
            cap_here += tree.sink_cap(s);
        }
        // …plus the input pins of the children's edge devices, which hang
        // at this node (before the children's gates).
        for &ch in node.children() {
            if let Some(d) = tree.node(ch).device() {
                cap_here += d.input_cap();
            }
        }
        clock_cap += dom * cap_here;
    }
    // The root's own device input pin is driven by the free-running source.
    if let Some(d) = tree.node(tree.root()).device() {
        clock_cap += d.input_cap();
    }

    let mut control_cap = 0.0;
    let mut control_len = 0.0;
    let mut device_area = 0.0;
    for (id, d) in tree.devices() {
        device_area += d.area();
        if controlled[id.index()] {
            let len = controller.enable_wire_length(tree.gate_location(id));
            control_len += len;
            control_cap +=
                (tech.control_unit_cap() * len + d.input_cap()) * node_stats[id.index()].transition;
        }
    }

    let clock_len = tree.total_wire_length();
    let clock_wire_area = tech.wire_area(clock_len);
    let control_wire_area = tech.control_wire_area(control_len);
    let (rc, sinks) = tree.to_rc_tree(tech);
    let analysis = rc.analyze();

    tracer.counter("evaluate.clock_switched_cap", clock_cap);
    tracer.counter("evaluate.control_switched_cap", control_cap);
    tracer.counter("evaluate.total_switched_cap", clock_cap + control_cap);
    tracer.counter("evaluate.num_devices", tree.device_count() as f64);

    PowerReport {
        clock_switched_cap: clock_cap,
        control_switched_cap: control_cap,
        total_switched_cap: clock_cap + control_cap,
        clock_wire_length: clock_len,
        control_wire_length: control_len,
        clock_wire_area,
        control_wire_area,
        device_area,
        total_area: clock_wire_area + control_wire_area + device_area,
        num_devices: tree.device_count(),
        skew: analysis.skew(&sinks),
        delay: analysis.max_arrival(&sinks),
    }
}

/// Switched capacitance attributed to one tree depth by
/// [`evaluate_breakdown`].
#[derive(Clone, Debug, PartialEq)]
pub struct LevelBreakdown {
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Edges at this depth.
    pub nodes: usize,
    /// Clock-tree switched capacitance of this depth (pF).
    pub clock_switched_cap: f64,
    /// Controller-tree switched capacitance of this depth (pF).
    pub control_switched_cap: f64,
}

/// Splits the switched capacitance of [`evaluate_with_mask`] by tree
/// depth — "where the power goes": trunk edges near the root switch at
/// P ≈ 1 but are few; leaf edges are many but well gated.
///
/// The per-depth rows sum exactly to the totals of the corresponding
/// [`evaluate_with_mask`] report (the root device's source-side pin is
/// attributed to depth 0).
///
/// # Panics
///
/// Panics if `node_stats` or `controlled` do not cover every tree node.
#[must_use]
pub fn evaluate_breakdown(
    tree: &ClockTree,
    node_stats: &[EnableStats],
    controller: &ControllerPlan,
    tech: &Technology,
    controlled: &[bool],
) -> Vec<LevelBreakdown> {
    assert_eq!(
        node_stats.len(),
        tree.len(),
        "stats must cover every tree node"
    );
    assert_eq!(
        controlled.len(),
        tree.len(),
        "controlled mask must cover every tree node"
    );
    let c = tech.unit_cap();
    let n = tree.len();

    // Depths and domains, root-down.
    let mut depth = vec![0usize; n];
    let mut domain = vec![1.0f64; n];
    for idx in (0..n).rev() {
        let id = tree.id(idx);
        let node = tree.node(id);
        if let Some(p) = node.parent() {
            depth[idx] = depth[p.index()] + 1;
        }
        let gated_here = controlled[idx] && node.device().is_some();
        domain[idx] = if gated_here {
            node_stats[idx].signal
        } else {
            match node.parent() {
                Some(p) => domain[p.index()],
                None => 1.0,
            }
        };
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut rows: Vec<LevelBreakdown> = (0..=max_depth)
        .map(|d| LevelBreakdown {
            depth: d,
            nodes: 0,
            clock_switched_cap: 0.0,
            control_switched_cap: 0.0,
        })
        .collect();

    for idx in 0..n {
        let id = tree.id(idx);
        let node = tree.node(id);
        let mut cap_here = c * node.electrical_length();
        if let Some(s) = node.sink() {
            cap_here += tree.sink_cap(s);
        }
        for &ch in node.children() {
            if let Some(d) = tree.node(ch).device() {
                cap_here += d.input_cap();
            }
        }
        let row = &mut rows[depth[idx]];
        row.nodes += 1;
        row.clock_switched_cap += domain[idx] * cap_here;
        if controlled[idx] {
            if let Some(d) = node.device() {
                let len = controller.enable_wire_length(tree.gate_location(id));
                row.control_switched_cap +=
                    (tech.control_unit_cap() * len + d.input_cap()) * node_stats[idx].transition;
            }
        }
    }
    // The root device's input pin switches on the free-running source side.
    if let Some(d) = tree.node(tree.root()).device() {
        rows[0].clock_switched_cap += d.input_cap();
    }
    rows
}

/// Evaluates a buffered (or plain) tree: always-on statistics, no control
/// routing — the paper's §5.1 baseline columns.
#[must_use]
pub fn evaluate_buffered(tree: &ClockTree, tech: &Technology) -> PowerReport {
    let stats = vec![EnableStats::ALWAYS_ON; tree.len()];
    let dummy = ControllerPlan::Centralized {
        location: gcr_geometry::Point::ORIGIN,
    };
    evaluate(tree, &stats, &dummy, tech, DeviceRole::Buffer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_cts::{build_buffered_tree, embed, DeviceAssignment, Sink, Topology};
    use gcr_geometry::{BBox, Point};

    fn sinks() -> Vec<Sink> {
        vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(2000.0, 0.0), 0.05),
            Sink::new(Point::new(0.0, 2000.0), 0.05),
            Sink::new(Point::new(2000.0, 2000.0), 0.05),
        ]
    }

    fn die() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0))
    }

    fn gated_tree(tech: &Technology) -> gcr_cts::ClockTree {
        let topo = Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        embed(
            &topo,
            &sinks(),
            tech,
            &DeviceAssignment::everywhere(&topo, tech.and_gate()),
            die().center(),
        )
        .unwrap()
    }

    fn uniform_stats(len: usize, signal: f64, transition: f64) -> Vec<EnableStats> {
        vec![EnableStats { signal, transition }; len]
    }

    #[test]
    fn buffered_report_counts_everything_once() {
        let tech = Technology::default();
        let tree = build_buffered_tree(&tech, &sinks(), die().center()).unwrap();
        let report = evaluate_buffered(&tree, &tech);
        assert_eq!(report.control_switched_cap, 0.0);
        assert_eq!(report.control_wire_length, 0.0);
        assert_eq!(report.num_devices, 7);
        // All wire cap + all sink loads + all buffer input caps except the
        // root's children... every buffer pin is counted exactly once.
        let expect =
            tech.wire_cap(tree.total_wire_length()) + 4.0 * 0.05 + 7.0 * tech.buffer().input_cap();
        assert!(
            (report.clock_switched_cap - expect).abs() < 1e-9,
            "got {}, expected {expect}",
            report.clock_switched_cap
        );
        assert!(report.skew < 1e-6);
        assert!(report.delay > 0.0);
        assert!(report.power_uw(&tech) > 0.0);
    }

    #[test]
    fn always_on_gated_equals_wire_total_like_buffered() {
        // With P = 1 everywhere, gating saves nothing on the clock tree.
        let tech = Technology::default();
        let tree = gated_tree(&tech);
        let stats = uniform_stats(tree.len(), 1.0, 0.0);
        let plan = ControllerPlan::centralized(&die());
        let report = evaluate(&tree, &stats, &plan, &tech, DeviceRole::Gate);
        let expect = tech.wire_cap(tree.total_wire_length())
            + 4.0 * 0.05
            + 7.0 * tech.and_gate().input_cap();
        assert!((report.clock_switched_cap - expect).abs() < 1e-9);
        // Zero transitions: control wires exist but never switch.
        assert_eq!(report.control_switched_cap, 0.0);
        assert!(report.control_wire_length > 0.0);
    }

    #[test]
    fn lower_activity_lowers_clock_cap() {
        let tech = Technology::default();
        let tree = gated_tree(&tech);
        let plan = ControllerPlan::centralized(&die());
        let hi = evaluate(
            &tree,
            &uniform_stats(tree.len(), 0.9, 0.0),
            &plan,
            &tech,
            DeviceRole::Gate,
        );
        let lo = evaluate(
            &tree,
            &uniform_stats(tree.len(), 0.3, 0.0),
            &plan,
            &tech,
            DeviceRole::Gate,
        );
        assert!(lo.clock_switched_cap < hi.clock_switched_cap);
    }

    #[test]
    fn transitions_charge_the_control_tree() {
        let tech = Technology::default();
        let tree = gated_tree(&tech);
        let plan = ControllerPlan::centralized(&die());
        let calm = evaluate(
            &tree,
            &uniform_stats(tree.len(), 0.5, 0.05),
            &plan,
            &tech,
            DeviceRole::Gate,
        );
        let busy = evaluate(
            &tree,
            &uniform_stats(tree.len(), 0.5, 0.5),
            &plan,
            &tech,
            DeviceRole::Gate,
        );
        assert!(busy.control_switched_cap > calm.control_switched_cap);
        assert_eq!(busy.clock_switched_cap, calm.clock_switched_cap);
        // Hand check: every gate wire has the same stats; control wires use
        // the (narrower) control-wire capacitance.
        let c_ctl = tech.control_unit_cap();
        let cg = tech.and_gate().input_cap();
        let expect: f64 = tree
            .devices()
            .map(|(id, _)| (c_ctl * plan.enable_wire_length(tree.gate_location(id)) + cg) * 0.5)
            .sum();
        assert!((busy.control_switched_cap - expect).abs() < 1e-9);
    }

    #[test]
    fn ungated_wires_inherit_parent_domain() {
        let tech = Technology::default();
        let topo = Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        // Gate only the two mid-level edges (nodes 4 and 5).
        let mut assignment = DeviceAssignment::none(&topo);
        assignment.set(4, Some(tech.and_gate()));
        assignment.set(5, Some(tech.and_gate()));
        let tree = embed(&topo, &sinks(), &tech, &assignment, die().center()).unwrap();
        let mut stats = uniform_stats(tree.len(), 1.0, 0.0);
        stats[4] = EnableStats {
            signal: 0.25,
            transition: 0.0,
        };
        stats[5] = EnableStats {
            signal: 0.75,
            transition: 0.0,
        };
        let plan = ControllerPlan::centralized(&die());
        let report = evaluate(&tree, &stats, &plan, &tech, DeviceRole::Gate);
        // Leaves 0, 1 live in node 4's domain (0.25); leaves 2, 3 in node
        // 5's (0.75); edges 4, 5 in their own; the root edge in domain 1.
        let c = tech.unit_cap();
        let e = |i: usize| tree.node(tree.id(i)).electrical_length();
        let cg = tech.and_gate().input_cap();
        let expect = 0.25 * (c * (e(0) + e(1)) + 0.10)
            + 0.75 * (c * (e(2) + e(3)) + 0.10)
            + 0.25 * (c * e(4))
            + 0.75 * (c * e(5))
            + 1.0 * (c * e(6) + 2.0 * cg);
        assert!(
            (report.clock_switched_cap - expect).abs() < 1e-9,
            "got {} expected {expect}",
            report.clock_switched_cap
        );
    }

    #[test]
    #[should_panic(expected = "stats must cover")]
    fn stats_length_mismatch_panics() {
        let tech = Technology::default();
        let tree = gated_tree(&tech);
        let plan = ControllerPlan::centralized(&die());
        let _ = evaluate(&tree, &[], &plan, &tech, DeviceRole::Gate);
    }

    #[test]
    fn display_is_nonempty() {
        let tech = Technology::default();
        let tree = gated_tree(&tech);
        let report = evaluate_buffered(&tree, &tech);
        assert!(format!("{report}").contains("W(T)"));
    }

    #[test]
    fn breakdown_sums_to_the_totals() {
        let tech = Technology::default();
        let tree = gated_tree(&tech);
        let stats = uniform_stats(tree.len(), 0.5, 0.2);
        let plan = ControllerPlan::centralized(&die());
        // A mixed mask.
        let mask: Vec<bool> = (0..tree.len()).map(|i| i % 2 == 0).collect();
        let total = evaluate_with_mask(&tree, &stats, &plan, &tech, &mask);
        let rows = evaluate_breakdown(&tree, &stats, &plan, &tech, &mask);
        let clock: f64 = rows.iter().map(|r| r.clock_switched_cap).sum();
        let control: f64 = rows.iter().map(|r| r.control_switched_cap).sum();
        let nodes: usize = rows.iter().map(|r| r.nodes).sum();
        assert!((clock - total.clock_switched_cap).abs() < 1e-12);
        assert!((control - total.control_switched_cap).abs() < 1e-12);
        assert_eq!(nodes, tree.len());
        // Balanced 4-sink tree: depths 0..2.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].nodes, 1);
        assert_eq!(rows[2].nodes, 4);
    }
}
