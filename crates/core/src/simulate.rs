use gcr_activity::{InstructionStream, ModuleSet, Rtl};
use gcr_cts::ClockTree;
use gcr_rctree::Technology;

use crate::ControllerPlan;

/// Window length (cycles) of [`SimulationReport::window_trace`].
pub const WINDOW: usize = 256;

/// Cycle-accurate energy accounting from replaying an instruction stream
/// through a gated clock tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulationReport {
    /// Cycles simulated.
    pub cycles: usize,
    /// Per-window average switched capacitance (clock + control, pF per
    /// cycle) over consecutive windows of [`WINDOW`] cycles — the
    /// power-over-time trace that makes program phases visible. The last
    /// window may be shorter.
    pub window_trace: Vec<f64>,
    /// Average clock-tree switched capacitance per cycle (pF) — the
    /// simulated counterpart of the analytic `W(T)`.
    pub clock_switched_cap: f64,
    /// Average controller-tree switched capacitance per cycle boundary
    /// (pF) — the simulated counterpart of `W(S)`.
    pub control_switched_cap: f64,
    /// Sum of the two.
    pub total_switched_cap: f64,
    /// Per-gate fraction of cycles its enable was on (diagnostics).
    pub enable_duty: Vec<f64>,
}

/// Replays `stream` cycle by cycle through the gated tree: each cycle the
/// executing instruction activates its modules, every enable becomes the
/// OR over its subtree, clock capacitance switches wherever the nearest
/// controlled gate at-or-above is enabled, and enable wires switch at
/// cycle boundaries where their value changes.
///
/// Because the analytic evaluator
/// ([`evaluate_with_mask`](crate::evaluate_with_mask)) weights the same
/// capacitances with probabilities *measured from the same stream*, the
/// simulated averages must equal the analytic report **exactly** (up to
/// f64 summation error) — the strongest possible end-to-end check of the
/// paper's probabilistic machinery, enforced in `tests/simulation.rs`.
///
/// `node_modules[i]` is the module set under topology node `i` and
/// `controlled[i]` whether the gate on edge `i` keeps its enable wire (as
/// produced by routing + reduction).
///
/// # Panics
///
/// Panics if the per-node vectors do not cover the tree or the stream is
/// over a different module universe.
#[must_use]
pub fn simulate_stream(
    tree: &ClockTree,
    node_modules: &[ModuleSet],
    controlled: &[bool],
    rtl: &Rtl,
    stream: &InstructionStream,
    controller: &ControllerPlan,
    tech: &Technology,
) -> SimulationReport {
    let n = tree.len();
    assert_eq!(node_modules.len(), n, "module sets must cover every node");
    assert_eq!(controlled.len(), n, "controlled mask must cover every node");
    let c = tech.unit_cap();

    // Static capacitance inventory per node (same decomposition as the
    // analytic evaluator): edge wire + sink load + children's gate pins.
    let cap_here: Vec<f64> = (0..n)
        .map(|i| {
            let node = tree.node(tree.id(i));
            let mut cap = c * node.electrical_length();
            if let Some(s) = node.sink() {
                cap += tree.sink_cap(s);
            }
            for &ch in node.children() {
                if let Some(d) = tree.node(ch).device() {
                    cap += d.input_cap();
                }
            }
            cap
        })
        .collect();
    let root_pin = tree
        .node(tree.root())
        .device()
        .map_or(0.0, |d| d.input_cap());

    // Control-wire capacitance per controlled gate.
    let star_cap: Vec<f64> = (0..n)
        .map(|i| {
            let id = tree.id(i);
            match (controlled[i], tree.node(id).device()) {
                (true, Some(d)) => {
                    let len = controller.enable_wire_length(tree.gate_location(id));
                    tech.control_unit_cap() * len + d.input_cap()
                }
                _ => 0.0,
            }
        })
        .collect();

    let mut clock_energy = 0.0f64;
    let mut control_energy = 0.0f64;
    let mut on_cycles = vec![0usize; n];
    let mut prev_enable: Option<Vec<bool>> = None;
    let mut window_trace = Vec::with_capacity(stream.len().div_ceil(WINDOW));
    let mut window_energy = 0.0f64;
    let mut window_cycles = 0usize;

    for &instr in stream.instructions() {
        // Enable of every node: does the instruction touch its subtree?
        let enables: Vec<bool> = (0..n)
            .map(|i| rtl.activates(instr, &node_modules[i]))
            .collect();
        // Domain per node: nearest controlled gate at-or-above is on.
        // Root-to-leaf order = descending index.
        let mut live = vec![true; n];
        for i in (0..n).rev() {
            let id = tree.id(i);
            let node = tree.node(id);
            let gated_here = controlled[i] && node.device().is_some();
            let upstream = node.parent().is_none_or(|p| live[p.index()]);
            live[i] = if gated_here {
                // The gate only passes the clock when upstream delivers it
                // AND its own enable is on. Upstream of the root gate the
                // source always runs.
                upstream && enables[i]
            } else {
                upstream
            };
        }
        let mut cycle_energy = root_pin; // the source side always switches
        for i in 0..n {
            if live[i] {
                cycle_energy += cap_here[i];
            }
            if enables[i] {
                on_cycles[i] += 1;
            }
        }
        clock_energy += cycle_energy;
        if let Some(prev) = &prev_enable {
            for i in 0..n {
                if star_cap[i] > 0.0 && prev[i] != enables[i] {
                    control_energy += star_cap[i];
                    cycle_energy += star_cap[i];
                }
            }
        }
        prev_enable = Some(enables);
        window_energy += cycle_energy;
        window_cycles += 1;
        if window_cycles == WINDOW {
            window_trace.push(window_energy / WINDOW as f64);
            window_energy = 0.0;
            window_cycles = 0;
        }
    }
    if window_cycles > 0 {
        window_trace.push(window_energy / window_cycles as f64);
    }

    let b = stream.len() as f64;
    let clock = clock_energy / b;
    let control = control_energy / (b - 1.0);
    SimulationReport {
        cycles: stream.len(),
        window_trace,
        clock_switched_cap: clock,
        control_switched_cap: control,
        total_switched_cap: clock + control,
        enable_duty: on_cycles.iter().map(|&k| k as f64 / b).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_with_mask, route_gated, RouterConfig};
    use gcr_activity::{ActivityTables, CpuModel};
    use gcr_cts::Sink;
    use gcr_geometry::{BBox, Point};

    #[test]
    fn simulation_matches_analytic_evaluation_exactly() {
        let tech = Technology::default();
        let n = 12;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new(
                        (i as f64 * 3571.0) % 15_000.0,
                        (i as f64 * 6619.0) % 15_000.0,
                    ),
                    0.04,
                )
            })
            .collect();
        let model = CpuModel::builder(n)
            .instructions(8)
            .groups(4)
            .seed(23)
            .build()
            .unwrap();
        let stream = model.generate_stream(3_000);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let die = BBox::new(Point::ORIGIN, Point::new(15_000.0, 15_000.0));
        let config = RouterConfig::new(tech.clone(), die);
        let routing = route_gated(&sinks, &tables, &config).unwrap();

        // Any control mask: here, gates on a third of the edges.
        let mask: Vec<bool> = (0..routing.tree.len()).map(|i| i % 3 == 0).collect();
        let analytic = evaluate_with_mask(
            &routing.tree,
            &routing.node_stats,
            config.controller(),
            &tech,
            &mask,
        );
        let simulated = simulate_stream(
            &routing.tree,
            &routing.node_modules,
            &mask,
            model.rtl(),
            &stream,
            config.controller(),
            &tech,
        );
        assert_eq!(simulated.cycles, 3_000);
        assert!(
            (simulated.clock_switched_cap - analytic.clock_switched_cap).abs() < 1e-9,
            "clock: simulated {} vs analytic {}",
            simulated.clock_switched_cap,
            analytic.clock_switched_cap
        );
        assert!(
            (simulated.control_switched_cap - analytic.control_switched_cap).abs() < 1e-9,
            "control: simulated {} vs analytic {}",
            simulated.control_switched_cap,
            analytic.control_switched_cap
        );
        // Enable duty equals the measured signal probabilities.
        for i in 0..routing.tree.len() {
            assert!(
                (simulated.enable_duty[i] - routing.node_stats[i].signal).abs() < 1e-12,
                "node {i} duty"
            );
        }
    }

    #[test]
    fn window_trace_covers_the_stream_and_shows_phases() {
        let tech = Technology::default();
        let n = 16;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                Sink::new(
                    Point::new((i % 4) as f64 * 3_000.0, (i / 4) as f64 * 3_000.0),
                    0.05,
                )
            })
            .collect();
        // Strongly phased workload: bursts of different instruction
        // classes produce visible power swings between windows.
        let model = CpuModel::builder(n)
            .instructions(8)
            .groups(4)
            .phases(2)
            .phase_length(600)
            .persistence(0.8)
            .seed(41)
            .build()
            .unwrap();
        let stream = model.generate_stream(4_000);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let die = BBox::new(Point::ORIGIN, Point::new(9_000.0, 9_000.0));
        let config = RouterConfig::new(tech.clone(), die);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let mask = vec![true; routing.tree.len()];
        let sim = simulate_stream(
            &routing.tree,
            &routing.node_modules,
            &mask,
            model.rtl(),
            &stream,
            config.controller(),
            &tech,
        );
        assert_eq!(sim.window_trace.len(), 4_000usize.div_ceil(super::WINDOW));
        // The window means average (weighted by window lengths) to the
        // overall mean.
        let full_windows = 4_000 / super::WINDOW;
        let rem = 4_000 % super::WINDOW;
        let weighted: f64 = sim.window_trace[..full_windows]
            .iter()
            .map(|w| w * super::WINDOW as f64)
            .sum::<f64>()
            + sim.window_trace.last().unwrap() * rem as f64;
        // Windows accumulate raw per-cycle energy / B, while the report's
        // control average uses the B−1 cycle boundaries.
        let expected =
            sim.clock_switched_cap + sim.control_switched_cap * (4_000.0 - 1.0) / 4_000.0;
        assert!(
            (weighted / 4_000.0 - expected).abs() < 1e-9,
            "windows {} vs expected {expected}",
            weighted / 4_000.0
        );
        // Phased activity makes the trace actually move.
        let lo = sim
            .window_trace
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = sim.window_trace.iter().copied().fold(0.0f64, f64::max);
        assert!(hi > lo * 1.05, "trace is flat: {lo}..{hi}");
    }

    #[test]
    fn fully_untied_simulation_is_all_cap_every_cycle() {
        let tech = Technology::default();
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(2_000.0, 0.0), 0.05),
            Sink::new(Point::new(0.0, 2_000.0), 0.05),
        ];
        let model = CpuModel::builder(3)
            .instructions(4)
            .seed(9)
            .build()
            .unwrap();
        let stream = model.generate_stream(200);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let die = BBox::new(Point::ORIGIN, Point::new(2_000.0, 2_000.0));
        let config = RouterConfig::new(tech.clone(), die);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let mask = vec![false; routing.tree.len()];
        let sim = simulate_stream(
            &routing.tree,
            &routing.node_modules,
            &mask,
            model.rtl(),
            &stream,
            config.controller(),
            &tech,
        );
        // Everything switches every cycle, nothing on the control side.
        let tree = &routing.tree;
        let mut inventory = tech.wire_cap(tree.total_wire_length());
        for i in 0..tree.num_sinks() {
            inventory += tree.sink_cap(i);
        }
        for (_, d) in tree.devices() {
            inventory += d.input_cap();
        }
        assert!((sim.clock_switched_cap - inventory).abs() < 1e-9);
        assert_eq!(sim.control_switched_cap, 0.0);
    }
}
