use gcr_cts::ClockTree;
use gcr_rctree::{Technology, TechnologyError};

/// Skew and delay of one process corner.
#[derive(Clone, Debug, PartialEq)]
pub struct CornerResult {
    /// Corner label, e.g. `"r+20% c-20%"`.
    pub name: String,
    /// Wire resistance scale applied.
    pub res_scale: f64,
    /// Wire capacitance scale applied.
    pub cap_scale: f64,
    /// Elmore skew across sinks at this corner (ps).
    pub skew: f64,
    /// Source-to-sink Elmore delay at this corner (ps).
    pub delay: f64,
}

/// Re-measures an embedded tree's skew and delay under wire process
/// corners: unit resistance and capacitance each scaled by ±`spread`
/// (devices keep their nominal parameters — interconnect and transistors
/// do not track each other across corners).
///
/// Wire delay terms scale uniformly with the corner, but fixed pin loads
/// (sinks, gate inputs) and device stage delays do not — so balanced
/// trees develop corner skew in proportion to how much non-wire delay
/// they contain. Gated trees, whose paths are mostly device stages, are
/// hit hardest; this quantifies the robustness cost of inserting gates —
/// a question the paper leaves open.
///
/// Returns the five corners (nominal plus the four extremes), nominal
/// first.
///
/// # Errors
///
/// Returns [`TechnologyError`] when the scaled parameters are invalid
/// (spread ≥ 1 would zero them out).
pub fn corner_analysis(
    tree: &ClockTree,
    tech: &Technology,
    spread: f64,
) -> Result<Vec<CornerResult>, TechnologyError> {
    let corners = [
        ("nominal", 1.0, 1.0),
        ("r+ c+", 1.0 + spread, 1.0 + spread),
        ("r+ c-", 1.0 + spread, 1.0 - spread),
        ("r- c+", 1.0 - spread, 1.0 + spread),
        ("r- c-", 1.0 - spread, 1.0 - spread),
    ];
    corners
        .iter()
        .map(|&(name, rs, cs)| {
            let corner_tech = Technology::builder()
                .unit_res(tech.unit_res() * rs)
                .unit_cap(tech.unit_cap() * cs)
                .wire_width(tech.wire_width())
                .control_unit_cap(tech.control_unit_cap() * cs)
                .control_wire_width(tech.control_wire_width())
                .and_gate(tech.and_gate())
                .buffer(tech.buffer())
                .source(tech.source())
                .supply_v(tech.supply_v())
                .clock_mhz(tech.clock_mhz())
                .build()?;
            let (rc, sinks) = tree.to_rc_tree(&corner_tech);
            let analysis = rc.analyze();
            Ok(CornerResult {
                name: format!("{name} ({rs:.2}, {cs:.2})"),
                res_scale: rs,
                cap_scale: cs,
                skew: analysis.skew(&sinks),
                delay: analysis.max_arrival(&sinks),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_cts::{embed, nearest_neighbor_topology, DeviceAssignment, Sink};
    use gcr_geometry::Point;

    fn sinks() -> Vec<Sink> {
        (0..10)
            .map(|i| {
                Sink::new(
                    Point::new(
                        (f64::from(i) * 4321.0) % 20_000.0,
                        (f64::from(i) * 8765.0) % 20_000.0,
                    ),
                    0.02 + 0.01 * f64::from(i % 4),
                )
            })
            .collect()
    }

    #[test]
    fn plain_tree_stays_zero_skew_at_all_corners() {
        let tech = Technology::default();
        let s = sinks();
        let topo = nearest_neighbor_topology(&tech, &s, None).unwrap();
        let tree = embed(
            &topo,
            &s,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(10_000.0, 10_000.0),
        )
        .unwrap();
        let corners = corner_analysis(&tree, &tech, 0.2).unwrap();
        assert_eq!(corners.len(), 5);
        // Nominal is exactly balanced.
        assert!(corners[0].skew <= 1e-9 * corners[0].delay.max(1.0));
        for c in &corners {
            // Wire terms scale uniformly but the fixed sink-pin loads do
            // not, so a small residual corner skew is physical; it must
            // stay a sliver of the total delay.
            assert!(
                c.skew <= 0.02 * c.delay.max(1.0),
                "{}: skew {} at delay {}",
                c.name,
                c.skew,
                c.delay
            );
        }
        // Delay itself does move with the corner.
        assert!(corners[1].delay > corners[0].delay);
        assert!(corners[4].delay < corners[0].delay);
    }

    #[test]
    fn gated_tree_develops_corner_skew() {
        let tech = Technology::default();
        let s = sinks();
        let topo = nearest_neighbor_topology(&tech, &s, Some(tech.and_gate())).unwrap();
        let tree = embed(
            &topo,
            &s,
            &tech,
            &DeviceAssignment::everywhere(&topo, tech.and_gate()),
            Point::new(10_000.0, 10_000.0),
        )
        .unwrap();
        let corners = corner_analysis(&tree, &tech, 0.2).unwrap();
        // Nominal is zero-skew…
        assert!(corners[0].skew <= 1e-9 * corners[0].delay.max(1.0));
        // …but the extremes are not: wires moved, gate stages did not.
        let worst = corners[1..].iter().map(|c| c.skew).fold(0.0f64, f64::max);
        assert!(
            worst > corners[0].skew + 1e-6,
            "gated tree shows no corner skew at all ({worst})"
        );
        // Still bounded well below the total delay.
        for c in &corners {
            assert!(c.skew < 0.25 * c.delay, "{}: runaway skew", c.name);
        }
    }

    #[test]
    fn invalid_spread_is_rejected() {
        let tech = Technology::default();
        let s = sinks();
        let topo = nearest_neighbor_topology(&tech, &s, None).unwrap();
        let tree = embed(
            &topo,
            &s,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::ORIGIN,
        )
        .unwrap();
        assert!(corner_analysis(&tree, &tech, 1.0).is_err());
    }
}
