use gcr_cts::DeviceAssignment;
use gcr_rctree::Technology;

use crate::GatedRouting;

/// Thresholds of the §4.3 gate-reduction heuristic.
///
/// A gate on edge `e_i` is *removed* when any rule fires (a zero threshold
/// disables its rule):
///
/// * **R1** — the node is almost always active: `P(EN_i) ≥ 1 − activity`;
/// * **R2** — the switched capacitance the gate masks is negligible: the
///   *subtree* capacitance below the gate (wires, loads, and device pins),
///   weighted by `P(EN_i)`, is `≤ cap` (pF);
/// * **R3** — the parent is barely more active:
///   `P(EN_parent) − P(EN_i) ≤ similarity`.
///
/// Removal is then vetoed by the **forced-insertion rule**: walking
/// top-down, whenever the unmasked capacitance accumulated since the last
/// surviving gate reaches `forced_cap_multiple · C_g`, the gate is put
/// back — "a rule for enforcing a gate insertion … whenever the subtree
/// capacitance of the node reaches, say `γ·C_g`".
///
/// ```
/// use gcr_core::ReductionParams;
/// use gcr_rctree::Technology;
///
/// let tech = Technology::default();
/// let off = ReductionParams::from_strength(0.0, &tech);
/// assert_eq!(off.activity_threshold, 0.0); // all rules disabled
/// let strong = ReductionParams::from_strength(1.0, &tech);
/// assert!(strong.activity_threshold > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReductionParams {
    /// R1 threshold on `1 − P(EN_i)`; 0 disables.
    pub activity_threshold: f64,
    /// R2 threshold on the edge's switched capacitance (pF); 0 disables.
    pub cap_threshold: f64,
    /// R3 threshold on `P(EN_parent) − P(EN_i)`; 0 disables.
    pub similarity_threshold: f64,
    /// Forced re-insertion when the unmasked capacitance since the last
    /// gate reaches this many gate input capacitances; 0 disables the
    /// veto.
    pub forced_cap_multiple: f64,
}

impl ReductionParams {
    /// No reduction: every gate stays.
    #[must_use]
    pub fn none() -> Self {
        Self {
            activity_threshold: 0.0,
            cap_threshold: 0.0,
            similarity_threshold: 0.0,
            forced_cap_multiple: 0.0,
        }
    }

    /// A single-knob parameterization used for the Fig. 5 sweep: strength
    /// 0 keeps every gate, strength 1 applies the rules aggressively
    /// (forced insertion still bounds the damage).
    ///
    /// # Panics
    ///
    /// Panics if `strength` is outside `[0, 1]`.
    #[must_use]
    pub fn from_strength(strength: f64, tech: &Technology) -> Self {
        assert!(
            (0.0..=1.0).contains(&strength),
            "reduction strength must be in [0, 1], got {strength}"
        );
        let c_g = tech.and_gate().input_cap();
        Self {
            activity_threshold: strength,
            cap_threshold: 2.0 * c_g * strength,
            similarity_threshold: 0.35 * strength,
            // Fixed γ: however aggressive the rules, a gate returns
            // whenever γ·C_g of capacitance has gone unmasked — the
            // paper's guard against runaway phase delay.
            forced_cap_multiple: 40.0,
        }
    }

    /// As [`Self::from_strength`], with the R2 threshold scaled to the
    /// cost of a typical enable wire (`star_len` layout units of control
    /// wire plus the gate's enable pin): a gate masking less capacitance
    /// than its own star wire carries is pure overhead. Pass
    /// `die.half_perimeter() / 8.0` (= D/4 for a square die, the paper's
    /// average star-edge estimate) for `star_len`.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is outside `[0, 1]` or `star_len` is negative
    /// or non-finite.
    #[must_use]
    pub fn from_strength_scaled(strength: f64, tech: &Technology, star_len: f64) -> Self {
        assert!(
            star_len.is_finite() && star_len >= 0.0,
            "star length must be finite and >= 0, got {star_len}"
        );
        let star_cap = tech.control_unit_cap() * star_len + tech.and_gate().input_cap();
        Self {
            cap_threshold: strength * star_cap,
            ..Self::from_strength(strength, tech)
        }
    }
}

impl Default for ReductionParams {
    fn default() -> Self {
        Self::none()
    }
}

/// Applies the §4.3 gate-reduction rules to a fully gated routing,
/// producing the sparser device assignment for **physical removal**:
/// re-embed it with [`GatedRouting::reembed`] to restore zero skew (wire
/// lengths change — removing a gate stage must be re-balanced).
///
/// Physical removal trades control routing against re-balancing wire; the
/// cheaper and usually better option is [`reduce_gates_untied`], which
/// ties the reduced gates' enables high instead. Both share the same
/// R1/R2/R3 + forced-insertion rules.
#[must_use]
pub fn reduce_gates(
    routing: &GatedRouting,
    tech: &Technology,
    params: &ReductionParams,
) -> DeviceAssignment {
    let keep = keep_mask(routing, tech, params);
    let mut assignment = routing.assignment.clone();
    for (i, &k) in keep.iter().enumerate() {
        if !k {
            assignment.set(i, None);
        }
    }
    assignment
}

/// Applies the §4.3 gate-reduction rules in **untie mode**: reduced gates
/// stay in the tree as always-on buffers (an AND gate with its enable tied
/// high), so the embedding — and the zero skew — are untouched, while the
/// enable star wire and its switching disappear.
///
/// Because the gates remain electrically, the forced-insertion veto (a
/// guard against un-buffered RC paths and runaway phase delay) has nothing
/// to protect and is skipped.
///
/// Returns the `controlled` mask for
/// [`evaluate_with_mask`](crate::evaluate_with_mask): `true` where the
/// gate keeps its controller connection.
///
/// ```
/// use gcr_activity::{ActivityTables, CpuModel};
/// use gcr_core::{
///     evaluate_with_mask, reduce_gates_untied, route_gated, ReductionParams, RouterConfig,
/// };
/// use gcr_cts::Sink;
/// use gcr_geometry::{BBox, Point};
/// use gcr_rctree::Technology;
///
/// let sinks: Vec<Sink> = (0..6)
///     .map(|i| Sink::new(Point::new(i as f64 * 2_000.0, 500.0), 0.05))
///     .collect();
/// let cpu = CpuModel::builder(6).instructions(6).seed(3).build()?;
/// let tables = ActivityTables::scan(cpu.rtl(), &cpu.generate_stream(1_000));
/// let die = BBox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 1_000.0));
/// let config = RouterConfig::new(Technology::default(), die);
/// let routing = route_gated(&sinks, &tables, &config)?;
///
/// let tech = config.tech();
/// let mask = reduce_gates_untied(
///     &routing,
///     tech,
///     &ReductionParams::from_strength_scaled(0.3, tech, die.half_perimeter() / 8.0),
/// );
/// let report = evaluate_with_mask(
///     &routing.tree, &routing.node_stats, config.controller(), tech, &mask,
/// );
/// // Some controls survive, some were untied; the tree is untouched.
/// assert!(mask.iter().filter(|&&k| k).count() <= routing.tree.device_count());
/// assert!(report.total_switched_cap > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn reduce_gates_untied(
    routing: &GatedRouting,
    tech: &Technology,
    params: &ReductionParams,
) -> Vec<bool> {
    let untied = ReductionParams {
        forced_cap_multiple: 0.0,
        ..*params
    };
    keep_mask(routing, tech, &untied)
}

/// The shared R1/R2/R3 + forced-insertion decision: which edges keep a
/// *controlled* masking gate.
fn keep_mask(routing: &GatedRouting, tech: &Technology, params: &ReductionParams) -> Vec<bool> {
    let tree = &routing.tree;
    let stats = &routing.node_stats;
    let n = tree.len();
    let c = tech.unit_cap();
    let c_g = tech.and_gate().input_cap();
    let parents = routing.topology.parents();

    // The node capacitance C_i under full gating: sink load at leaves,
    // two child-gate input pins at internal nodes.
    let node_cap = |i: usize| -> f64 {
        let node = tree.node(tree.id(i));
        match node.sink() {
            Some(s) => tree.sink_cap(s),
            None => 2.0 * c_g,
        }
    };

    // The capacitance a gate on edge i masks: everything below the gate —
    // its own edge wire plus the full subtree (wires, loads, device pins).
    let mut subtree_cap = vec![0.0f64; n];
    for i in 0..n {
        let node = tree.node(tree.id(i));
        let mut cap = c * node.electrical_length();
        cap += match node.sink() {
            Some(s) => tree.sink_cap(s),
            None => 0.0,
        };
        for &ch in node.children() {
            cap += subtree_cap[ch.index()];
            if let Some(d) = tree.node(ch).device() {
                cap += d.input_cap();
            }
        }
        subtree_cap[i] = cap;
    }

    // Phase 1: mark removals by R1 / R2 / R3.
    let mut keep = vec![true; n];
    for i in 0..n {
        let p_en = stats[i].signal;
        let r1 = params.activity_threshold > 0.0 && p_en >= 1.0 - params.activity_threshold;
        let r2 = params.cap_threshold > 0.0 && subtree_cap[i] * p_en <= params.cap_threshold;
        let r3 = params.similarity_threshold > 0.0
            && parents[i]
                .map(|p| stats[p].signal - p_en <= params.similarity_threshold)
                .unwrap_or(false);
        if r1 || r2 || r3 {
            keep[i] = false;
        }
    }

    // Phase 2: forced insertion, top-down. `acc[i]` is the capacitance
    // left unmasked since the nearest surviving gate above node i.
    if params.forced_cap_multiple > 0.0 {
        let limit = params.forced_cap_multiple * c_g;
        let mut acc = vec![0.0f64; n];
        for i in (0..n).rev() {
            let upstream = parents[i].map(|p| acc[p]).unwrap_or(0.0);
            let own = c * tree.node(tree.id(i)).electrical_length() + node_cap(i);
            let mut total = if keep[i] { own } else { upstream + own };
            if !keep[i] && total >= limit {
                keep[i] = true;
                total = own;
            }
            acc[i] = total;
        }
    }

    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route_gated, RouterConfig};
    use gcr_activity::{ActivityTables, CpuModel};
    use gcr_cts::Sink;
    use gcr_geometry::{BBox, Point};

    fn routing(n: usize) -> (Vec<Sink>, GatedRouting, RouterConfig, ActivityTables) {
        let side = 20_000.0;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                let x = (i as f64 * 7919.0) % side;
                let y = (i as f64 * 4973.0) % side;
                Sink::new(Point::new(x, y), 0.04)
            })
            .collect();
        let model = CpuModel::builder(n)
            .instructions(10)
            .usage_fraction(0.4)
            .seed(17)
            .build()
            .unwrap();
        let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(4_000));
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(side, side));
        let config = RouterConfig::new(Technology::default(), die);
        let r = route_gated(&sinks, &tables, &config).unwrap();
        (sinks, r, config, tables)
    }

    #[test]
    fn zero_strength_keeps_every_gate() {
        let tech = Technology::default();
        let (_, r, _, _) = routing(12);
        let a = reduce_gates(&r, &tech, &ReductionParams::none());
        assert_eq!(a.device_count(), r.assignment.device_count());
        let s0 = ReductionParams::from_strength(0.0, &tech);
        let a0 = reduce_gates(&r, &tech, &s0);
        assert_eq!(a0.device_count(), r.assignment.device_count());
    }

    #[test]
    fn stronger_reduction_removes_more_gates() {
        let tech = Technology::default();
        let (_, r, _, _) = routing(16);
        let count = |s: f64| {
            reduce_gates(&r, &tech, &ReductionParams::from_strength(s, &tech)).device_count()
        };
        let full = r.assignment.device_count();
        assert!(count(0.3) <= full);
        assert!(count(1.0) <= count(0.3));
        assert!(count(1.0) < full, "strength 1 must remove something");
    }

    #[test]
    fn r1_removes_always_on_gates() {
        let tech = Technology::default();
        let (_, r, _, _) = routing(12);
        let params = ReductionParams {
            activity_threshold: 0.05,
            cap_threshold: 0.0,
            similarity_threshold: 0.0,
            forced_cap_multiple: 0.0,
        };
        let a = reduce_gates(&r, &tech, &params);
        // The root's enable has P = 1, so its gate must be removed.
        assert!(a.get(r.topology.root()).is_none());
        // Any gate with low activity must survive.
        for i in 0..r.topology.len() {
            if r.node_stats[i].signal < 0.9 {
                assert!(a.get(i).is_some(), "low-activity gate {i} removed by R1");
            }
        }
    }

    #[test]
    fn r3_removes_gates_similar_to_parent() {
        let tech = Technology::default();
        let (_, r, _, _) = routing(12);
        let params = ReductionParams {
            activity_threshold: 0.0,
            cap_threshold: 0.0,
            similarity_threshold: 1.0, // everything is "similar"
            forced_cap_multiple: 0.0,
        };
        let a = reduce_gates(&r, &tech, &params);
        // Every node with a parent is removed; only the root survives.
        assert_eq!(a.device_count(), 1);
        assert!(a.get(r.topology.root()).is_some());
    }

    #[test]
    fn forced_insertion_bounds_unmasked_capacitance() {
        let tech = Technology::default();
        let (_, r, _, _) = routing(20);
        let aggressive = ReductionParams {
            activity_threshold: 1.0, // would remove every gate…
            cap_threshold: 0.0,
            similarity_threshold: 0.0,
            forced_cap_multiple: 10.0, // …but the veto puts some back
        };
        let a = reduce_gates(&r, &tech, &aggressive);
        assert!(a.device_count() > 0, "forced insertion must keep gates");
        let no_veto = ReductionParams {
            forced_cap_multiple: 0.0,
            ..aggressive
        };
        let b = reduce_gates(&r, &tech, &no_veto);
        assert_eq!(b.device_count(), 0);
        assert!(a.device_count() > b.device_count());
    }

    #[test]
    fn reduced_assignment_reembeds_zero_skew() {
        let tech = Technology::default();
        let (sinks, r, config, _) = routing(14);
        let a = reduce_gates(&r, &tech, &ReductionParams::from_strength(0.6, &tech));
        let reduced = r.reembed(&sinks, a, &config).unwrap();
        let delay = reduced.tree.source_to_sink_delay(&tech);
        assert!(reduced.tree.verify_skew(&tech) < 1e-9 * delay.max(1.0));
    }

    #[test]
    #[should_panic(expected = "strength")]
    fn out_of_range_strength_panics() {
        let _ = ReductionParams::from_strength(1.5, &Technology::default());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(ReductionParams::default(), ReductionParams::none());
    }
}
