use gcr_activity::{ActivityTables, EnableStats, ModuleSet};
use gcr_cts::{
    clone_preserving_capacity, embed_sized, embed_sized_traced, run_greedy_coarsened_traced,
    run_greedy_traced, ClockTree, CoarsenParams, CoarsenScratch, CtsError, DeviceAssignment,
    MergeArena, MergeObjective, Sink, SizingLimits, Topology, BOUND_LANES,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::{Device, Technology};
use gcr_trace::Tracer;

use crate::{merge_switched_cap, ControllerPlan, RouteError};

/// Configuration of the gated clock router: technology, die outline, clock
/// source location, and controller placement.
///
/// ```
/// use gcr_core::{ControllerPlan, RouterConfig};
/// use gcr_geometry::{BBox, Point};
/// use gcr_rctree::Technology;
///
/// let die = BBox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
/// let config = RouterConfig::new(Technology::default(), die)
///     .with_controller(ControllerPlan::distributed(die, 1));
/// assert_eq!(config.controller().num_controllers(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct RouterConfig {
    tech: Technology,
    die: BBox,
    source: Point,
    controller: ControllerPlan,
}

impl RouterConfig {
    /// Creates a configuration with the paper's defaults: clock source and
    /// a single centralized controller at the die center.
    #[must_use]
    pub fn new(tech: Technology, die: BBox) -> Self {
        Self {
            tech,
            die,
            source: die.center(),
            controller: ControllerPlan::centralized(&die),
        }
    }

    /// Overrides the controller placement (e.g. §6 distributed
    /// controllers).
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerPlan) -> Self {
        self.controller = controller;
        self
    }

    /// Overrides the clock source location (default: die center).
    #[must_use]
    pub fn with_source(mut self, source: Point) -> Self {
        self.source = source;
        self
    }

    /// The technology parameters.
    #[must_use]
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The die outline.
    #[must_use]
    pub fn die(&self) -> BBox {
        self.die
    }

    /// The clock source location.
    #[must_use]
    pub fn source(&self) -> Point {
        self.source
    }

    /// The controller placement.
    #[must_use]
    pub fn controller(&self) -> &ControllerPlan {
        &self.controller
    }
}

/// Yields the module indices stored in one flat bitset row (ascending).
pub(crate) fn row_modules(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(wi, &word)| {
        let mut bits = word;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            }
        })
    })
}

/// The Equation-3 merge objective: among all live subtree pairs, merge the
/// one whose new edges and enable wires add the least switched
/// capacitance.
///
/// Node state lives in struct-of-arrays form: geometry and Elmore
/// coefficients in a [`MergeArena`], Equation-3 aggregates (`P(EN)`,
/// `P_tr(EN)`, the merge-independent static term, node capacitance,
/// controller distance) in flat per-node vectors, and the activation /
/// module bitsets as fixed-width rows of flat matrices. Every buffer is
/// reserved for the full `2n − 1` node count up front, so the greedy loop
/// appends without reallocating.
///
/// Public so benchmarks and cross-validation can drive it through any of
/// the greedy engines (`run_greedy`, `run_greedy_exhaustive`,
/// `run_greedy_checked`); [`route_gated`] remains the intended high-level
/// entry point.
pub struct GatedObjective<'a> {
    tech: &'a Technology,
    gate: Device,
    controller: &'a ControllerPlan,
    tables: &'a ActivityTables,
    unit_cap: f64,
    /// Smallest leaf enable probability — partners in an unexplored grid
    /// ring can't switch less often than this.
    min_leaf_signal: f64,
    /// Smallest leaf static term (see [`Self::static_term`]).
    min_leaf_static: f64,
    num_modules: usize,
    /// Width (in `u64` words) of one row of `modules`.
    module_words: usize,
    /// Width (in instructions) of one row of `active`.
    instr: usize,
    /// Merging segments and Elmore coefficients, indexed by node.
    arena: MergeArena,
    /// `P(EN_i)` per node.
    signal: Vec<f64>,
    /// `P_tr(EN_i)` per node.
    transition: Vec<f64>,
    /// Cached merge-independent Equation-3 term per node.
    static_term: Vec<f64>,
    /// `C_i`: sink load for leaves, children's gate input caps otherwise.
    node_cap: Vec<f64>,
    /// Star-wire distance from the serving controller to the gate on this
    /// node's parent edge (gate location ≈ mid of ms).
    cp_dist: Vec<f64>,
    /// Row-major `len × instr` matrix: which instructions activate node i.
    active: Vec<bool>,
    /// Row-major `len × module_words` bitset matrix: modules under node i.
    modules: Vec<u64>,
}

impl Clone for GatedObjective<'_> {
    // Manual so the pre-reserved columns keep their spare capacity; a
    // derived clone would shrink them to `len` and the first merges after
    // the clone would reallocate every column.
    fn clone(&self) -> Self {
        Self {
            tech: self.tech,
            gate: self.gate,
            controller: self.controller,
            tables: self.tables,
            unit_cap: self.unit_cap,
            min_leaf_signal: self.min_leaf_signal,
            min_leaf_static: self.min_leaf_static,
            num_modules: self.num_modules,
            module_words: self.module_words,
            instr: self.instr,
            arena: self.arena.clone(),
            signal: clone_preserving_capacity(&self.signal),
            transition: clone_preserving_capacity(&self.transition),
            static_term: clone_preserving_capacity(&self.static_term),
            node_cap: clone_preserving_capacity(&self.node_cap),
            cp_dist: clone_preserving_capacity(&self.cp_dist),
            active: clone_preserving_capacity(&self.active),
            modules: clone_preserving_capacity(&self.modules),
        }
    }
}

impl<'a> GatedObjective<'a> {
    /// Builds the objective over `sinks`, where `module_of[i]` names the
    /// activity-model module gating sink `i`.
    ///
    /// # Panics
    ///
    /// Panics when `module_of` is shorter than `sinks` or references a
    /// module outside the activity model (the routing entry points
    /// validate this and return [`RouteError::SinkModuleMismatch`]).
    #[must_use]
    pub fn new(
        tech: &'a Technology,
        controller: &'a ControllerPlan,
        tables: &'a ActivityTables,
        sinks: &[Sink],
        module_of: &[usize],
    ) -> Self {
        let gate = tech.and_gate();
        let num_modules = tables.rtl().num_modules();
        let module_words = num_modules.div_ceil(64);
        let instr = tables.rtl().num_instructions();
        let capacity = sinks.len().saturating_mul(2).saturating_sub(1);
        let mut this = Self {
            tech,
            gate,
            controller,
            tables,
            unit_cap: tech.unit_cap(),
            min_leaf_signal: 0.0,
            min_leaf_static: 0.0,
            num_modules,
            module_words,
            instr,
            arena: MergeArena::new(tech, capacity),
            signal: Vec::with_capacity(capacity),
            transition: Vec::with_capacity(capacity),
            static_term: Vec::with_capacity(capacity),
            node_cap: Vec::with_capacity(capacity),
            cp_dist: Vec::with_capacity(capacity),
            active: Vec::with_capacity(capacity * instr),
            modules: Vec::with_capacity(capacity * module_words),
        };
        for (i, s) in sinks.iter().enumerate() {
            let mset = ModuleSet::with_modules(num_modules, [module_of[i]]);
            let act = tables.active_vector(&mset);
            let stats = tables.enable_stats_for_active(&act);
            this.arena.push_leaf(s, Some(gate));
            this.active.extend_from_slice(&act);
            let row = this.modules.len();
            this.modules.resize(row + module_words, 0);
            for m in mset.iter() {
                this.modules[row + m / 64] |= 1u64 << (m % 64);
            }
            this.push_stats(stats, s.cap(), controller.enable_wire_length(s.location()));
        }
        this.min_leaf_signal = this.signal.iter().copied().fold(f64::INFINITY, f64::min);
        this.min_leaf_static = this
            .static_term
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        this
    }

    /// Appends the scalar aggregates for a new node, caching its
    /// merge-independent Equation-3 term:
    /// `C_i · P(EN_i) + (c_ctl · cp_i + C_g) · P_tr(EN_i)`. Only the wire
    /// term `c · e_i · P(EN_i)` depends on the merge partner.
    fn push_stats(&mut self, stats: EnableStats, node_cap: f64, cp_dist: f64) {
        self.signal.push(stats.signal);
        self.transition.push(stats.transition);
        self.node_cap.push(node_cap);
        self.cp_dist.push(cp_dist);
        self.static_term.push(
            node_cap * stats.signal
                + (self.tech.control_unit_cap() * cp_dist + self.gate.input_cap())
                    * stats.transition,
        );
    }

    /// Rewinds the objective to its first `len` nodes, keeping every
    /// column's spare capacity. This is the warm-loop primitive of the
    /// incremental ECO engine: the leaf rows (and the cached
    /// `min_leaf_*` pruning floors, which depend only on leaves) stay
    /// priced while internal rows from a superseded search are dropped,
    /// so the next [`gcr_cts::apply_eco`] pass appends into the same
    /// storage without reallocating.
    ///
    /// Truncating at or above the current node count is a no-op.
    pub fn truncate(&mut self, len: usize) {
        self.arena.truncate(len);
        self.signal.truncate(len);
        self.transition.truncate(len);
        self.static_term.truncate(len);
        self.node_cap.truncate(len);
        self.cp_dist.truncate(len);
        self.active.truncate(len * self.instr);
        self.modules.truncate(len * self.module_words);
    }

    /// Signal/transition probability of `EN_i` for every node, in node
    /// order (leaves first, then merges as committed).
    #[must_use]
    pub fn node_stats(&self) -> Vec<EnableStats> {
        self.signal
            .iter()
            .zip(&self.transition)
            .map(|(&signal, &transition)| EnableStats { signal, transition })
            .collect()
    }

    /// Module set under every node, in node order.
    #[must_use]
    pub fn node_modules(&self) -> Vec<ModuleSet> {
        (0..self.signal.len())
            .map(|i| {
                let row = &self.modules[i * self.module_words..(i + 1) * self.module_words];
                ModuleSet::with_modules(self.num_modules, row_modules(row))
            })
            .collect()
    }
}

impl MergeObjective for GatedObjective<'_> {
    /// Exact Equation-3 cost; an impossible merge (non-finite state) is
    /// priced at `+∞` so the greedy never selects it.
    fn cost(&self, a: usize, b: usize) -> f64 {
        let Ok(outcome) = self.arena.try_merge(a, b) else {
            return f64::INFINITY;
        };
        merge_switched_cap(
            self.tech,
            outcome.ea,
            outcome.eb,
            self.node_cap[a],
            self.node_cap[b],
            EnableStats {
                signal: self.signal[a],
                transition: self.transition[a],
            },
            EnableStats {
                signal: self.signal[b],
                transition: self.transition[b],
            },
            self.cp_dist[a],
            self.cp_dist[b],
        )
    }

    // Admissible because the zero-skew tap lengths always cover the region
    // distance (`e_a + e_b >= d`; snaking only adds wire), every term of
    // Equation 3 is non-negative, and probabilities are in [0, 1]:
    //
    //   c·e_a·P_a + c·e_b·P_b >= c·(e_a + e_b)·min(P_a, P_b)
    //                         >= c·d·min(P_a, P_b).
    fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
        let d = self.arena.distance(a, b);
        self.static_term[a]
            + self.static_term[b]
            + self.unit_cap * d * self.signal[a].min(self.signal[b])
    }

    // Two columnar sweeps: the arena's batched region-distance kernel
    // writes `d` into `out`, then a fused chunk loop combines it with the
    // cached static terms and enable probabilities — the same expressions
    // in the same order as `cost_lower_bound`, so the keys are
    // bit-identical.
    fn bound_batch(&self, center: usize, candidates: &[u32], out: &mut [f64]) {
        self.arena.distance_batch(center, candidates, out);
        let static_c = self.static_term[center];
        let signal_c = self.signal[center];
        let unit_cap = self.unit_cap;
        let combine = |y: usize, d: f64| {
            static_c + self.static_term[y] + unit_cap * d * signal_c.min(self.signal[y])
        };
        let mut cands = candidates.chunks_exact(BOUND_LANES);
        let mut outs = out.chunks_exact_mut(BOUND_LANES);
        for (cs, os) in (&mut cands).zip(&mut outs) {
            for lane in 0..BOUND_LANES {
                os[lane] = combine(cs[lane] as usize, os[lane]);
            }
        }
        for (&y, o) in cands.remainder().iter().zip(outs.into_remainder()) {
            *o = combine(y as usize, *o);
        }
    }

    // For leaf partners at distance >= dist: the partner's static term is
    // at least the smallest leaf static term, and neither enable switches
    // less often than the least-active leaf.
    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64 {
        self.static_term[node]
            + self.min_leaf_static
            + self.unit_cap * dist * self.signal[node].min(self.min_leaf_signal)
    }

    fn location(&self, node: usize) -> Point {
        self.arena.center(node)
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
        debug_assert_eq!(k, self.arena.len());
        let outcome = self.arena.merge_push(a, b, Some(self.gate))?;
        let (ra, rb) = (a * self.instr, b * self.instr);
        let start = self.active.len();
        for j in 0..self.instr {
            let v = self.active[ra + j] || self.active[rb + j];
            self.active.push(v);
        }
        let stats = self
            .tables
            .enable_stats_for_active(&self.active[start..start + self.instr]);
        let (ma, mb) = (a * self.module_words, b * self.module_words);
        for w in 0..self.module_words {
            let v = self.modules[ma + w] | self.modules[mb + w];
            self.modules.push(v);
        }
        // Both child edges are gated during construction, so the new node
        // feeds exactly two gate input capacitances.
        let node_cap = 2.0 * self.gate.input_cap();
        let cp_dist = self.controller.enable_wire_length(outcome.ms.center());
        self.push_stats(stats, node_cap, cp_dist);
        Ok(())
    }
}

/// The output of [`route_gated`]: the embedded tree plus everything needed
/// to evaluate, reduce, and re-embed it.
#[derive(Clone, Debug)]
pub struct GatedRouting {
    /// The merge structure chosen by the Equation-3 greedy.
    pub topology: Topology,
    /// Device on every edge (the fully gated tree; gate reduction produces
    /// sparser assignments from this).
    pub assignment: DeviceAssignment,
    /// The embedded zero-skew tree.
    pub tree: ClockTree,
    /// Signal/transition probability of `EN_i` for every topology node.
    pub node_stats: Vec<EnableStats>,
    /// Module set under every topology node.
    pub node_modules: Vec<ModuleSet>,
}

impl GatedRouting {
    /// Engineering-change insertion: adds `new_sink` (gated by `module` of
    /// the activity model) next to its geometrically nearest existing
    /// leaf, rebuilds the affected statistics, and re-embeds — the whole
    /// tree re-balances in O(N) while the topology changes only locally.
    ///
    /// Returns the new routing together with the extended sink list (the
    /// new sink is appended, index `old_sinks.len()`).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::SinkModuleMismatch`] when `module` is not in
    /// the activity model or `old_sinks` does not match this routing.
    #[expect(
        clippy::expect_used,
        reason = "the length check above guarantees a non-empty leaf set, and \
                  leaf module sets are singletons by construction"
    )]
    pub fn insert_sink(
        &self,
        old_sinks: &[Sink],
        new_sink: Sink,
        module: usize,
        tables: &ActivityTables,
        config: &RouterConfig,
    ) -> Result<(GatedRouting, Vec<Sink>), RouteError> {
        if old_sinks.len() != self.topology.num_leaves() || module >= tables.rtl().num_modules() {
            return Err(RouteError::SinkModuleMismatch {
                sinks: old_sinks.len(),
                modules: tables.rtl().num_modules(),
            });
        }
        // Nearest existing leaf hosts the new sibling.
        let sibling = (0..old_sinks.len())
            .min_by(|&a, &b| {
                let da = old_sinks[a].location().manhattan(new_sink.location());
                let db = old_sinks[b].location().manhattan(new_sink.location());
                da.total_cmp(&db)
            })
            .expect("old_sinks is non-empty (topology has leaves)");
        let topology = self.topology.insert_leaf(sibling)?;
        let mut sinks = old_sinks.to_vec();
        sinks.push(new_sink);
        // Existing leaves keep their module (leaf sets are singletons by
        // construction); the new leaf gets `module`.
        let mut module_of: Vec<usize> = (0..old_sinks.len())
            .map(|i| {
                self.node_modules[i]
                    .iter()
                    .next()
                    .expect("leaf owns one module")
            })
            .collect();
        module_of.push(module);
        let routing =
            gated_routing_for_topology_mapped(topology, &sinks, &module_of, tables, config)?;
        Ok((routing, sinks))
    }

    /// Engineering-change removal: drops sink `victim` from the design,
    /// letting its sibling subtree take its parent's place, and re-embeds.
    /// Returns the new routing and the shrunken sink list.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::SinkModuleMismatch`] when `old_sinks` does
    /// not match this routing and [`RouteError::Cts`] when the victim is
    /// invalid or the last remaining sink.
    #[expect(
        clippy::expect_used,
        reason = "leaf module sets are singletons by construction"
    )]
    pub fn remove_sink(
        &self,
        old_sinks: &[Sink],
        victim: usize,
        tables: &ActivityTables,
        config: &RouterConfig,
    ) -> Result<(GatedRouting, Vec<Sink>), RouteError> {
        if old_sinks.len() != self.topology.num_leaves() {
            return Err(RouteError::SinkModuleMismatch {
                sinks: old_sinks.len(),
                modules: tables.rtl().num_modules(),
            });
        }
        let topology = self.topology.remove_leaf(victim)?;
        let mut sinks = old_sinks.to_vec();
        sinks.remove(victim);
        let mut module_of: Vec<usize> = (0..old_sinks.len())
            .map(|i| {
                self.node_modules[i]
                    .iter()
                    .next()
                    .expect("leaf owns one module")
            })
            .collect();
        module_of.remove(victim);
        let routing =
            gated_routing_for_topology_mapped(topology, &sinks, &module_of, tables, config)?;
        Ok((routing, sinks))
    }

    /// Re-embeds the same topology with a different device assignment
    /// (e.g. after gate reduction), restoring exact zero skew.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Cts`] if the assignment does not match the
    /// topology.
    pub fn reembed(
        &self,
        sinks: &[Sink],
        assignment: DeviceAssignment,
        config: &RouterConfig,
    ) -> Result<GatedRouting, RouteError> {
        let tree = embed_sized(
            &self.topology,
            sinks,
            config.tech(),
            &assignment,
            config.source(),
            SizingLimits::default(),
        )?;
        Ok(GatedRouting {
            topology: self.topology.clone(),
            assignment,
            tree,
            node_stats: self.node_stats.clone(),
            node_modules: self.node_modules.clone(),
        })
    }
}

/// Builds a fully gated routing over an *externally supplied* topology
/// (nearest-neighbor, MMM, hand-written…): computes every node's module
/// set and enable statistics, puts a gate on every edge, and embeds with
/// sizing — everything [`route_gated`] does except choosing the merge
/// order. Used by the objective ablations.
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] when the sink count differs
/// from the activity model's module count, and [`RouteError::Cts`] when
/// the topology does not match the sinks.
pub fn gated_routing_for_topology(
    topology: Topology,
    sinks: &[Sink],
    tables: &ActivityTables,
    config: &RouterConfig,
) -> Result<GatedRouting, RouteError> {
    if sinks.len() != tables.rtl().num_modules() {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let identity: Vec<usize> = (0..sinks.len()).collect();
    gated_routing_for_topology_mapped(topology, sinks, &identity, tables, config)
}

/// As [`gated_routing_for_topology`], with an explicit sink-to-module map
/// (see [`route_gated_mapped`]).
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] for an inconsistent map and
/// [`RouteError::Cts`] when the topology does not fit the sinks.
pub fn gated_routing_for_topology_mapped(
    topology: Topology,
    sinks: &[Sink],
    module_of: &[usize],
    tables: &ActivityTables,
    config: &RouterConfig,
) -> Result<GatedRouting, RouteError> {
    if module_of.len() != sinks.len() || module_of.iter().any(|&m| m >= tables.rtl().num_modules())
    {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let n_modules = tables.rtl().num_modules();
    let mut node_modules: Vec<ModuleSet> = Vec::with_capacity(topology.len());
    let mut node_stats: Vec<EnableStats> = Vec::with_capacity(topology.len());
    for (_, node) in topology.bottom_up() {
        let set = match node {
            gcr_cts::TopoNode::Leaf { sink } => {
                ModuleSet::with_modules(n_modules, [module_of[sink]])
            }
            gcr_cts::TopoNode::Internal { left, right } => {
                node_modules[left].union(&node_modules[right])
            }
        };
        node_stats.push(tables.enable_stats(&set));
        node_modules.push(set);
    }
    let assignment = DeviceAssignment::everywhere(&topology, config.tech().and_gate());
    let tree = embed_sized(
        &topology,
        sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
    )?;
    Ok(GatedRouting {
        topology,
        assignment,
        tree,
        node_stats,
        node_modules,
    })
}

/// The paper's `GatedClockRouting` procedure (§4.2): greedy bottom-up
/// merging ordered by the Equation-3 switched capacitance, a masking gate
/// on every edge, then top-down zero-skew placement.
///
/// Sink `i` must correspond to module `i` of the activity model ("the
/// sinks correspond to the locations of modules").
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] when the sink count differs
/// from the activity model's module count, and [`RouteError::Cts`] for an
/// empty sink list.
pub fn route_gated(
    sinks: &[Sink],
    tables: &ActivityTables,
    config: &RouterConfig,
) -> Result<GatedRouting, RouteError> {
    route_gated_traced(sinks, tables, config, &Tracer::disabled())
}

/// [`route_gated`] reporting the full flow through `tracer`: objective
/// construction (`route.objective` — the leaf `P(EN)`/`P_tr(EN)`
/// derivation), the greedy merge (`greedy.*` spans), and the zero-skew
/// embedding (`embed.*` spans), all nested in a `route.gated` span. The
/// routing is bit-identical to [`route_gated`]'s at any tracing state.
///
/// # Errors
///
/// As [`route_gated`].
pub fn route_gated_traced(
    sinks: &[Sink],
    tables: &ActivityTables,
    config: &RouterConfig,
    tracer: &Tracer,
) -> Result<GatedRouting, RouteError> {
    if sinks.len() != tables.rtl().num_modules() {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let identity: Vec<usize> = (0..sinks.len()).collect();
    route_gated_mapped_traced(sinks, &identity, tables, config, tracer)
}

/// As [`route_gated`], for designs where a module clocks **several**
/// sinks: `module_of[i]` names the module whose activity gates sink `i`
/// (the paper's 1:1 mapping is the identity). All of a module's sinks
/// share its enable probability, so the router naturally groups them; the
/// reduction and evaluation machinery is unchanged.
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] when `module_of` does not
/// cover every sink or references a module outside the activity model,
/// and [`RouteError::Cts`] for an empty sink list.
pub fn route_gated_mapped(
    sinks: &[Sink],
    module_of: &[usize],
    tables: &ActivityTables,
    config: &RouterConfig,
) -> Result<GatedRouting, RouteError> {
    route_gated_mapped_traced(sinks, module_of, tables, config, &Tracer::disabled())
}

/// [`route_gated_mapped`] reporting the full flow through `tracer` (see
/// [`route_gated_traced`] for the span taxonomy).
///
/// # Errors
///
/// As [`route_gated_mapped`].
pub fn route_gated_mapped_traced(
    sinks: &[Sink],
    module_of: &[usize],
    tables: &ActivityTables,
    config: &RouterConfig,
    tracer: &Tracer,
) -> Result<GatedRouting, RouteError> {
    if module_of.len() != sinks.len() || module_of.iter().any(|&m| m >= tables.rtl().num_modules())
    {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let _route = tracer.span("route.gated");
    let mut objective = {
        let _span = tracer.span("route.objective");
        GatedObjective::new(config.tech(), config.controller(), tables, sinks, module_of)
    };
    tracer.counter("route.sinks", sinks.len() as f64);
    let topology = run_greedy_traced(sinks.len(), &mut objective, tracer)?;
    let assignment = DeviceAssignment::everywhere(&topology, config.tech().and_gate());
    let tree = embed_sized_traced(
        &topology,
        sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
        tracer,
    )?;
    let node_stats = objective.node_stats();
    let node_modules = objective.node_modules();
    Ok(GatedRouting {
        topology,
        assignment,
        tree,
        node_stats,
        node_modules,
    })
}

/// A region-objective factory over `sinks` for the coarsened greedy
/// engine: for a member subset (ascending global sink indices) it builds
/// a [`GatedObjective`] whose leaf states are bit-identical to the
/// corresponding leaves of the global objective — same technology,
/// controller plan, activity tables and module gating, restricted to the
/// subset. This is the contract [`gcr_cts::run_greedy_coarsened`]
/// requires of its `region_objective` argument.
pub fn gated_region_factory<'a>(
    tech: &'a Technology,
    controller: &'a ControllerPlan,
    tables: &'a ActivityTables,
    sinks: &'a [Sink],
    module_of: &'a [usize],
) -> impl Fn(&[u32]) -> GatedObjective<'a> + Sync + 'a {
    move |members: &[u32]| {
        let sub_sinks: Vec<Sink> = members.iter().map(|&i| sinks[i as usize]).collect();
        let sub_modules: Vec<usize> = members.iter().map(|&i| module_of[i as usize]).collect();
        GatedObjective::new(tech, controller, tables, &sub_sinks, &sub_modules)
    }
}

/// As [`route_gated_mapped`], but building the topology with the
/// hierarchical coarsening engine ([`gcr_cts::run_greedy_coarsened`]) —
/// the tractable path for the scale benchmarks (r6–r8, up to a million
/// sinks), where the flat greedy's merge loop is no longer economical.
/// Small instances fall back to the flat pruned engine inside the
/// coarsened entry point, so this is safe to call at any size.
///
/// See the `gcr_cts::coarsen` module docs for the exactness caveat: the
/// coarsened topology is a deterministic approximation of the flat
/// greedy's, not bit-identical to it.
///
/// # Errors
///
/// As [`route_gated_mapped`].
pub fn route_gated_coarsened(
    sinks: &[Sink],
    module_of: &[usize],
    tables: &ActivityTables,
    config: &RouterConfig,
    params: &CoarsenParams,
) -> Result<GatedRouting, RouteError> {
    route_gated_coarsened_traced(
        sinks,
        module_of,
        tables,
        config,
        params,
        &Tracer::disabled(),
    )
}

/// [`route_gated_coarsened`] reporting the full flow through `tracer`
/// (`route.objective`, the `coarsen.*` spans, then the `embed.*` spans,
/// nested in `route.gated`).
///
/// # Errors
///
/// As [`route_gated_mapped`].
pub fn route_gated_coarsened_traced(
    sinks: &[Sink],
    module_of: &[usize],
    tables: &ActivityTables,
    config: &RouterConfig,
    params: &CoarsenParams,
    tracer: &Tracer,
) -> Result<GatedRouting, RouteError> {
    if module_of.len() != sinks.len() || module_of.iter().any(|&m| m >= tables.rtl().num_modules())
    {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let _route = tracer.span("route.gated");
    let mut objective = {
        let _span = tracer.span("route.objective");
        GatedObjective::new(config.tech(), config.controller(), tables, sinks, module_of)
    };
    tracer.counter("route.sinks", sinks.len() as f64);
    let factory =
        gated_region_factory(config.tech(), config.controller(), tables, sinks, module_of);
    let mut scratch = CoarsenScratch::new();
    let (topology, _, _) = run_greedy_coarsened_traced(
        sinks.len(),
        &mut objective,
        factory,
        params,
        &mut scratch,
        tracer,
    )?;
    let assignment = DeviceAssignment::everywhere(&topology, config.tech().and_gate());
    let tree = embed_sized_traced(
        &topology,
        sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
        tracer,
    )?;
    let node_stats = objective.node_stats();
    let node_modules = objective.node_modules();
    Ok(GatedRouting {
        topology,
        assignment,
        tree,
        node_stats,
        node_modules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_activity::CpuModel;

    fn setup(n: usize, seed: u64) -> (Vec<Sink>, ActivityTables, RouterConfig) {
        let side = 10_000.0;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                let x = (i as f64 * 2654.435) % side;
                let y = (i as f64 * 1618.034) % side;
                Sink::new(Point::new(x, y), 0.03 + 0.01 * (i % 5) as f64)
            })
            .collect();
        let model = CpuModel::builder(n)
            .instructions(8)
            .usage_fraction(0.4)
            .seed(seed)
            .build()
            .unwrap();
        let stream = model.generate_stream(4_000);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(side, side));
        let config = RouterConfig::new(Technology::default(), die);
        (sinks, tables, config)
    }

    #[test]
    fn routed_tree_is_zero_skew_and_fully_gated() {
        let (sinks, tables, config) = setup(12, 3);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        assert_eq!(routing.tree.num_sinks(), 12);
        assert_eq!(routing.tree.device_count(), routing.tree.len());
        let delay = routing.tree.source_to_sink_delay(config.tech());
        assert!(routing.tree.verify_skew(config.tech()) < 1e-9 * delay.max(1.0));
    }

    #[test]
    fn coarsened_route_matches_flat_below_the_region_threshold() {
        let (sinks, tables, config) = setup(12, 3);
        let module_of: Vec<usize> = (0..12).collect();
        let flat = route_gated(&sinks, &tables, &config).unwrap();
        let coarse = route_gated_coarsened(
            &sinks,
            &module_of,
            &tables,
            &config,
            &CoarsenParams::default(),
        )
        .unwrap();
        assert_eq!(coarse.topology, flat.topology);
        assert_eq!(coarse.node_stats, flat.node_stats);
    }

    #[test]
    fn coarsened_route_is_zero_skew_and_fully_gated() {
        let (sinks, tables, config) = setup(300, 5);
        let module_of: Vec<usize> = (0..300).collect();
        let params = CoarsenParams {
            target_region_size: 32,
            ..CoarsenParams::default()
        };
        let routing = route_gated_coarsened(&sinks, &module_of, &tables, &config, &params).unwrap();
        assert_eq!(routing.tree.num_sinks(), 300);
        assert_eq!(routing.node_stats.len(), 2 * 300 - 1);
        assert_eq!(routing.tree.device_count(), routing.tree.len());
        let delay = routing.tree.source_to_sink_delay(config.tech());
        assert!(routing.tree.verify_skew(config.tech()) < 1e-9 * delay.max(1.0));
    }

    #[test]
    fn node_stats_are_monotone_up_the_tree() {
        let (sinks, tables, config) = setup(10, 7);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let parents = routing.topology.parents();
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                assert!(
                    routing.node_stats[*p].signal >= routing.node_stats[i].signal - 1e-12,
                    "P(EN) must grow toward the root"
                );
            }
        }
        // The root covers every module and is effectively always on.
        let root = routing.topology.root();
        assert!(routing.node_stats[root].signal > 0.99);
        assert_eq!(routing.node_modules[root].len(), 10);
    }

    #[test]
    fn mismatched_module_count_is_rejected() {
        let (sinks, tables, config) = setup(8, 1);
        let err = route_gated(&sinks[..4], &tables, &config).unwrap_err();
        assert!(matches!(err, RouteError::SinkModuleMismatch { .. }));
    }

    #[test]
    fn deterministic() {
        let (sinks, tables, config) = setup(9, 5);
        let a = route_gated(&sinks, &tables, &config).unwrap();
        let b = route_gated(&sinks, &tables, &config).unwrap();
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn reembed_with_sparser_gates_keeps_zero_skew() {
        let (sinks, tables, config) = setup(10, 11);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let mut sparse = routing.assignment.clone();
        for i in 0..routing.topology.len() {
            if i % 2 == 0 {
                sparse.set(i, None);
            }
        }
        let reduced = routing.reembed(&sinks, sparse, &config).unwrap();
        let delay = reduced.tree.source_to_sink_delay(config.tech());
        assert!(reduced.tree.verify_skew(config.tech()) < 1e-9 * delay.max(1.0));
        assert!(reduced.tree.device_count() < routing.tree.device_count());
        // Stats carry over unchanged.
        assert_eq!(reduced.node_stats.len(), routing.node_stats.len());
    }

    #[test]
    fn mapped_routing_groups_a_modules_sinks() {
        // 12 sinks over 3 modules (4 each); a module's sinks share one
        // enable probability and the leaf stats must reflect the map.
        let side = 9_000.0;
        let sinks: Vec<Sink> = (0..12)
            .map(|i| {
                // Module m's sinks cluster around x = m * 3000.
                let m = i / 4;
                Sink::new(
                    Point::new(
                        1_000.0 + f64::from(m) * 3_000.0 + f64::from(i % 4) * 150.0,
                        4_000.0 + f64::from(i % 2) * 300.0,
                    ),
                    0.04,
                )
            })
            .collect();
        let module_of: Vec<usize> = (0..12).map(|i| i / 4).collect();
        let model = CpuModel::builder(3)
            .instructions(5)
            .seed(8)
            .build()
            .unwrap();
        let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(1_000));
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(side, side));
        let config = RouterConfig::new(Technology::default(), die);
        let routing = route_gated_mapped(&sinks, &module_of, &tables, &config).unwrap();
        // Leaf stats equal their module's stats.
        for (i, &m) in module_of.iter().enumerate() {
            let expect = tables
                .enable_stats(&gcr_activity::ModuleSet::with_modules(3, [m]))
                .signal;
            assert!(
                (routing.node_stats[i].signal - expect).abs() < 1e-12,
                "sink {i}"
            );
            assert!(routing.node_modules[i].contains(m));
            assert_eq!(routing.node_modules[i].len(), 1);
        }
        // The root owns all three modules and stays zero-skew.
        assert_eq!(routing.node_modules[routing.topology.root()].len(), 3);
        let tech = config.tech();
        let delay = routing.tree.source_to_sink_delay(tech);
        assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
        // Bad maps are rejected.
        assert!(matches!(
            route_gated_mapped(&sinks, &[0; 5], &tables, &config),
            Err(RouteError::SinkModuleMismatch { .. })
        ));
        assert!(matches!(
            route_gated_mapped(&sinks, &[7; 12], &tables, &config),
            Err(RouteError::SinkModuleMismatch { .. })
        ));
    }

    #[test]
    fn eco_insertion_stays_zero_skew_and_local() {
        let (sinks, tables, config) = setup(10, 21);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        // Insert a new sink for module 3 right next to sink 3.
        let new_sink = Sink::new(
            Point::new(sinks[3].location().x + 120.0, sinks[3].location().y + 80.0),
            0.03,
        );
        let (grown, grown_sinks) = routing
            .insert_sink(&sinks, new_sink, 3, &tables, &config)
            .unwrap();
        assert_eq!(grown_sinks.len(), 11);
        assert_eq!(grown.tree.num_sinks(), 11);
        // The new leaf (index 10) pairs with its nearest neighbor, sink 3.
        assert!(grown.node_modules[10].contains(3));
        let fresh = grown_sinks.len(); // first internal node index
        assert_eq!(
            grown.topology.node(fresh),
            gcr_cts::TopoNode::Internal { left: 3, right: 10 }
        );
        // Zero skew holds after the ECO.
        let tech = config.tech();
        let delay = grown.tree.source_to_sink_delay(tech);
        assert!(grown.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
        // The duplicated module's enable stats are shared.
        assert_eq!(grown.node_stats[10].signal, grown.node_stats[3].signal);
        // Errors: unknown module, stale sink list.
        assert!(routing
            .insert_sink(&sinks, new_sink, 99, &tables, &config)
            .is_err());
        assert!(routing
            .insert_sink(&sinks[..5], new_sink, 3, &tables, &config)
            .is_err());
    }

    #[test]
    fn eco_removal_stays_zero_skew() {
        let (sinks, tables, config) = setup(9, 33);
        let routing = route_gated(&sinks, &tables, &config).unwrap();
        let (shrunk, shrunk_sinks) = routing.remove_sink(&sinks, 4, &tables, &config).unwrap();
        assert_eq!(shrunk_sinks.len(), 8);
        assert_eq!(shrunk.tree.num_sinks(), 8);
        let tech = config.tech();
        let delay = shrunk.tree.source_to_sink_delay(tech);
        assert!(shrunk.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
        // The surviving leaves keep their original modules (shifted past
        // the victim).
        for i in 0..8 {
            let orig = if i < 4 { i } else { i + 1 };
            assert!(shrunk.node_modules[i].contains(orig), "leaf {i}");
        }
        assert!(routing.remove_sink(&sinks, 99, &tables, &config).is_err());
        assert!(routing
            .remove_sink(&sinks[..3], 0, &tables, &config)
            .is_err());
    }

    #[test]
    fn config_builders() {
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let cfg = RouterConfig::new(Technology::default(), die)
            .with_source(Point::new(0.0, 0.0))
            .with_controller(ControllerPlan::distributed(die, 1));
        assert_eq!(cfg.source(), Point::new(0.0, 0.0));
        assert_eq!(cfg.controller().num_controllers(), 4);
        assert_eq!(cfg.die(), die);
    }
}
