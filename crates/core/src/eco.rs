//! Incremental ECO re-routing of a gated clock tree.
//!
//! [`route_gated_eco`] is the gated-router front end of
//! [`gcr_cts::apply_eco`]: it takes a completed [`GatedRouting`] plus an
//! edit batch, rebuilds the Equation-3 objective over the edited leaf
//! set (new activity tables and all — which is how `SwapActivity` edits
//! re-price every gating decision down the affected module's merge path
//! without any geometric re-search), lets the dirty-frontier engine
//! replay the clean subtrees and re-search only the spliced region, and
//! re-embeds the result into a zero-skew tree.
//!
//! The one-shot entry points here construct a fresh objective per call —
//! convenient, but the construction dominates small edits. A warm ECO
//! loop (the benchmarked path) keeps one [`GatedObjective`] and one
//! [`EcoScratch`] alive, calling
//! [`GatedObjective::truncate`](crate::GatedObjective::truncate) to
//! rewind to the leaf rows between edits; see `examples/eco.rs`.

use gcr_activity::ActivityTables;
use gcr_cts::{
    apply_eco_traced, embed_sized_traced, plan_eco_leaves, DeviceAssignment, EcoEdit, EcoOutcome,
    EcoScratch, GreedyParams, Sink, SizingLimits,
};
use gcr_geometry::Point;
use gcr_trace::Tracer;

use crate::{GatedObjective, GatedRouting, RouteError, RouterConfig};

/// The result of one incremental gated re-route: the new routing plus
/// the edited design lists (the inputs of the *next* ECO in a stream)
/// and the engine's [`EcoOutcome`] (dirty-node set, phase profile,
/// splice statistics).
#[derive(Clone, Debug)]
pub struct GatedEcoResult {
    /// The re-routed, re-embedded gated clock tree.
    pub routing: GatedRouting,
    /// The sink list after the batch, in [`gcr_cts::EcoLeafPlan`] order.
    pub sinks: Vec<Sink>,
    /// The sink-to-module map after the batch, aligned with `sinks`.
    pub module_of: Vec<usize>,
    /// What the incremental engine did: topology, dirty-node set for the
    /// scoped verifier, per-phase profile, splice counters.
    pub outcome: EcoOutcome,
}

/// [`route_gated_eco_traced`] without tracing.
///
/// # Errors
///
/// As [`route_gated_eco_traced`].
pub fn route_gated_eco(
    old: &GatedRouting,
    old_sinks: &[Sink],
    old_module_of: &[usize],
    edits: &[EcoEdit],
    tables: &ActivityTables,
    config: &RouterConfig,
    scratch: &mut EcoScratch,
) -> Result<GatedEcoResult, RouteError> {
    route_gated_eco_traced(
        old,
        old_sinks,
        old_module_of,
        edits,
        tables,
        config,
        scratch,
        &Tracer::disabled(),
    )
}

/// Incrementally re-routes `old` under an ECO edit batch.
///
/// `old_sinks` / `old_module_of` describe the design `old` was routed
/// from; `tables` are the **current** activity tables (pass the new
/// tables after a `SwapActivity` — every node's `P(EN)`/`P_tr(EN)` is
/// re-derived from them during the replay, which is the entire
/// activity-only re-route). A pure-replay batch reproduces `old`'s
/// topology bit-identically; geometric edits re-search only the dirty
/// frontier (see the `gcr_cts::eco` module docs for the contract).
///
/// Emits the `eco.apply > eco.frontier / eco.splice / eco.search` span
/// family inside a `route.gated_eco` span, then the usual `embed.*`
/// spans for the re-embedding.
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] when the design lists do
/// not match the routing or a module reference is outside the activity
/// model, and [`RouteError::Cts`] for an invalid edit batch or an
/// embedding failure.
#[expect(
    clippy::too_many_arguments,
    reason = "mirrors the traced route entry points"
)]
pub fn route_gated_eco_traced(
    old: &GatedRouting,
    old_sinks: &[Sink],
    old_module_of: &[usize],
    edits: &[EcoEdit],
    tables: &ActivityTables,
    config: &RouterConfig,
    scratch: &mut EcoScratch,
    tracer: &Tracer,
) -> Result<GatedEcoResult, RouteError> {
    route_gated_eco_with_params(
        old,
        old_sinks,
        old_module_of,
        edits,
        tables,
        config,
        &GreedyParams::default(),
        scratch,
        tracer,
    )
}

/// [`route_gated_eco_traced`] with explicit [`GreedyParams`] for the
/// splice search. Long-lived services use this to pin the worker-thread
/// count resolved once at startup ([`gcr_trace::threads::resolve`])
/// instead of re-reading `GCR_THREADS` on every request, which the
/// default-params entry points do.
///
/// # Errors
///
/// As [`route_gated_eco_traced`].
#[expect(
    clippy::too_many_arguments,
    reason = "mirrors the traced route entry points"
)]
pub fn route_gated_eco_with_params(
    old: &GatedRouting,
    old_sinks: &[Sink],
    old_module_of: &[usize],
    edits: &[EcoEdit],
    tables: &ActivityTables,
    config: &RouterConfig,
    params: &GreedyParams,
    scratch: &mut EcoScratch,
    tracer: &Tracer,
) -> Result<GatedEcoResult, RouteError> {
    let num_modules = tables.rtl().num_modules();
    if old_sinks.len() != old.topology.num_leaves()
        || old_module_of.len() != old_sinks.len()
        || old_module_of.iter().any(|&m| m >= num_modules)
    {
        return Err(RouteError::SinkModuleMismatch {
            sinks: old_sinks.len(),
            modules: num_modules,
        });
    }
    let plan = plan_eco_leaves(old_sinks.len(), edits)?;
    if plan.added.iter().any(|&(_, m)| m >= num_modules) {
        return Err(RouteError::SinkModuleMismatch {
            sinks: plan.num_new_leaves,
            modules: num_modules,
        });
    }
    let sinks = plan.new_sinks(old_sinks);
    let module_of = plan.new_module_of(old_module_of);

    let _route = tracer.span("route.gated_eco");
    let mut objective = {
        let _span = tracer.span("route.objective");
        GatedObjective::new(
            config.tech(),
            config.controller(),
            tables,
            &sinks,
            &module_of,
        )
    };
    tracer.counter("route.sinks", sinks.len() as f64);
    let old_locations: Vec<Point> = old_sinks.iter().map(Sink::location).collect();
    let outcome = apply_eco_traced(
        &old.topology,
        &old_locations,
        edits,
        &mut objective,
        params,
        scratch,
        tracer,
    )?;
    let assignment = DeviceAssignment::everywhere(&outcome.topology, config.tech().and_gate());
    let tree = embed_sized_traced(
        &outcome.topology,
        &sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
        tracer,
    )?;
    let routing = GatedRouting {
        topology: outcome.topology.clone(),
        assignment,
        tree,
        node_stats: objective.node_stats(),
        node_modules: objective.node_modules(),
    };
    Ok(GatedEcoResult {
        routing,
        sinks,
        module_of,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gated_routing_for_topology_mapped, route_gated_mapped};
    use gcr_activity::CpuModel;
    use gcr_geometry::BBox;
    use gcr_rctree::Technology;

    fn setup(n: usize, seed: u64) -> (Vec<Sink>, Vec<usize>, ActivityTables, RouterConfig) {
        let side = 10_000.0;
        let sinks: Vec<Sink> = (0..n)
            .map(|i| {
                let x = (i as f64 * 2654.435) % side;
                let y = (i as f64 * 1618.034) % side;
                Sink::new(Point::new(x, y), 0.03 + 0.01 * (i % 5) as f64)
            })
            .collect();
        let module_of: Vec<usize> = (0..n).collect();
        let model = CpuModel::builder(n)
            .instructions(8)
            .usage_fraction(0.4)
            .seed(seed)
            .build()
            .unwrap();
        let stream = model.generate_stream(4_000);
        let tables = ActivityTables::scan(model.rtl(), &stream);
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(side, side));
        let config = RouterConfig::new(Technology::default(), die);
        (sinks, module_of, tables, config)
    }

    /// An activity-only ECO (new tables, `SwapActivity` edits) is a pure
    /// replay: the topology and the mapped-oracle rebuild over the same
    /// topology match the incremental result bit for bit.
    #[test]
    fn activity_swap_is_bit_identical_to_mapped_oracle() {
        let (sinks, module_of, tables, config) = setup(24, 3);
        let old = route_gated_mapped(&sinks, &module_of, &tables, &config).unwrap();
        // "Swap" the tables: rescan the same RTL on a different stream.
        let model = CpuModel::builder(24)
            .instructions(8)
            .usage_fraction(0.4)
            .seed(3)
            .build()
            .unwrap();
        let new_tables = ActivityTables::scan(model.rtl(), &model.generate_stream(6_000));
        let mut scratch = EcoScratch::new();
        let eco = route_gated_eco(
            &old,
            &sinks,
            &module_of,
            &[EcoEdit::SwapActivity { module: 5 }],
            &new_tables,
            &config,
            &mut scratch,
        )
        .unwrap();
        assert!(eco.outcome.pure_replay);
        assert_eq!(eco.routing.topology, old.topology);
        let oracle = gated_routing_for_topology_mapped(
            old.topology.clone(),
            &sinks,
            &module_of,
            &new_tables,
            &config,
        )
        .unwrap();
        assert_eq!(eco.routing.tree, oracle.tree);
        assert_eq!(eco.routing.node_stats, oracle.node_stats);
        assert_eq!(eco.routing.node_modules, oracle.node_modules);
    }

    /// A geometric edit produces a verified zero-skew tree over the new
    /// design lists, and the node stats agree with the mapped oracle
    /// rebuilt over the incremental topology.
    #[test]
    fn move_edit_re_routes_and_matches_oracle_stats() {
        let (sinks, module_of, tables, config) = setup(30, 9);
        let old = route_gated_mapped(&sinks, &module_of, &tables, &config).unwrap();
        let to = Point::new(
            sinks[7].location().x + 900.0,
            (sinks[7].location().y + 700.0) % 10_000.0,
        );
        let mut scratch = EcoScratch::new();
        let eco = route_gated_eco(
            &old,
            &sinks,
            &module_of,
            &[EcoEdit::MoveSink { index: 7, to }],
            &tables,
            &config,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(eco.sinks.len(), 30);
        assert_eq!(eco.sinks[7].location(), to);
        let tech = config.tech();
        let delay = eco.routing.tree.source_to_sink_delay(tech);
        assert!(eco.routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
        let oracle = gated_routing_for_topology_mapped(
            eco.routing.topology.clone(),
            &eco.sinks,
            &eco.module_of,
            &tables,
            &config,
        )
        .unwrap();
        assert_eq!(eco.routing.tree, oracle.tree);
        for (a, b) in eco.routing.node_stats.iter().zip(&oracle.node_stats) {
            assert!((a.signal - b.signal).abs() <= 1e-12);
            assert!((a.transition - b.transition).abs() <= 1e-12);
        }
    }

    /// Add + remove in one batch: the design lists follow the plan
    /// convention and the result stays consistent end to end.
    #[test]
    fn add_and_remove_batch_updates_design_lists() {
        let (sinks, module_of, tables, config) = setup(20, 17);
        let old = route_gated_mapped(&sinks, &module_of, &tables, &config).unwrap();
        let added = Sink::new(Point::new(4_500.0, 4_500.0), 0.05);
        let mut scratch = EcoScratch::new();
        let eco = route_gated_eco(
            &old,
            &sinks,
            &module_of,
            &[
                EcoEdit::RemoveSink { index: 2 },
                EcoEdit::AddSink {
                    sink: added,
                    module: 2,
                },
            ],
            &tables,
            &config,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(eco.sinks.len(), 20);
        assert_eq!(eco.module_of.len(), 20);
        assert_eq!(eco.sinks[19], added);
        assert_eq!(eco.module_of[19], 2);
        assert_eq!(eco.routing.tree.num_sinks(), 20);
        assert_eq!(eco.routing.node_stats.len(), 2 * 20 - 1);
        let tech = config.tech();
        let delay = eco.routing.tree.source_to_sink_delay(tech);
        assert!(eco.routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
    }

    /// Mismatched design lists and unknown modules are rejected up
    /// front.
    #[test]
    fn invalid_inputs_are_rejected() {
        let (sinks, module_of, tables, config) = setup(10, 1);
        let old = route_gated_mapped(&sinks, &module_of, &tables, &config).unwrap();
        let mut scratch = EcoScratch::new();
        assert!(matches!(
            route_gated_eco(
                &old,
                &sinks[..5],
                &module_of[..5],
                &[],
                &tables,
                &config,
                &mut scratch
            ),
            Err(RouteError::SinkModuleMismatch { .. })
        ));
        assert!(matches!(
            route_gated_eco(
                &old,
                &sinks,
                &module_of,
                &[EcoEdit::AddSink {
                    sink: Sink::new(Point::new(1.0, 1.0), 0.01),
                    module: 99,
                }],
                &tables,
                &config,
                &mut scratch,
            ),
            Err(RouteError::SinkModuleMismatch { .. })
        ));
        assert!(matches!(
            route_gated_eco(
                &old,
                &sinks,
                &module_of,
                &[EcoEdit::RemoveSink { index: 42 }],
                &tables,
                &config,
                &mut scratch,
            ),
            Err(RouteError::Cts(gcr_cts::CtsError::InvalidEco { .. }))
        ));
    }

    /// The warm-loop primitive: truncating a searched objective back to
    /// its leaves and re-running the same ECO reproduces the cold result
    /// bitwise.
    #[test]
    fn truncate_and_reapply_is_deterministic() {
        let (sinks, module_of, tables, config) = setup(40, 23);
        let old = route_gated_mapped(&sinks, &module_of, &tables, &config).unwrap();
        let plan = plan_eco_leaves(
            sinks.len(),
            &[EcoEdit::MoveSink {
                index: 11,
                to: Point::new(2_000.0, 8_000.0),
            }],
        )
        .unwrap();
        let edits = [EcoEdit::MoveSink {
            index: 11,
            to: Point::new(2_000.0, 8_000.0),
        }];
        let new_sinks = plan.new_sinks(&sinks);
        let new_modules = plan.new_module_of(&module_of);
        let old_locations: Vec<Point> = sinks.iter().map(Sink::location).collect();
        let mut objective = GatedObjective::new(
            config.tech(),
            config.controller(),
            &tables,
            &new_sinks,
            &new_modules,
        );
        let mut scratch = EcoScratch::new();
        let params = GreedyParams::default();
        let cold = gcr_cts::apply_eco(
            &old.topology,
            &old_locations,
            &edits,
            &mut objective,
            &params,
            &mut scratch,
        )
        .unwrap();
        objective.truncate(new_sinks.len());
        let warm = gcr_cts::apply_eco(
            &old.topology,
            &old_locations,
            &edits,
            &mut objective,
            &params,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(cold.topology, warm.topology);
        assert_eq!(cold.dirty_nodes, warm.dirty_nodes);
        assert_eq!(objective.node_stats().len(), 2 * 40 - 1);
    }
}
