use std::fmt;

use gcr_geometry::{BBox, Point};

/// Placement of the gate controller(s) that drive every enable signal.
///
/// The paper's main experiments use a single controller "located at the
/// center of the chip" with star routing to every gate (§2); §6 proposes
/// dividing the chip into `k = 4^levels` equal partitions, each served by
/// its own controller, cutting the expected star wire length — and hence
/// the control routing area — by a factor of `√k`.
///
/// ```
/// use gcr_core::ControllerPlan;
/// use gcr_geometry::{BBox, Point};
///
/// let die = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
/// let central = ControllerPlan::centralized(&die);
/// assert_eq!(central.num_controllers(), 1);
/// let four = ControllerPlan::distributed(die, 1);
/// assert_eq!(four.num_controllers(), 4);
/// // A gate in the SW quadrant is served by the SW controller.
/// let gate = Point::new(100.0, 100.0);
/// assert!(four.enable_wire_length(gate) < central.enable_wire_length(gate));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum ControllerPlan {
    /// One controller at a fixed location (the paper's default: the die
    /// center).
    Centralized {
        /// Where the controller sits.
        location: Point,
    },
    /// `4^levels` controllers at the centers of a regular partition of the
    /// die (§6, Figure 6b).
    Distributed {
        /// The die outline being partitioned.
        die: BBox,
        /// Recursion depth: `k = 4^levels` partitions.
        levels: u32,
    },
}

impl ControllerPlan {
    /// A single controller at the center of `die`.
    #[must_use]
    pub fn centralized(die: &BBox) -> Self {
        ControllerPlan::Centralized {
            location: die.center(),
        }
    }

    /// `4^levels` distributed controllers over `die`.
    #[must_use]
    pub fn distributed(die: BBox, levels: u32) -> Self {
        ControllerPlan::Distributed { die, levels }
    }

    /// Number of controllers.
    #[must_use]
    pub fn num_controllers(&self) -> usize {
        match self {
            ControllerPlan::Centralized { .. } => 1,
            ControllerPlan::Distributed { levels, .. } => 4usize.pow(*levels),
        }
    }

    /// The controller that serves a gate at `gate`: the fixed controller,
    /// or the center of the partition containing the gate (points outside
    /// the die clamp to the nearest partition).
    #[must_use]
    pub fn controller_for(&self, gate: Point) -> Point {
        match self {
            ControllerPlan::Centralized { location } => *location,
            ControllerPlan::Distributed { die, levels } => {
                let side = 2usize.pow(*levels);
                let cell_w = die.width() / side as f64;
                let cell_h = die.height() / side as f64;
                let clamp = |v: f64, cells: usize, lo: f64, cell: f64| -> usize {
                    if cell <= 0.0 {
                        return 0;
                    }
                    (((v - lo) / cell).floor() as isize).clamp(0, cells as isize - 1) as usize
                };
                let ix = clamp(gate.x, side, die.min().x, cell_w);
                let iy = clamp(gate.y, side, die.min().y, cell_h);
                Point::new(
                    die.min().x + (ix as f64 + 0.5) * cell_w,
                    die.min().y + (iy as f64 + 0.5) * cell_h,
                )
            }
        }
    }

    /// Manhattan length of the enable wire serving a gate at `gate` — one
    /// leg of the star routing.
    #[must_use]
    pub fn enable_wire_length(&self, gate: Point) -> f64 {
        self.controller_for(gate).manhattan(gate)
    }
}

impl fmt::Display for ControllerPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerPlan::Centralized { location } => {
                write!(f, "centralized controller at {location}")
            }
            ControllerPlan::Distributed { levels, .. } => {
                write!(f, "{} distributed controllers", 4usize.pow(*levels))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0))
    }

    #[test]
    fn centralized_distance_is_manhattan_to_center() {
        let plan = ControllerPlan::centralized(&die());
        assert_eq!(plan.enable_wire_length(Point::new(0.0, 0.0)), 1000.0);
        assert_eq!(plan.enable_wire_length(Point::new(500.0, 500.0)), 0.0);
    }

    #[test]
    fn distributed_partitions_serve_local_gates() {
        let plan = ControllerPlan::distributed(die(), 1);
        // SW quadrant center is (250, 250).
        assert_eq!(
            plan.controller_for(Point::new(10.0, 10.0)),
            Point::new(250.0, 250.0)
        );
        // NE quadrant center is (750, 750).
        assert_eq!(
            plan.controller_for(Point::new(990.0, 990.0)),
            Point::new(750.0, 750.0)
        );
    }

    #[test]
    fn out_of_die_gates_clamp() {
        let plan = ControllerPlan::distributed(die(), 2);
        let c = plan.controller_for(Point::new(-50.0, 2000.0));
        // First column, last row: centers at x = 125/2? levels=2 -> 4x4 grid
        // with 250-wide cells; centers at 125, 375, 625, 875.
        assert_eq!(c, Point::new(125.0, 875.0));
    }

    #[test]
    fn deeper_partitions_shorten_wires_on_average() {
        // The sqrt(k) area claim of §6: average star length over a grid of
        // gates shrinks roughly by 2x per level.
        let gates: Vec<Point> = (0..32)
            .flat_map(|i| {
                (0..32).map(move |j| Point::new(f64::from(i) * 31.25, f64::from(j) * 31.25))
            })
            .collect();
        let avg = |levels: u32| {
            let plan = if levels == 0 {
                ControllerPlan::centralized(&die())
            } else {
                ControllerPlan::distributed(die(), levels)
            };
            gates
                .iter()
                .map(|&g| plan.enable_wire_length(g))
                .sum::<f64>()
                / gates.len() as f64
        };
        let (a0, a1, a2) = (avg(0), avg(1), avg(2));
        assert!(a1 < a0 && a2 < a1, "{a0} -> {a1} -> {a2}");
        // Ratio should be near 2.0 per level for a uniform gate field.
        assert!((a0 / a1 - 2.0).abs() < 0.3, "a0/a1 = {}", a0 / a1);
        assert!((a1 / a2 - 2.0).abs() < 0.3, "a1/a2 = {}", a1 / a2);
    }

    #[test]
    fn counts_and_display() {
        assert_eq!(ControllerPlan::centralized(&die()).num_controllers(), 1);
        assert_eq!(ControllerPlan::distributed(die(), 2).num_controllers(), 16);
        assert!(format!("{}", ControllerPlan::distributed(die(), 1)).contains('4'));
        assert!(format!("{}", ControllerPlan::centralized(&die())).contains("centralized"));
    }
}
