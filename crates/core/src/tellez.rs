use gcr_activity::{ActivityTables, EnableStats, ModuleSet};
use gcr_cts::{
    embed_sized, run_greedy, zero_skew_merge, CtsError, DeviceAssignment, MergeObjective, Sink,
    SizingLimits, SubtreeState,
};
use gcr_geometry::Point;
use gcr_rctree::{Device, Technology};

use crate::{GatedRouting, RouteError, RouterConfig};

/// The activity-driven merge objective in the spirit of Téllez, Farrahi &
/// Sarrafzadeh \[5\] ("Activity Driven Clock Design for Low Power
/// Circuits"): merge the pair whose **combined enable activity** is
/// lowest, so rarely-co-active modules share subtrees and gates stay off
/// longer. Geometry enters only as a tie-break.
///
/// This is the prior work the paper extends; `route_activity_driven`
/// exists as the comparator for the objective ablation
/// (`gcr-report --bin ablations`). It ignores wire lengths and controller
/// distances during ordering — exactly the information the paper's
/// Equation-3 objective adds.
#[derive(Clone)]
pub struct ActivityDrivenObjective<'a> {
    tech: &'a Technology,
    gate: Device,
    tables: &'a ActivityTables,
    /// Normalization for the geometric tie-break (die half-perimeter).
    dist_scale: f64,
    nodes: Vec<ActivityNode>,
}

#[derive(Clone)]
struct ActivityNode {
    state: SubtreeState,
    active: Vec<bool>,
    stats: EnableStats,
    modules: ModuleSet,
}

impl<'a> ActivityDrivenObjective<'a> {
    /// Creates the objective over `sinks` (sink `i` = module `i`).
    #[must_use]
    pub fn new(
        tech: &'a Technology,
        tables: &'a ActivityTables,
        sinks: &[Sink],
        dist_scale: f64,
    ) -> Self {
        let gate = tech.and_gate();
        let num_modules = tables.rtl().num_modules();
        let nodes = sinks
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let modules = ModuleSet::with_modules(num_modules, [i]);
                let active = tables.active_vector(&modules);
                let stats = tables.enable_stats_for_active(&active);
                ActivityNode {
                    state: SubtreeState::leaf_with_device(s, Some(gate)),
                    active,
                    stats,
                    modules,
                }
            })
            .collect();
        Self {
            tech,
            gate,
            tables,
            dist_scale: dist_scale.max(1.0),
            nodes,
        }
    }

    fn union_signal(&self, a: usize, b: usize) -> f64 {
        let (na, nb) = (&self.nodes[a], &self.nodes[b]);
        let ift = self.tables.ift();
        self.tables
            .rtl()
            .instruction_ids()
            .filter(|i| na.active[i.index()] || nb.active[i.index()])
            .map(|i| ift.probability(i))
            .sum()
    }
}

impl MergeObjective for ActivityDrivenObjective<'_> {
    fn cost(&self, a: usize, b: usize) -> f64 {
        // Primary key: the merged node's activity; secondary: distance,
        // scaled well below one activity quantum so it only breaks ties.
        let activity = self.union_signal(a, b);
        let dist = self.nodes[a].state.distance(&self.nodes[b].state);
        activity + 1e-3 * dist / self.dist_scale
    }

    // Admissible: the union of two active sets covers each one, so the
    // union signal is at least the larger individual signal, and the
    // tie-break term is monotone in the true distance.
    fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
        let activity = self.nodes[a].stats.signal.max(self.nodes[b].stats.signal);
        let dist = self.nodes[a].state.distance(&self.nodes[b].state);
        activity + 1e-3 * dist / self.dist_scale
    }

    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64 {
        self.nodes[node].stats.signal + 1e-3 * dist / self.dist_scale
    }

    fn location(&self, node: usize) -> Point {
        self.nodes[node].state.ms.center()
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
        debug_assert_eq!(k, self.nodes.len());
        let outcome = zero_skew_merge(self.tech, &self.nodes[a].state, &self.nodes[b].state)?;
        let modules = self.nodes[a].modules.union(&self.nodes[b].modules);
        let active: Vec<bool> = self.nodes[a]
            .active
            .iter()
            .zip(&self.nodes[b].active)
            .map(|(&x, &y)| x || y)
            .collect();
        let stats = self.tables.enable_stats_for_active(&active);
        self.nodes.push(ActivityNode {
            state: outcome.gated_state(Some(self.gate)),
            active,
            stats,
            modules,
        });
        Ok(())
    }
}

/// Routes a gated clock tree with the activity-driven ordering of \[5\]
/// instead of the paper's Equation-3 ordering. Gating, embedding and
/// evaluation machinery are identical, so the difference between the two
/// results isolates the objective.
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] when the sink count differs
/// from the activity model's module count, and [`RouteError::Cts`] for an
/// empty sink list.
pub fn route_activity_driven(
    sinks: &[Sink],
    tables: &ActivityTables,
    config: &RouterConfig,
) -> Result<GatedRouting, RouteError> {
    if sinks.len() != tables.rtl().num_modules() {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let mut objective =
        ActivityDrivenObjective::new(config.tech(), tables, sinks, config.die().half_perimeter());
    let topology = run_greedy(sinks.len(), &mut objective)?;
    let assignment = DeviceAssignment::everywhere(&topology, config.tech().and_gate());
    let tree = embed_sized(
        &topology,
        sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
    )?;
    let node_stats = objective.nodes.iter().map(|n| n.stats).collect();
    let node_modules = objective.nodes.iter().map(|n| n.modules.clone()).collect();
    Ok(GatedRouting {
        topology,
        assignment,
        tree,
        node_stats,
        node_modules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_activity::{InstructionStream, Rtl};
    use gcr_geometry::{BBox, Point};

    /// Two co-active module pairs placed so that geometry disagrees with
    /// activity: the activity-driven objective must pair by activity.
    #[test]
    fn pairs_by_activity_not_geometry() {
        // Modules 0, 2 are always used together; 1, 3 together.
        let rtl = Rtl::builder(4)
            .instruction("A", [0, 2])
            .and_then(|b| b.instruction("B", [1, 3]))
            .and_then(gcr_activity::RtlBuilder::build)
            .unwrap();
        let stream = InstructionStream::from_indices(&rtl, [0, 0, 1, 0, 1, 1, 0, 1, 0, 0]).unwrap();
        let tables = ActivityTables::scan(&rtl, &stream);
        // Geometry pairs (0,1) and (2,3); activity pairs (0,2) and (1,3).
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),     // module 0
            Sink::new(Point::new(100.0, 0.0), 0.05),   // module 1
            Sink::new(Point::new(5_000.0, 0.0), 0.05), // module 2
            Sink::new(Point::new(5_100.0, 0.0), 0.05), // module 3
        ];
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(6_000.0, 1_000.0));
        let config = RouterConfig::new(Technology::default(), die);
        let routing = route_activity_driven(&sinks, &tables, &config).unwrap();
        // First two merges must unite {0,2} and {1,3}.
        let n4 = &routing.node_modules[4];
        assert!(
            (n4.contains(0) && n4.contains(2)) || (n4.contains(1) && n4.contains(3)),
            "first merge paired {n4:?} by geometry, not activity"
        );
        // Mid-level enables keep the low per-class activity.
        assert!(routing.node_stats[4].signal < 0.75);
        // And the tree is still zero-skew.
        let tech = config.tech();
        let delay = routing.tree.source_to_sink_delay(tech);
        assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
    }

    #[test]
    fn mismatched_modules_rejected() {
        let rtl = gcr_activity::paper_example_rtl();
        let stream = InstructionStream::from_indices(&rtl, [0, 1, 2]).unwrap();
        let tables = ActivityTables::scan(&rtl, &stream);
        let sinks = vec![Sink::new(Point::ORIGIN, 0.05); 3];
        let die = BBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let config = RouterConfig::new(Technology::default(), die);
        assert!(matches!(
            route_activity_driven(&sinks, &tables, &config),
            Err(RouteError::SinkModuleMismatch { .. })
        ));
    }
}
