use gcr_activity::{ActivityTables, EnableStats, ModuleSet};
use gcr_cts::{
    clone_preserving_capacity, embed_sized, run_greedy, CtsError, DeviceAssignment, MergeArena,
    MergeObjective, Sink, SizingLimits, BOUND_LANES,
};
use gcr_geometry::Point;
use gcr_rctree::{Device, Technology};

use crate::router::row_modules;
use crate::{GatedRouting, RouteError, RouterConfig};

/// The activity-driven merge objective in the spirit of Téllez, Farrahi &
/// Sarrafzadeh \[5\] ("Activity Driven Clock Design for Low Power
/// Circuits"): merge the pair whose **combined enable activity** is
/// lowest, so rarely-co-active modules share subtrees and gates stay off
/// longer. Geometry enters only as a tie-break.
///
/// This is the prior work the paper extends; `route_activity_driven`
/// exists as the comparator for the objective ablation
/// (`gcr-report --bin ablations`). It ignores wire lengths and controller
/// distances during ordering — exactly the information the paper's
/// Equation-3 objective adds.
///
/// Storage mirrors [`GatedObjective`](crate::GatedObjective): geometry in
/// a [`MergeArena`], enable statistics and activation/module bitsets as
/// flat per-node rows, all reserved for the full `2n − 1` node count so
/// the greedy loop appends without reallocating.
pub struct ActivityDrivenObjective<'a> {
    gate: Device,
    tables: &'a ActivityTables,
    /// Normalization for the geometric tie-break (die half-perimeter).
    dist_scale: f64,
    num_modules: usize,
    /// Width (in `u64` words) of one row of `modules`.
    module_words: usize,
    /// Width (in instructions) of one row of `active`.
    instr: usize,
    arena: MergeArena,
    /// `P(EN_i)` per node.
    signal: Vec<f64>,
    /// `P_tr(EN_i)` per node.
    transition: Vec<f64>,
    /// Row-major `len × instr` matrix: which instructions activate node i.
    active: Vec<bool>,
    /// Row-major `len × module_words` bitset matrix: modules under node i.
    modules: Vec<u64>,
}

impl Clone for ActivityDrivenObjective<'_> {
    // Manual so the pre-reserved columns keep their spare capacity; a
    // derived clone would shrink them to `len` and the first merges after
    // the clone would reallocate every column.
    fn clone(&self) -> Self {
        Self {
            gate: self.gate,
            tables: self.tables,
            dist_scale: self.dist_scale,
            num_modules: self.num_modules,
            module_words: self.module_words,
            instr: self.instr,
            arena: self.arena.clone(),
            signal: clone_preserving_capacity(&self.signal),
            transition: clone_preserving_capacity(&self.transition),
            active: clone_preserving_capacity(&self.active),
            modules: clone_preserving_capacity(&self.modules),
        }
    }
}

impl<'a> ActivityDrivenObjective<'a> {
    /// Creates the objective over `sinks` (sink `i` = module `i`).
    #[must_use]
    pub fn new(
        tech: &'a Technology,
        tables: &'a ActivityTables,
        sinks: &[Sink],
        dist_scale: f64,
    ) -> Self {
        let gate = tech.and_gate();
        let num_modules = tables.rtl().num_modules();
        let module_words = num_modules.div_ceil(64);
        let instr = tables.rtl().num_instructions();
        let capacity = sinks.len().saturating_mul(2).saturating_sub(1);
        let mut this = Self {
            gate,
            tables,
            dist_scale: dist_scale.max(1.0),
            num_modules,
            module_words,
            instr,
            arena: MergeArena::new(tech, capacity),
            signal: Vec::with_capacity(capacity),
            transition: Vec::with_capacity(capacity),
            active: Vec::with_capacity(capacity * instr),
            modules: Vec::with_capacity(capacity * module_words),
        };
        for (i, s) in sinks.iter().enumerate() {
            let mset = ModuleSet::with_modules(num_modules, [i]);
            let act = tables.active_vector(&mset);
            let stats = tables.enable_stats_for_active(&act);
            this.arena.push_leaf(s, Some(gate));
            this.active.extend_from_slice(&act);
            let row = this.modules.len();
            this.modules.resize(row + module_words, 0);
            for m in mset.iter() {
                this.modules[row + m / 64] |= 1u64 << (m % 64);
            }
            this.signal.push(stats.signal);
            this.transition.push(stats.transition);
        }
        this
    }

    fn union_signal(&self, a: usize, b: usize) -> f64 {
        let ift = self.tables.ift();
        let (ra, rb) = (a * self.instr, b * self.instr);
        self.tables
            .rtl()
            .instruction_ids()
            .filter(|i| self.active[ra + i.index()] || self.active[rb + i.index()])
            .map(|i| ift.probability(i))
            .sum()
    }

    /// Signal/transition probability of `EN_i` for every node, in node
    /// order (leaves first, then merges as committed).
    #[must_use]
    pub fn node_stats(&self) -> Vec<EnableStats> {
        self.signal
            .iter()
            .zip(&self.transition)
            .map(|(&signal, &transition)| EnableStats { signal, transition })
            .collect()
    }

    /// Module set under every node, in node order.
    #[must_use]
    pub fn node_modules(&self) -> Vec<ModuleSet> {
        (0..self.signal.len())
            .map(|i| {
                let row = &self.modules[i * self.module_words..(i + 1) * self.module_words];
                ModuleSet::with_modules(self.num_modules, row_modules(row))
            })
            .collect()
    }
}

impl MergeObjective for ActivityDrivenObjective<'_> {
    fn cost(&self, a: usize, b: usize) -> f64 {
        // Primary key: the merged node's activity; secondary: distance,
        // scaled well below one activity quantum so it only breaks ties.
        let activity = self.union_signal(a, b);
        let dist = self.arena.distance(a, b);
        activity + 1e-3 * dist / self.dist_scale
    }

    // Admissible: the union of two active sets covers each one, so the
    // union signal is at least the larger individual signal, and the
    // tie-break term is monotone in the true distance.
    fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
        let activity = self.signal[a].max(self.signal[b]);
        let dist = self.arena.distance(a, b);
        activity + 1e-3 * dist / self.dist_scale
    }

    // Batched distance sweep plus a fused chunk loop over the signal
    // column — the same expressions in the same order as
    // `cost_lower_bound`, so the keys are bit-identical.
    fn bound_batch(&self, center: usize, candidates: &[u32], out: &mut [f64]) {
        self.arena.distance_batch(center, candidates, out);
        let signal_c = self.signal[center];
        let dist_scale = self.dist_scale;
        let combine = |y: usize, d: f64| signal_c.max(self.signal[y]) + 1e-3 * d / dist_scale;
        let mut cands = candidates.chunks_exact(BOUND_LANES);
        let mut outs = out.chunks_exact_mut(BOUND_LANES);
        for (cs, os) in (&mut cands).zip(&mut outs) {
            for lane in 0..BOUND_LANES {
                os[lane] = combine(cs[lane] as usize, os[lane]);
            }
        }
        for (&y, o) in cands.remainder().iter().zip(outs.into_remainder()) {
            *o = combine(y as usize, *o);
        }
    }

    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64 {
        self.signal[node] + 1e-3 * dist / self.dist_scale
    }

    fn location(&self, node: usize) -> Point {
        self.arena.center(node)
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
        debug_assert_eq!(k, self.arena.len());
        self.arena.merge_push(a, b, Some(self.gate))?;
        let (ra, rb) = (a * self.instr, b * self.instr);
        let start = self.active.len();
        for j in 0..self.instr {
            let v = self.active[ra + j] || self.active[rb + j];
            self.active.push(v);
        }
        let stats = self
            .tables
            .enable_stats_for_active(&self.active[start..start + self.instr]);
        let (ma, mb) = (a * self.module_words, b * self.module_words);
        for w in 0..self.module_words {
            let v = self.modules[ma + w] | self.modules[mb + w];
            self.modules.push(v);
        }
        self.signal.push(stats.signal);
        self.transition.push(stats.transition);
        Ok(())
    }
}

/// Routes a gated clock tree with the activity-driven ordering of \[5\]
/// instead of the paper's Equation-3 ordering. Gating, embedding and
/// evaluation machinery are identical, so the difference between the two
/// results isolates the objective.
///
/// # Errors
///
/// Returns [`RouteError::SinkModuleMismatch`] when the sink count differs
/// from the activity model's module count, and [`RouteError::Cts`] for an
/// empty sink list.
pub fn route_activity_driven(
    sinks: &[Sink],
    tables: &ActivityTables,
    config: &RouterConfig,
) -> Result<GatedRouting, RouteError> {
    if sinks.len() != tables.rtl().num_modules() {
        return Err(RouteError::SinkModuleMismatch {
            sinks: sinks.len(),
            modules: tables.rtl().num_modules(),
        });
    }
    let mut objective =
        ActivityDrivenObjective::new(config.tech(), tables, sinks, config.die().half_perimeter());
    let topology = run_greedy(sinks.len(), &mut objective)?;
    let assignment = DeviceAssignment::everywhere(&topology, config.tech().and_gate());
    let tree = embed_sized(
        &topology,
        sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
    )?;
    let node_stats = objective.node_stats();
    let node_modules = objective.node_modules();
    Ok(GatedRouting {
        topology,
        assignment,
        tree,
        node_stats,
        node_modules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_activity::{InstructionStream, Rtl};
    use gcr_geometry::{BBox, Point};

    /// Two co-active module pairs placed so that geometry disagrees with
    /// activity: the activity-driven objective must pair by activity.
    #[test]
    fn pairs_by_activity_not_geometry() {
        // Modules 0, 2 are always used together; 1, 3 together.
        let rtl = Rtl::builder(4)
            .instruction("A", [0, 2])
            .and_then(|b| b.instruction("B", [1, 3]))
            .and_then(gcr_activity::RtlBuilder::build)
            .unwrap();
        let stream = InstructionStream::from_indices(&rtl, [0, 0, 1, 0, 1, 1, 0, 1, 0, 0]).unwrap();
        let tables = ActivityTables::scan(&rtl, &stream);
        // Geometry pairs (0,1) and (2,3); activity pairs (0,2) and (1,3).
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),     // module 0
            Sink::new(Point::new(100.0, 0.0), 0.05),   // module 1
            Sink::new(Point::new(5_000.0, 0.0), 0.05), // module 2
            Sink::new(Point::new(5_100.0, 0.0), 0.05), // module 3
        ];
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(6_000.0, 1_000.0));
        let config = RouterConfig::new(Technology::default(), die);
        let routing = route_activity_driven(&sinks, &tables, &config).unwrap();
        // First two merges must unite {0,2} and {1,3}.
        let n4 = &routing.node_modules[4];
        assert!(
            (n4.contains(0) && n4.contains(2)) || (n4.contains(1) && n4.contains(3)),
            "first merge paired {n4:?} by geometry, not activity"
        );
        // Mid-level enables keep the low per-class activity.
        assert!(routing.node_stats[4].signal < 0.75);
        // And the tree is still zero-skew.
        let tech = config.tech();
        let delay = routing.tree.source_to_sink_delay(tech);
        assert!(routing.tree.verify_skew(tech) <= 1e-9 * delay.max(1.0));
    }

    #[test]
    fn mismatched_modules_rejected() {
        let rtl = gcr_activity::paper_example_rtl();
        let stream = InstructionStream::from_indices(&rtl, [0, 1, 2]).unwrap();
        let tables = ActivityTables::scan(&rtl, &stream);
        let sinks = vec![Sink::new(Point::ORIGIN, 0.05); 3];
        let die = BBox::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let config = RouterConfig::new(Technology::default(), die);
        assert!(matches!(
            route_activity_driven(&sinks, &tables, &config),
            Err(RouteError::SinkModuleMismatch { .. })
        ));
    }
}
