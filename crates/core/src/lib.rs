//! Gated clock routing minimizing the switched capacitance — the primary
//! contribution of Oh & Pedram, *DATE 1998*.
//!
//! A **gated clock tree** has an AND masking gate on every edge; gate
//! `EN_i` shuts off the subtree of node `v_i` whenever none of its modules
//! is active, so the clock network only burns power where work happens. A
//! central (or distributed, §6) **controller** drives each enable through
//! a dedicated star-routed wire, which itself switches and costs power.
//! The paper's router balances both:
//!
//! * **W(T)** — clock-tree switched capacitance, each edge weighted by the
//!   *signal probability* `P(EN_i)` of its gate;
//! * **W(S)** — controller-tree switched capacitance, each enable wire
//!   weighted by the *transition probability* `P_tr(EN_i)`.
//!
//! [`route_gated`] runs the paper's `GatedClockRouting` procedure: greedy
//! bottom-up merging ordered by the Equation-3 switched-capacitance cost
//! (zero-skew tap lengths from the DME substrate, controller distance
//! estimated from the merging-segment midpoint), followed by top-down
//! placement. [`reduce_gates`] implements the §4.3 gate-reduction
//! heuristic (rules R1–R3 plus forced re-insertion) and
//! [`evaluate`] produces the switched-capacitance / area report behind
//! every figure of the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use gcr_activity::{ActivityTables, CpuModel};
//! use gcr_core::{evaluate, route_gated, ControllerPlan, DeviceRole, RouterConfig};
//! use gcr_cts::Sink;
//! use gcr_geometry::{BBox, Point};
//! use gcr_rctree::Technology;
//!
//! // Four modules in the corners of a 10k x 10k die.
//! let sinks = vec![
//!     Sink::new(Point::new(1000.0, 1000.0), 0.05),
//!     Sink::new(Point::new(9000.0, 1000.0), 0.05),
//!     Sink::new(Point::new(1000.0, 9000.0), 0.05),
//!     Sink::new(Point::new(9000.0, 9000.0), 0.05),
//! ];
//! let model = CpuModel::builder(4).instructions(8).seed(1).build()?;
//! let stream = model.generate_stream(2_000);
//! let tables = ActivityTables::scan(model.rtl(), &stream);
//!
//! let die = BBox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
//! let config = RouterConfig::new(Technology::default(), die);
//! let routing = route_gated(&sinks, &tables, &config)?;
//!
//! // Zero skew by construction…
//! assert!(routing.tree.verify_skew(config.tech()) < 1e-6);
//! // …and the full power/area report of the evaluation section.
//! let report = evaluate(
//!     &routing.tree,
//!     &routing.node_stats,
//!     config.controller(),
//!     config.tech(),
//!     DeviceRole::Gate,
//! );
//! assert!(report.total_switched_cap > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod corners;
mod cost;
mod eco;
mod error;
mod evaluate;
mod optimal;
mod reduction;
mod router;
mod simulate;
mod tellez;

pub use controller::ControllerPlan;
pub use corners::{corner_analysis, CornerResult};
pub use cost::merge_switched_cap;
pub use eco::{
    route_gated_eco, route_gated_eco_traced, route_gated_eco_with_params, GatedEcoResult,
};
pub use error::RouteError;
pub use evaluate::{
    evaluate, evaluate_breakdown, evaluate_buffered, evaluate_traced, evaluate_with_mask,
    evaluate_with_mask_traced, DeviceRole, LevelBreakdown, PowerReport,
};
pub use optimal::reduce_gates_optimal;
pub use reduction::{reduce_gates, reduce_gates_untied, ReductionParams};
pub use router::{
    gated_region_factory, gated_routing_for_topology, gated_routing_for_topology_mapped,
    route_gated, route_gated_coarsened, route_gated_coarsened_traced, route_gated_mapped,
    route_gated_mapped_traced, route_gated_traced, GatedObjective, GatedRouting, RouterConfig,
};
pub use simulate::{simulate_stream, SimulationReport, WINDOW};
pub use tellez::{route_activity_driven, ActivityDrivenObjective};
