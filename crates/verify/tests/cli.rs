//! Integration tests of the `gcr-verify` binary: exit codes, the three
//! output formats against golden files, scoped runs, `--deny-skipped`,
//! the `audit` subcommand, and malformed-input error paths.
// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

use gcr_cts::{embed, nearest_neighbor_topology, save_design, DeviceAssignment, Sink};
use gcr_geometry::Point;
use gcr_rctree::Technology;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_gcr-verify")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawning gcr-verify")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

/// A deterministic 4-sink gated design, written once per test-process
/// into the target tmpdir. Integer coordinates keep every float in the
/// design file and the reports exactly reproducible.
fn fixture_design() -> PathBuf {
    let tech = Technology::default();
    let sinks = vec![
        Sink::new(Point::new(0.0, 0.0), 0.05),
        Sink::new(Point::new(2_000.0, 0.0), 0.04),
        Sink::new(Point::new(0.0, 2_000.0), 0.06),
        Sink::new(Point::new(2_000.0, 2_000.0), 0.05),
    ];
    let gate = tech.and_gate();
    let topology = nearest_neighbor_topology(&tech, &sinks, Some(gate)).unwrap();
    let assignment = DeviceAssignment::everywhere(&topology, gate);
    let source = Point::new(1_000.0, 1_000.0);
    let tree = embed(&topology, &sinks, &tech, &assignment, source).unwrap();
    let text = save_design(&topology, &sinks, &tree, source);
    let path = std::env::temp_dir().join(format!("gcr-verify-cli-{}.design", std::process::id()));
    std::fs::write(&path, text).unwrap();
    path
}

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

const DIE: &[&str] = &["--die", "0", "0", "2000", "2000"];

#[test]
fn clean_design_exits_zero_with_golden_text() {
    let design = fixture_design();
    let out = run(&[DIE, &[design.to_str().unwrap()]].concat());
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), golden("clean.txt"));
}

#[test]
fn clean_design_json_matches_golden() {
    let design = fixture_design();
    let out = run(&[DIE, &["--json", design.to_str().unwrap()]].concat());
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out), golden("clean.json"));
}

#[test]
fn clean_design_sarif_matches_golden() {
    let design = fixture_design();
    let out = run(&[DIE, &["--sarif", design.to_str().unwrap()]].concat());
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out), golden("clean.sarif"));
}

#[test]
fn off_die_design_exits_one_with_golden_sarif() {
    let design = fixture_design();
    // A 1x1 die at the origin leaves every placement outside: geometry
    // errors at each node, exit code 1, and SARIF results with rules.
    let out = run(&[
        "--die",
        "0",
        "0",
        "1",
        "1",
        "--sarif",
        design.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(stdout(&out), golden("offdie.sarif"));
}

#[test]
fn scoped_run_restricts_and_deny_skipped_fires() {
    let design = fixture_design();
    // Scoped to one leaf: whole-design passes are skipped and recorded.
    let out = run(&[DIE, &["--scope", "0,1", design.to_str().unwrap()]].concat());
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(
        text.contains("skipped: [switched-cap]"),
        "skips must be surfaced in the report: {text}"
    );
    // The same run under --deny-skipped is a failure.
    let denied = run(&[
        DIE,
        &["--scope", "0,1", "--deny-skipped", design.to_str().unwrap()],
    ]
    .concat());
    assert_eq!(denied.status.code(), Some(1), "{}", stdout(&denied));
    assert!(stdout(&denied).contains("--deny-skipped"));
    // A full clean run under --deny-skipped stays green.
    let full = run(&[DIE, &["--deny-skipped", design.to_str().unwrap()]].concat());
    assert_eq!(full.status.code(), Some(0));
}

#[test]
fn list_lints_includes_the_determinism_pass() {
    let out = run(&["--list-lints"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for id in [
        "tree-structure",
        "geometry",
        "zero-skew",
        "activity-tables",
        "gating",
        "switched-cap",
        "determinism",
    ] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }
}

#[test]
fn usage_and_malformed_inputs_exit_two() {
    // No design file.
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no design file"));

    // Nonexistent path.
    let out = run(&["/nonexistent/never.design"]);
    assert_eq!(out.status.code(), Some(2));

    // Unknown option.
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"));

    // Conflicting formats.
    let out = run(&["--json", "--sarif", "x.design"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mutually exclusive"));

    // Unparsable values.
    for args in [
        &["--skew-tol", "abc", "x.design"][..],
        &["--scope", "1,x", "x.design"][..],
        &["--role", "diode", "x.design"][..],
        &["--die", "0", "0", "x.design"][..],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }

    // A file that is not a gcr-design.
    let bad = std::env::temp_dir().join(format!("gcr-verify-bad-{}.design", std::process::id()));
    std::fs::write(&bad, "not a design\n").unwrap();
    let out = run(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown header"));

    // A truncated design file.
    std::fs::write(&bad, "gcr-design v1\nsource 0 0\nsinks 4\n0 0 0.05\n").unwrap();
    let out = run(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    // Help is not an error.
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("usage: gcr-verify"));
}

#[test]
fn audit_smoke_is_deterministic_and_writes_sarif() {
    let dir = std::env::temp_dir().join(format!("gcr-verify-audit-{}", std::process::id()));
    let out = run(&[
        "audit",
        "--benchmarks",
        "r1",
        "--threads",
        "1,2",
        "--stream-len",
        "500",
        "--sarif-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("r1: 266 merges, 4 configs bit-identical, verify: 0 errors"),
        "unexpected audit summary: {text}"
    );
    let sarif = std::fs::read_to_string(dir.join("r1.sarif")).unwrap();
    assert!(sarif.contains("\"version\":\"2.1.0\""));

    // Malformed audit inputs exit 2.
    let out = run(&["audit", "--benchmarks", "r9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown benchmark"));
    let out = run(&["audit", "--threads", "two"]);
    assert_eq!(out.status.code(), Some(2));
}
