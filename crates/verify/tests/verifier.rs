//! End-to-end tests of the verifier: the routing flows in this workspace
//! must come out clean, and a deliberately corrupted design must trip the
//! specific pass guarding the broken invariant.
// Test code: unwrap/expect on infallible setup is idiomatic here, in
// helpers as well as in #[test] functions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{
    evaluate_with_mask, reduce_gates_untied, route_gated, ControllerPlan, DeviceRole,
    ReductionParams, RouterConfig,
};
use gcr_cts::{build_buffered_tree, ClockTree, Sink};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_verify::{Severity, Verifier, VerifyInput};
use gcr_workloads::{Benchmark, Workload, WorkloadParams};

fn workload(num_sinks: usize, seed: u64) -> Workload {
    let params = WorkloadParams {
        instructions: 8,
        stream_len: 2_000,
        ..WorkloadParams::default()
    };
    Workload::for_benchmark(Benchmark::uniform(num_sinks, 20_000.0, seed), &params)
        .expect("workload generation is infallible for uniform benchmarks")
}

fn assert_clean(report: &gcr_verify::VerifyReport) {
    assert!(
        !report.has_errors(),
        "expected a clean design, got:\n{}",
        report.render_text()
    );
}

fn assert_errors_from(report: &gcr_verify::VerifyReport, lint_id: &str) {
    assert!(
        report
            .by_lint(lint_id)
            .any(|d| d.severity == Severity::Error),
        "expected an Error from `{lint_id}`, got:\n{}",
        report.render_text()
    );
}

#[test]
fn buffered_baseline_is_clean() {
    let tech = Technology::default();
    let die = BBox::new(Point::new(0.0, 0.0), Point::new(20_000.0, 20_000.0));
    let sinks: Vec<Sink> = (0..9)
        .map(|i| {
            Sink::new(
                Point::new(f64::from(i % 3) * 9_000.0, f64::from(i / 3) * 9_000.0),
                0.05,
            )
        })
        .collect();
    let tree = build_buffered_tree(&tech, &sinks, die.center()).expect("routable");
    let input = VerifyInput::new(&tree, &tech)
        .with_role(DeviceRole::Buffer)
        .with_die(die);
    let report = Verifier::with_default_lints().run(&input);
    assert_clean(&report);
    assert_eq!(report.passes_run().len(), 7, "all passes must run");
}

#[test]
fn gated_routing_is_clean_including_activity_and_gating_passes() {
    let wl = workload(12, 7);
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), wl.benchmark.die);
    let routing = route_gated(&wl.benchmark.sinks, &wl.tables, &config).expect("routable");
    let input = VerifyInput::new(&routing.tree, &tech)
        .with_die(wl.benchmark.die)
        .with_tables(&wl.tables)
        .with_node_stats(&routing.node_stats)
        .with_controller(config.controller());
    let report = Verifier::with_default_lints().run(&input);
    assert_clean(&report);
}

#[test]
fn reduced_gating_mask_and_stored_report_are_clean() {
    let wl = workload(10, 11);
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), wl.benchmark.die);
    let routing = route_gated(&wl.benchmark.sinks, &wl.tables, &config).expect("routable");
    let star_len = wl.benchmark.die.half_perimeter() / 8.0;
    let mask = reduce_gates_untied(
        &routing,
        &tech,
        &ReductionParams::from_strength_scaled(0.5, &tech, star_len),
    );
    let stored = evaluate_with_mask(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &mask,
    );
    let input = VerifyInput::new(&routing.tree, &tech)
        .with_die(wl.benchmark.die)
        .with_node_stats(&routing.node_stats)
        .with_controller(config.controller())
        .with_controlled(&mask)
        .with_power_report(&stored);
    let report = Verifier::with_default_lints().run(&input);
    assert_clean(&report);
}

/// A small clean gated design plus the context needed to verify it; the
/// negative tests below corrupt one aspect each.
fn gated_fixture() -> (
    ClockTree,
    Technology,
    ControllerPlan,
    Vec<gcr_activity::EnableStats>,
    BBox,
) {
    let wl = workload(8, 3);
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), wl.benchmark.die);
    let routing = route_gated(&wl.benchmark.sinks, &wl.tables, &config).expect("routable");
    (
        routing.tree,
        tech,
        config.controller().clone(),
        routing.node_stats,
        wl.benchmark.die,
    )
}

#[test]
fn corrupted_sink_binding_trips_tree_structure_and_skips_electrical_passes() {
    let (tree, tech, ..) = gated_fixture();
    let (mut nodes, caps) = tree.to_raw_parts();
    // Bind two leaves to the same sink: the sink map is no longer a
    // bijection.
    let dup = nodes[0].sink.expect("leaf 0 carries a sink");
    nodes[1].sink = Some(dup);
    let bad = ClockTree::from_raw_parts(nodes, caps);
    let report = Verifier::with_default_lints().run(&VerifyInput::new(&bad, &tech));
    assert_errors_from(&report, "tree-structure");
    assert!(
        !report.passes_run().contains(&"zero-skew")
            && !report.passes_run().contains(&"switched-cap"),
        "electrical passes must not traverse a structurally broken tree"
    );
}

#[test]
fn shortened_wire_trips_geometry() {
    let (tree, tech, ..) = gated_fixture();
    let (mut nodes, caps) = tree.to_raw_parts();
    // Claim an electrical length shorter than the Manhattan distance the
    // wire must physically span.
    let victim = (0..nodes.len())
        .find(|&i| {
            nodes[i]
                .parent
                .is_some_and(|p| nodes[i].location.manhattan(nodes[p].location) > 1.0)
        })
        .expect("some edge spans a nonzero distance");
    nodes[victim].electrical_length = 0.0;
    let bad = ClockTree::from_raw_parts(nodes, caps);
    let report = Verifier::with_default_lints().run(&VerifyInput::new(&bad, &tech));
    assert_errors_from(&report, "geometry");
}

#[test]
fn snaked_leaf_edge_trips_zero_skew() {
    let (tree, tech, controller, stats, die) = gated_fixture();
    let (mut nodes, caps) = tree.to_raw_parts();
    // Extra snaking on one leaf edge delays that sink alone; the geometry
    // pass allows it (snaking is legal) but zero skew is gone.
    nodes[0].electrical_length += 2_000.0;
    let bad = ClockTree::from_raw_parts(nodes, caps);
    let input = VerifyInput::new(&bad, &tech)
        .with_die(die)
        .with_node_stats(&stats)
        .with_controller(&controller);
    let report = Verifier::with_default_lints().run(&input);
    assert!(
        report.by_lint("geometry").count() == 0,
        "snaking alone is geometrically legal:\n{}",
        report.render_text()
    );
    assert_errors_from(&report, "zero-skew");
}

#[test]
fn impossible_transition_probability_trips_activity_tables() {
    let (tree, tech, controller, mut stats, die) = gated_fixture();
    // P_tr(EN) = 0.9 with P(EN) = 0.01 violates the stationary bound
    // P_tr <= 2*min(P, 1-P): a signal that is almost never 1 cannot
    // toggle nearly every cycle.
    let root = tree.root().index();
    stats[root].transition = 0.9;
    for s in &mut stats {
        s.signal = s.signal.min(0.01);
    }
    let input = VerifyInput::new(&tree, &tech)
        .with_die(die)
        .with_node_stats(&stats)
        .with_controller(&controller);
    let report = Verifier::with_default_lints().run(&input);
    assert_errors_from(&report, "activity-tables");
}

#[test]
fn controlled_gates_without_a_star_plan_trip_gating() {
    let (tree, tech, _, stats, die) = gated_fixture();
    // Every edge claims a controlled gate, but no controller plan exists
    // to route the enables.
    let input = VerifyInput::new(&tree, &tech)
        .with_die(die)
        .with_node_stats(&stats);
    let report = Verifier::with_default_lints().run(&input);
    assert_errors_from(&report, "gating");
}

#[test]
fn mask_pointing_at_a_missing_gate_trips_gating() {
    let (tree, tech, controller, stats, die) = gated_fixture();
    let (mut nodes, caps) = tree.to_raw_parts();
    // Remove one gate but leave it marked as controlled: the enable net
    // now drives nothing.
    let victim = (0..nodes.len())
        .find(|&i| nodes[i].device.is_some())
        .expect("gated tree has devices");
    nodes[victim].device = None;
    let bad = ClockTree::from_raw_parts(nodes, caps);
    let input = VerifyInput::new(&bad, &tech)
        .with_die(die)
        .with_node_stats(&stats)
        .with_controller(&controller);
    let report = Verifier::with_default_lints().run(&input);
    assert_errors_from(&report, "gating");
}

#[test]
fn falsified_power_report_trips_switched_cap() {
    let (tree, tech, controller, stats, die) = gated_fixture();
    let mut stored = evaluate_with_mask(&tree, &stats, &controller, &tech, &vec![true; tree.len()]);
    stored.total_switched_cap *= 0.5;
    let input = VerifyInput::new(&tree, &tech)
        .with_die(die)
        .with_node_stats(&stats)
        .with_controller(&controller)
        .with_power_report(&stored);
    let report = Verifier::with_default_lints().run(&input);
    assert_errors_from(&report, "switched-cap");
}

#[test]
fn switched_cap_rederivation_agrees_with_evaluate_on_many_masks() {
    // The first-principles W recomputation inside the switched-cap pass
    // must agree with gcr-core::evaluate for *any* mask, not just the
    // all-gated one; sweep reduction strengths to vary the mask.
    let wl = workload(10, 5);
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), wl.benchmark.die);
    let routing = route_gated(&wl.benchmark.sinks, &wl.tables, &config).expect("routable");
    let star_len = wl.benchmark.die.half_perimeter() / 8.0;
    for strength in [0.0, 0.2, 0.5, 0.9] {
        let mask = reduce_gates_untied(
            &routing,
            &tech,
            &ReductionParams::from_strength_scaled(strength, &tech, star_len),
        );
        let input = VerifyInput::new(&routing.tree, &tech)
            .with_node_stats(&routing.node_stats)
            .with_controller(config.controller())
            .with_controlled(&mask);
        let report = Verifier::with_default_lints().run(&input);
        assert!(
            report.by_lint("switched-cap").count() == 0,
            "strength {strength}:\n{}",
            report.render_text()
        );
    }
}
