//! The scoped-verification oracle: a scoped run must report **exactly**
//! the diagnostics a full run reports at locations the scope covers —
//! on clean designs, on deliberately corrupted ones, on random dirty
//! sets, and on the r1–r5 reference benchmarks.
// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{route_gated, ControllerPlan, RouterConfig};
use gcr_cts::{build_buffered_tree, ClockTree, Sink};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_verify::{Diagnostic, Scope, Verifier, VerifyInput, VerifyReport};
use gcr_workloads::{Benchmark, TsayBenchmark, Workload, WorkloadParams};

/// The oracle predicate itself: run full, run scoped, and demand the
/// scoped diagnostics equal the full run's restricted to the scope
/// (same findings, same order).
fn assert_scoped_oracle(verifier: &Verifier, input: &VerifyInput<'_>, scope: Scope) {
    let full = verifier.run(input);
    let scoped = verifier.run(&input.clone().with_scope(scope.clone()));
    let restricted: Vec<Diagnostic> = full
        .diagnostics()
        .iter()
        .filter(|d| scope.covers(&d.location))
        .cloned()
        .collect();
    assert_eq!(
        scoped.diagnostics(),
        restricted.as_slice(),
        "scope {scope} violated the oracle\nfull:\n{}\nscoped:\n{}",
        full.render_text(),
        scoped.render_text(),
    );
}

/// A dirty set derived deterministically from `seed`: roughly one node
/// in three, never empty for nonempty trees.
fn seeded_dirty_set(len: usize, seed: u64) -> Scope {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut nodes = Vec::new();
    for i in 0..len {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        if state.is_multiple_of(3) {
            nodes.push(i);
        }
    }
    if nodes.is_empty() && len > 0 {
        nodes.push(seed as usize % len);
    }
    Scope::nodes(nodes)
}

fn grid_sinks(n: usize, pitch: f64) -> Vec<Sink> {
    (0..n)
        .map(|i| {
            let (r, c) = (i / 4, i % 4);
            Sink::new(
                Point::new(c as f64 * pitch, r as f64 * pitch),
                0.03 + 0.01 * (i % 5) as f64,
            )
        })
        .collect()
}

#[test]
fn subtree_scope_collects_the_whole_subtree() {
    let tech = Technology::default();
    let sinks = grid_sinks(8, 500.0);
    let tree = build_buffered_tree(&tech, &sinks, Point::new(750.0, 500.0)).unwrap();
    let root = tree.root().index();
    let all = Scope::subtree(&tree, root);
    assert_eq!(
        all.nodes_in(tree.len()).count(),
        tree.len(),
        "the root's subtree is the whole tree"
    );
    // A leaf's subtree is itself.
    assert_eq!(Scope::subtree(&tree, 0), Scope::nodes([0]));
    // An internal node's subtree contains it and both children.
    let k = tree.len() - 1;
    let kids = tree.node(tree.id(k)).children().to_vec();
    let sub = Scope::subtree(&tree, k);
    assert!(sub.contains_node(k));
    for ch in kids {
        assert!(sub.contains_node(ch.index()));
    }
}

#[test]
fn whole_design_passes_are_skipped_and_recorded_under_partial_scope() {
    let tech = Technology::default();
    let sinks = grid_sinks(8, 500.0);
    let tree = build_buffered_tree(&tech, &sinks, Point::new(750.0, 500.0)).unwrap();
    let input = VerifyInput::new(&tree, &tech).with_scope(Scope::nodes([0, 1, 2]));
    let report = Verifier::with_default_lints().run(&input);
    assert!(
        !report.passes_run().contains(&"switched-cap"),
        "switched-cap only produces whole-design findings"
    );
    assert!(
        report
            .skipped()
            .iter()
            .any(|s| s.id == "switched-cap" && s.reason.contains("partial scope")),
        "the skip must be recorded with its reason, got {:?}",
        report.skipped()
    );
    // The full run, by contrast, runs everything and skips nothing.
    let full = Verifier::with_default_lints().run(&VerifyInput::new(&tree, &tech));
    assert_eq!(full.passes_run().len(), 7);
    assert!(full.skipped().is_empty());
}

#[test]
fn scoped_oracle_holds_on_clean_and_corrupted_grids() {
    let tech = Technology::default();
    let verifier = Verifier::with_default_lints();
    let sinks = grid_sinks(12, 700.0);
    let die = BBox::new(Point::new(-100.0, -100.0), Point::new(3_000.0, 3_000.0));
    let controller = ControllerPlan::Centralized {
        location: die.center(),
    };
    let tree = build_buffered_tree(&tech, &sinks, die.center()).unwrap();

    let corruptions: Vec<ClockTree> = vec![
        tree.clone(),
        {
            // Negative snaking on an internal edge: geometry error.
            let (mut nodes, caps) = tree.to_raw_parts();
            let victim = nodes.len() - 2;
            nodes[victim].electrical_length = 0.0;
            ClockTree::from_raw_parts(nodes, caps)
        },
        {
            // Extra snaking on a leaf edge: zero-skew error at a sink.
            let (mut nodes, caps) = tree.to_raw_parts();
            nodes[3].electrical_length += 5_000.0;
            ClockTree::from_raw_parts(nodes, caps)
        },
        {
            // Duplicate sink binding: structure error, electrical passes
            // skipped in full AND scoped runs alike.
            let (mut nodes, caps) = tree.to_raw_parts();
            let dup = nodes[0].sink.unwrap();
            nodes[1].sink = Some(dup);
            ClockTree::from_raw_parts(nodes, caps)
        },
        {
            // A node placed off-die.
            let (mut nodes, caps) = tree.to_raw_parts();
            let victim = nodes.len() - 3;
            nodes[victim].location = Point::new(1e7, 1e7);
            ClockTree::from_raw_parts(nodes, caps)
        },
    ];
    for (ci, bad) in corruptions.iter().enumerate() {
        let input = VerifyInput::new(bad, &tech)
            .with_die(die)
            .with_controller(&controller);
        for seed in 0..8u64 {
            assert_scoped_oracle(
                &verifier,
                &input,
                seeded_dirty_set(bad.len(), seed ^ ci as u64),
            );
        }
        for root in [0, bad.len() / 2, bad.len() - 1] {
            assert_scoped_oracle(&verifier, &input, Scope::subtree(bad, root));
        }
    }
}

#[test]
fn scoped_oracle_holds_on_gated_routings_with_full_context() {
    // The gated flow exercises every pass: activity tables, node stats,
    // controller, decision log — the richest input the verifier sees.
    let params = WorkloadParams {
        instructions: 8,
        stream_len: 2_000,
        ..WorkloadParams::default()
    };
    let wl = Workload::for_benchmark(Benchmark::uniform(14, 20_000.0, 9), &params).unwrap();
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), wl.benchmark.die);
    let routing = route_gated(&wl.benchmark.sinks, &wl.tables, &config).unwrap();
    let input = VerifyInput::new(&routing.tree, config.tech())
        .with_die(config.die())
        .with_tables(&wl.tables)
        .with_node_stats(&routing.node_stats)
        .with_controller(config.controller());
    let verifier = Verifier::with_default_lints();
    for seed in 0..12u64 {
        assert_scoped_oracle(
            &verifier,
            &input,
            seeded_dirty_set(routing.tree.len(), seed),
        );
    }
}

#[test]
fn scoped_oracle_holds_on_tsay_benchmarks() {
    // r1–r5 as buffered baselines (the verify oracle is agnostic to how
    // the topology was chosen, and the gated objective's scoped behavior
    // is covered above at tractable debug-build sizes).
    let tech = Technology::default();
    let verifier = Verifier::with_default_lints();
    for which in TsayBenchmark::ALL {
        let bench = Benchmark::tsay(which, 1998);
        let tree = build_buffered_tree(&tech, &bench.sinks, bench.die.center()).unwrap();
        let input = VerifyInput::new(&tree, &tech).with_die(bench.die);
        assert_scoped_oracle(&verifier, &input, seeded_dirty_set(tree.len(), 42));
        assert_scoped_oracle(&verifier, &input, Scope::subtree(&tree, tree.len() - 2));
        // And a corrupted variant so the restriction is non-trivial.
        let (mut nodes, caps) = tree.to_raw_parts();
        nodes[5].electrical_length += 10_000.0;
        let bad = ClockTree::from_raw_parts(nodes, caps);
        let bad_input = VerifyInput::new(&bad, &tech).with_die(bench.die);
        assert_scoped_oracle(&verifier, &bad_input, seeded_dirty_set(bad.len(), 7));
    }
}

mod random_trees {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The headline property: for random sink sets and random dirty
        /// sets, scoped == full restricted to the scope.
        #[test]
        fn scoped_equals_full_restricted(
            raw in prop::collection::vec(
                (0.0..10_000.0f64, 0.0..10_000.0f64, 0.01..0.2f64),
                2..24,
            ),
            seed in 0u64..10_000,
        ) {
            let tech = Technology::default();
            let sinks: Vec<Sink> = raw
                .into_iter()
                .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
                .collect();
            let die = BBox::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0));
            let tree = build_buffered_tree(&tech, &sinks, die.center()).unwrap();
            // Half the cases run clean, half with a corrupted edge so
            // the oracle sees real diagnostics on both sides.
            let tree = if seed % 2 == 0 {
                tree
            } else {
                let (mut nodes, caps) = tree.to_raw_parts();
                let victim = seed as usize % nodes.len();
                nodes[victim].electrical_length += 3_000.0;
                ClockTree::from_raw_parts(nodes, caps)
            };
            let input = VerifyInput::new(&tree, &tech).with_die(die);
            let verifier = Verifier::with_default_lints();
            let full = verifier.run(&input);
            let scope = seeded_dirty_set(tree.len(), seed);
            let scoped = verifier.run(&input.clone().with_scope(scope.clone()));
            let restricted: Vec<Diagnostic> = full
                .diagnostics()
                .iter()
                .filter(|d| scope.covers(&d.location))
                .cloned()
                .collect();
            prop_assert_eq!(scoped.diagnostics(), restricted.as_slice());
        }
    }
}

#[test]
fn verify_each_merge_is_clean_on_a_clean_tree_and_finds_a_planted_bug() {
    let tech = Technology::default();
    let sinks = grid_sinks(10, 600.0);
    let tree = build_buffered_tree(&tech, &sinks, Point::new(900.0, 600.0)).unwrap();
    let clean = gcr_verify::verify_each_merge(&VerifyInput::new(&tree, &tech));
    assert!(
        !clean.has_errors(),
        "per-merge shadow verification of a clean tree:\n{}",
        clean.render_text()
    );
    assert!(clean.passes_run().contains(&"geometry"));

    let (mut nodes, caps) = tree.to_raw_parts();
    let victim = nodes.len() - 2;
    nodes[victim].location = Point::new(f64::NAN, 0.0);
    let bad = ClockTree::from_raw_parts(nodes, caps);
    let caught = gcr_verify::verify_each_merge(&VerifyInput::new(&bad, &tech));
    assert!(
        caught
            .diagnostics()
            .iter()
            .any(|d| d.code() == "GCR-GE01" && d.location == gcr_verify::Location::Node(victim)),
        "the NaN placement must surface from the merge frontier scope:\n{}",
        caught.render_text()
    );
}

#[test]
fn report_is_a_verify_report_with_skips_surfaced() {
    // Regression anchor for the satellite: VerifyReport surfaces skipped
    // passes itself, not only as trace warnings.
    let tech = Technology::default();
    let sinks = grid_sinks(6, 400.0);
    let tree = build_buffered_tree(&tech, &sinks, Point::new(600.0, 200.0)).unwrap();
    let (mut nodes, caps) = tree.to_raw_parts();
    let dup = nodes[0].sink.unwrap();
    nodes[1].sink = Some(dup);
    let bad = ClockTree::from_raw_parts(nodes, caps);
    let report: VerifyReport = Verifier::with_default_lints().run(&VerifyInput::new(&bad, &tech));
    assert!(report.has_errors());
    let ids: Vec<&str> = report.skipped().iter().map(|s| s.id).collect();
    assert_eq!(ids, ["zero-skew", "switched-cap"]);
    assert!(report.skipped()[0].reason.contains("structure is broken"));
    assert!(report.render_text().contains("2 skipped"));
}
