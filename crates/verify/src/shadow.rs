//! Online shadow verification: re-running the scoped verifier over every
//! merge's dirty subtree, the heavyweight companion to the in-loop
//! micro-checks `gcr-cts` compiles in under its `shadow-invariants`
//! feature.
//!
//! A committed merge dirties exactly three nodes: the new internal node
//! and the two subtree roots it joined (everything below them was
//! already verified when *their* merges committed). Walking the merge
//! sequence and verifying each frontier with a
//! [`Scope::nodes`](crate::Scope::nodes) dirty set is therefore a full
//! structural audit of the construction, pass by pass, at incremental
//! cost per step.

use crate::diag::{Diagnostic, SkippedPass, VerifyReport};
use crate::input::VerifyInput;
use crate::lint::Verifier;
use crate::scope::Scope;

/// Verifies every merge's dirty frontier of `input.tree` with the
/// default lints, one scoped run per internal node, and aggregates the
/// findings into a single deduplicated report.
///
/// When `input` carries a decision log, the frontiers are taken from the
/// log (node plus its two logged partners); otherwise they are read off
/// the embedded tree's children. The per-merge scope is the three-node
/// dirty set `{a, b, node}`, matching what `run_greedy_checked`'s
/// shadow path re-verifies after each commit.
///
/// The aggregate's `passes_run` is the union over the scoped runs, and
/// skips are deduplicated by pass id. Note that whole-design passes are
/// always skipped here (every scope is partial); this function audits
/// node-anchored invariants and is a complement to — not a substitute
/// for — one full-scope [`Verifier::run`].
#[must_use]
pub fn verify_each_merge(input: &VerifyInput<'_>) -> VerifyReport {
    let tree = input.tree;
    let s = tree.num_sinks();
    let verifier = Verifier::with_default_lints();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut passes_run: Vec<&'static str> = Vec::new();
    let mut skipped: Vec<SkippedPass> = Vec::new();
    for k in s..tree.len() {
        let frontier: Vec<usize> = match input.decision_log {
            Some(log) if k >= s && k - s < log.len() => {
                let d = &log[k - s];
                vec![d.a as usize, d.b as usize, k]
            }
            _ => {
                let mut f: Vec<usize> = tree
                    .node(tree.id(k))
                    .children()
                    .iter()
                    .map(|ch| ch.index())
                    .collect();
                f.push(k);
                f
            }
        };
        let scoped = input.clone().with_scope(Scope::nodes(frontier));
        let report = verifier.run(&scoped);
        for d in report.diagnostics() {
            if !diagnostics.contains(d) {
                diagnostics.push(d.clone());
            }
        }
        for p in report.passes_run() {
            if !passes_run.contains(p) {
                passes_run.push(p);
            }
        }
        for sk in report.skipped() {
            if !skipped.iter().any(|prev| prev.id == sk.id) {
                skipped.push(sk.clone());
            }
        }
    }
    VerifyReport::new(diagnostics, passes_run, skipped)
}
