//! `gcr-verify`: static verification of a saved gated-clock-tree design.
//!
//! Loads a `gcr-design v1` file (see `gcr-cts::design_io`), re-embeds it
//! under the default technology, runs the full lint deck, and prints the
//! findings. Exits `0` when the design is clean, `1` when any
//! error-severity diagnostic fires (or a pass was skipped under
//! `--deny-skipped`), `2` on usage or load failure.
//!
//! The `audit` subcommand is the determinism harness: it replays the
//! r1–r5 reference benchmarks through the Equation-3 greedy router
//! across thread counts and traced/untraced configurations, records the
//! decision log of every run, and fails unless all logs are
//! bit-identical and the routed trees verify clean. The scale
//! benchmarks (r6–r8) can be requested by name; they route through the
//! hierarchical coarsening engine, whose decision logs are audited with
//! exactly the same machinery (they are sequential and canonical, like
//! the flat engine's).

use std::process::ExitCode;
use std::sync::Arc;

use gcr_core::{gated_region_factory, ControllerPlan, DeviceRole, GatedObjective};
use gcr_cts::{
    canonical_decision_log, embed, embed_sized, load_design, run_greedy_coarsened_traced,
    run_greedy_with_scratch_traced, CoarsenParams, CoarsenScratch, DeviceAssignment, GreedyParams,
    GreedyScratch, MergeObjective, SizingLimits,
};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_trace::{MemorySink, Tracer};
use gcr_verify::{Scope, Verifier, VerifyInput};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

const USAGE: &str = "\
usage: gcr-verify [options] <design-file>
       gcr-verify audit [audit-options]

Statically verifies a gcr-design v1 file: tree structure, geometry,
zero skew, gating consistency, and switched-capacitance accounting.

options:
  --json                 emit the report as JSON instead of text
  --sarif                emit the report as SARIF 2.1.0 instead of text
  --deny-skipped         exit nonzero when any pass was skipped
  --scope N,N,...        verify only the given dirty node indices
                         (whole-design passes are skipped and recorded)
  --die X0 Y0 X1 Y1      die outline; default: bounding box of the design
  --skew-tol PS          allowed sink-to-sink skew in ps (default 1e-6)
  --role gate|buffer     how edge devices are accounted (default gate)
  --list-lints           print the registered passes and exit
  -h, --help             print this help

audit-options:
  --benchmarks r1,r2,..  benchmarks to replay, r1..r8 (default r1,r2,r3,r4,r5;
                         r6-r8 are the coarsened scale benchmarks)
  --threads 1,2,4,8      GCR_THREADS values to sweep (default 1,2,4,8)
  --stream-len N         activity stream length (default 2000)
  --sarif-dir DIR        write one SARIF report per benchmark into DIR
";

struct Options {
    path: Option<String>,
    json: bool,
    sarif: bool,
    deny_skipped: bool,
    die: Option<BBox>,
    skew_tol: Option<f64>,
    role: DeviceRole,
    list_lints: bool,
    scope: Option<Vec<usize>>,
}

struct AuditOptions {
    benchmarks: Vec<TsayBenchmark>,
    threads: Vec<usize>,
    stream_len: usize,
    sarif_dir: Option<String>,
}

fn take_f64(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<f64>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        path: None,
        json: false,
        sarif: false,
        deny_skipped: false,
        die: None,
        skew_tol: None,
        role: DeviceRole::Gate,
        list_lints: false,
        scope: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--deny-skipped" => opts.deny_skipped = true,
            "--scope" => {
                let value = args.next().ok_or("--scope needs a value")?;
                opts.scope = Some(
                    value
                        .split(',')
                        .map(|n| n.parse::<usize>().map_err(|e| format!("--scope: {e}")))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--list-lints" => opts.list_lints = true,
            "--skew-tol" => opts.skew_tol = Some(take_f64(&mut args, "--skew-tol")?),
            "--die" => {
                let x0 = take_f64(&mut args, "--die")?;
                let y0 = take_f64(&mut args, "--die")?;
                let x1 = take_f64(&mut args, "--die")?;
                let y1 = take_f64(&mut args, "--die")?;
                opts.die = Some(BBox::new(Point::new(x0, y0), Point::new(x1, y1)));
            }
            "--role" => {
                let value = args.next().ok_or("--role needs gate|buffer")?;
                opts.role = match value.as_str() {
                    "gate" => DeviceRole::Gate,
                    "buffer" => DeviceRole::Buffer,
                    other => return Err(format!("--role must be gate or buffer, got {other}")),
                };
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            _ if opts.path.is_none() => opts.path = Some(arg),
            _ => return Err("more than one design file given".into()),
        }
    }
    if opts.json && opts.sarif {
        return Err("--json and --sarif are mutually exclusive".into());
    }
    Ok(opts)
}

fn parse_audit_args(mut args: impl Iterator<Item = String>) -> Result<AuditOptions, String> {
    let mut opts = AuditOptions {
        benchmarks: TsayBenchmark::ALL.to_vec(),
        threads: vec![1, 2, 4, 8],
        stream_len: 2_000,
        sarif_dir: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--benchmarks" => {
                let value = args.next().ok_or("--benchmarks needs a value")?;
                opts.benchmarks = value
                    .split(',')
                    .map(|name| {
                        TsayBenchmark::ALL
                            .into_iter()
                            .chain(TsayBenchmark::SCALED)
                            .find(|b| b.name() == name)
                            .ok_or_else(|| format!("unknown benchmark {name}; expected r1..r8"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                opts.threads = value
                    .split(',')
                    .map(|t| t.parse::<usize>().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
                if opts.threads.is_empty() {
                    return Err("--threads needs at least one value".into());
                }
            }
            "--stream-len" => {
                let value = args.next().ok_or("--stream-len needs a value")?;
                opts.stream_len = value
                    .parse::<usize>()
                    .map_err(|e| format!("--stream-len: {e}"))?;
            }
            "--sarif-dir" => {
                opts.sarif_dir = Some(args.next().ok_or("--sarif-dir needs a value")?);
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown audit option {other}")),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let args: Vec<String> = args.collect();
    if args.first().map(String::as_str) == Some("audit") {
        let opts = parse_audit_args(args.into_iter().skip(1))?;
        return run_audit(&opts);
    }
    let opts = parse_args(args.into_iter())?;
    let verifier = Verifier::with_default_lints();
    if opts.list_lints {
        for lint in verifier.lints() {
            println!("{:<16} {}", lint.id(), lint.description());
        }
        return Ok(true);
    }
    let Some(path) = opts.path else {
        return Err("no design file given".into());
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let design = load_design(&text).map_err(|e| format!("{path}: {e}"))?;
    let tech = Technology::default();
    let tree = embed(
        &design.topology,
        &design.sinks,
        &tech,
        &design.assignment,
        design.source,
    )
    .map_err(|e| format!("{path}: embedding failed: {e}"))?;

    // Die outline: explicit, or the extent of everything placed.
    let die = opts.die.or_else(|| {
        BBox::of_points(
            tree.ids()
                .map(|id| tree.node(id).location())
                .chain(std::iter::once(design.source)),
        )
    });
    // The paper's centralized controller sits at the center of the chip.
    let controller = ControllerPlan::Centralized {
        location: die.map_or(design.source, |d| d.center()),
    };

    let mut input = VerifyInput::new(&tree, &tech)
        .with_role(opts.role)
        .with_controller(&controller);
    if let Some(die) = die {
        input = input.with_die(die);
    }
    if let Some(tol) = opts.skew_tol {
        input = input.with_skew_tolerance_ps(tol);
    }
    if let Some(nodes) = opts.scope {
        input = input.with_scope(Scope::nodes(nodes));
    }

    let report = verifier.run(&input);
    if opts.json {
        println!("{}", report.render_json());
    } else if opts.sarif {
        println!("{}", report.render_sarif());
    } else {
        print!("{}", report.render_text());
    }
    let denied = opts.deny_skipped && !report.skipped().is_empty();
    if denied && !opts.json && !opts.sarif {
        println!(
            "--deny-skipped: {} pass(es) were skipped",
            report.skipped().len()
        );
    }
    Ok(!report.has_errors() && !denied)
}

/// Sink counts above this audit through the hierarchical coarsening
/// engine instead of the flat greedy (matches `greedy_bench`'s scale
/// cutover).
const COARSEN_AUDIT_LIMIT: usize = 10_000;

/// Replays one benchmark through the gated greedy router under `params`,
/// returning the canonical decision log. `region_factory` is consulted
/// only above [`COARSEN_AUDIT_LIMIT`] sinks, where the run goes through
/// the coarsening engine.
fn replay<'a, F>(
    base: &GatedObjective<'a>,
    num_sinks: usize,
    params: &GreedyParams,
    region_factory: &F,
    tracer: &Tracer,
) -> Result<(gcr_cts::Topology, Vec<gcr_cts::MergeDecision>), String>
where
    F: Fn(&[u32]) -> GatedObjective<'a> + Sync,
{
    let mut objective = base.clone();
    if num_sinks > COARSEN_AUDIT_LIMIT {
        let mut scratch = CoarsenScratch::new();
        let coarsen = CoarsenParams {
            greedy: *params,
            target_region_size: 0,
        };
        let (topology, _, _) = run_greedy_coarsened_traced(
            num_sinks,
            &mut objective,
            region_factory,
            &coarsen,
            &mut scratch,
            tracer,
        )
        .map_err(|e| format!("coarsened greedy route failed: {e}"))?;
        Ok((topology, scratch.take_decisions()))
    } else {
        let mut scratch = GreedyScratch::new();
        let (topology, _, _) =
            run_greedy_with_scratch_traced(num_sinks, &mut objective, params, &mut scratch, tracer)
                .map_err(|e| format!("greedy route failed: {e}"))?;
        Ok((topology, scratch.take_decisions()))
    }
}

fn run_audit(opts: &AuditOptions) -> Result<bool, String> {
    let tech = Technology::default();
    let params = WorkloadParams::smoke().with_stream_len(opts.stream_len);
    if let Some(dir) = &opts.sarif_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    let mut all_ok = true;
    for &which in &opts.benchmarks {
        let workload =
            Workload::generate(which, &params).map_err(|e| format!("{}: {e}", which.name()))?;
        let sinks = &workload.benchmark.sinks;
        let die = workload.benchmark.die;
        let controller = ControllerPlan::Centralized {
            location: die.center(),
        };
        let module_of = workload.module_of();
        let base = GatedObjective::new(&tech, &controller, &workload.tables, sinks, &module_of);
        let factory = gated_region_factory(&tech, &controller, &workload.tables, sinks, &module_of);

        // The baseline: single-threaded, untraced.
        let greedy = |threads: usize| GreedyParams {
            threads: Some(threads),
            log_decisions: true,
        };
        let (topology, baseline) = replay(
            &base,
            sinks.len(),
            &greedy(opts.threads[0]),
            &factory,
            &Tracer::disabled(),
        )?;
        let baseline_log = canonical_decision_log(&baseline);
        let mut divergent = 0usize;
        let mut configs = 1usize;
        for &threads in &opts.threads {
            for traced in [false, true] {
                if threads == opts.threads[0] && !traced {
                    continue; // the baseline itself
                }
                let tracer = if traced {
                    Tracer::new(Arc::new(MemorySink::new()))
                } else {
                    Tracer::disabled()
                };
                let (_, log) = replay(&base, sinks.len(), &greedy(threads), &factory, &tracer)?;
                configs += 1;
                if canonical_decision_log(&log) != baseline_log {
                    divergent += 1;
                    eprintln!(
                        "gcr-verify audit: {}: decision log diverges at threads={threads} \
                         traced={traced}",
                        which.name()
                    );
                }
            }
        }

        // Verify the baseline routing end to end, decision log included.
        let assignment = DeviceAssignment::everywhere(&topology, tech.and_gate());
        let tree = embed_sized(
            &topology,
            sinks,
            &tech,
            &assignment,
            die.center(),
            SizingLimits::default(),
        )
        .map_err(|e| format!("{}: embedding failed: {e}", which.name()))?;
        let mut objective = base.clone();
        for d in &baseline {
            objective
                .merge(d.a as usize, d.b as usize, d.node as usize)
                .map_err(|e| format!("{}: replaying log failed: {e}", which.name()))?;
        }
        let node_stats = objective.node_stats();
        let report = Verifier::with_default_lints().run(
            &VerifyInput::new(&tree, &tech)
                .with_die(die)
                .with_controller(&controller)
                .with_tables(&workload.tables)
                .with_node_stats(&node_stats)
                .with_decision_log(&baseline),
        );
        if let Some(dir) = &opts.sarif_dir {
            let path = format!("{dir}/{}.sarif", which.name());
            std::fs::write(&path, report.render_sarif()).map_err(|e| format!("{path}: {e}"))?;
        }
        let errors = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity == gcr_verify::Severity::Error)
            .count();
        let ok = divergent == 0 && errors == 0;
        all_ok &= ok;
        println!(
            "{}: {} merges, {configs} configs {}, verify: {errors} errors{}",
            which.name(),
            baseline.len(),
            if divergent == 0 {
                "bit-identical".to_string()
            } else {
                format!("with {divergent} divergent")
            },
            if ok { "" } else { " [FAIL]" },
        );
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("gcr-verify: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
