//! `gcr-verify`: static verification of a saved gated-clock-tree design.
//!
//! Loads a `gcr-design v1` file (see `gcr-cts::design_io`), re-embeds it
//! under the default technology, runs the full lint deck, and prints the
//! findings. Exits `0` when the design is clean, `1` when any
//! error-severity diagnostic fires, `2` on usage or load failure.

use std::process::ExitCode;

use gcr_core::{ControllerPlan, DeviceRole};
use gcr_cts::{embed, load_design};
use gcr_geometry::{BBox, Point};
use gcr_rctree::Technology;
use gcr_verify::{Verifier, VerifyInput};

const USAGE: &str = "\
usage: gcr-verify [options] <design-file>

Statically verifies a gcr-design v1 file: tree structure, geometry,
zero skew, gating consistency, and switched-capacitance accounting.

options:
  --json                 emit the report as JSON instead of text
  --die X0 Y0 X1 Y1      die outline; default: bounding box of the design
  --skew-tol PS          allowed sink-to-sink skew in ps (default 1e-6)
  --role gate|buffer     how edge devices are accounted (default gate)
  --list-lints           print the registered passes and exit
  -h, --help             print this help
";

struct Options {
    path: Option<String>,
    json: bool,
    die: Option<BBox>,
    skew_tol: Option<f64>,
    role: DeviceRole,
    list_lints: bool,
}

fn take_f64(args: &mut std::env::Args, flag: &str) -> Result<f64, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<f64>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let _argv0 = args.next();
    let mut opts = Options {
        path: None,
        json: false,
        die: None,
        skew_tol: None,
        role: DeviceRole::Gate,
        list_lints: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-lints" => opts.list_lints = true,
            "--skew-tol" => opts.skew_tol = Some(take_f64(&mut args, "--skew-tol")?),
            "--die" => {
                let x0 = take_f64(&mut args, "--die")?;
                let y0 = take_f64(&mut args, "--die")?;
                let x1 = take_f64(&mut args, "--die")?;
                let y1 = take_f64(&mut args, "--die")?;
                opts.die = Some(BBox::new(Point::new(x0, y0), Point::new(x1, y1)));
            }
            "--role" => {
                let value = args.next().ok_or("--role needs gate|buffer")?;
                opts.role = match value.as_str() {
                    "gate" => DeviceRole::Gate,
                    "buffer" => DeviceRole::Buffer,
                    other => return Err(format!("--role must be gate or buffer, got {other}")),
                };
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            _ if opts.path.is_none() => opts.path = Some(arg),
            _ => return Err("more than one design file given".into()),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_args(std::env::args())?;
    let verifier = Verifier::with_default_lints();
    if opts.list_lints {
        for lint in verifier.lints() {
            println!("{:<16} {}", lint.id(), lint.description());
        }
        return Ok(true);
    }
    let Some(path) = opts.path else {
        return Err("no design file given".into());
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let design = load_design(&text).map_err(|e| format!("{path}: {e}"))?;
    let tech = Technology::default();
    let tree = embed(
        &design.topology,
        &design.sinks,
        &tech,
        &design.assignment,
        design.source,
    )
    .map_err(|e| format!("{path}: embedding failed: {e}"))?;

    // Die outline: explicit, or the extent of everything placed.
    let die = opts.die.or_else(|| {
        BBox::of_points(
            tree.ids()
                .map(|id| tree.node(id).location())
                .chain(std::iter::once(design.source)),
        )
    });
    // The paper's centralized controller sits at the center of the chip.
    let controller = ControllerPlan::Centralized {
        location: die.map_or(design.source, |d| d.center()),
    };

    let mut input = VerifyInput::new(&tree, &tech)
        .with_role(opts.role)
        .with_controller(&controller);
    if let Some(die) = die {
        input = input.with_die(die);
    }
    if let Some(tol) = opts.skew_tol {
        input = input.with_skew_tolerance_ps(tol);
    }

    let report = verifier.run(&input);
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(!report.has_errors())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("gcr-verify: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
