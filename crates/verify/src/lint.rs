//! The `Lint` trait and the pass registry that runs lints over a design.

use crate::diag::{Diagnostic, SkippedPass, VerifyReport};
use crate::input::VerifyInput;
use crate::passes;

/// One static-analysis pass over a design.
///
/// A lint inspects the [`VerifyInput`] and appends [`Diagnostic`]s; it
/// must not mutate anything and must tolerate missing optional context by
/// checking less (not by erroring).
///
/// # Scoped runs
///
/// When `input.scope` is a partial [`Scope`](crate::Scope), the
/// [`Verifier`] filters each pass's findings down to locations the scope
/// covers, so a pass is always *correct* without scope-awareness. A pass
/// may additionally restrict its own iteration to
/// `input.scope.nodes_in(..)` to make scoped runs cheap, as long as every
/// in-scope finding is still produced. Passes whose invariants are
/// inherently whole-design (their findings anchor at `Design`/`Table`
/// locations a partial scope never covers) should return `true` from
/// [`Lint::whole_design_only`]; the verifier then skips them under a
/// partial scope and records the skip in the report.
pub trait Lint {
    /// Stable machine-readable id, also used as the diagnostic `lint_id`
    /// (e.g. `"zero-skew"`).
    fn id(&self) -> &'static str;

    /// One-line human description of what the pass checks.
    fn description(&self) -> &'static str;

    /// Whether the pass only produces whole-design findings, making it
    /// pointless (and skippable) under a partial scope.
    fn whole_design_only(&self) -> bool {
        false
    }

    /// Runs the pass, appending findings to `out`.
    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered registry of lints — the verifier itself.
#[derive(Default)]
pub struct Verifier {
    lints: Vec<Box<dyn Lint>>,
}

impl Verifier {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Verifier::default()
    }

    /// The registry with every built-in pass, in dependency-friendly
    /// order (structure first — later passes assume a sane tree shape).
    #[must_use]
    pub fn with_default_lints() -> Self {
        let mut v = Verifier::new();
        v.register(Box::new(passes::TreeStructureLint));
        v.register(Box::new(passes::GeometryLint));
        v.register(Box::new(passes::ZeroSkewLint));
        v.register(Box::new(passes::ActivityTablesLint));
        v.register(Box::new(passes::GatingLint));
        v.register(Box::new(passes::SwitchedCapLint));
        v.register(Box::new(passes::DeterminismLint));
        v
    }

    /// Appends a lint to the run order.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// The registered lints, in run order.
    #[must_use]
    pub fn lints(&self) -> &[Box<dyn Lint>] {
        &self.lints
    }

    /// Runs every pass over `input`.
    ///
    /// Structural damage makes electrical recomputation meaningless (and
    /// possibly non-terminating), so when the tree-structure pass reports
    /// an Error, passes that traverse parent/child links (zero-skew,
    /// switched-cap) are skipped; their ids still appear in
    /// [`VerifyReport::passes_run`] only if they actually ran, and every
    /// skip is recorded with its reason in [`VerifyReport::skipped`].
    ///
    /// Under a partial `input.scope`, whole-design-only passes are
    /// likewise skipped (and recorded), and every finding is filtered to
    /// locations the scope covers — the scoped-oracle contract: the
    /// report equals a full run's report restricted to the scope.
    #[must_use]
    pub fn run(&self, input: &VerifyInput<'_>) -> VerifyReport {
        self.run_traced(input, &gcr_trace::Tracer::disabled())
    }

    /// [`Verifier::run`] with a span per pass (named by the lint id) under
    /// a `verify.run` parent, plus diagnostic counters, recorded on
    /// `tracer`. Skipped passes emit a `verify.skipped` warn event.
    #[must_use]
    pub fn run_traced(&self, input: &VerifyInput<'_>, tracer: &gcr_trace::Tracer) -> VerifyReport {
        let _run = tracer.span("verify.run");
        let partial_scope = !input.scope.is_full();
        let mut diagnostics = Vec::new();
        let mut passes_run = Vec::new();
        let mut skipped = Vec::new();
        let mut structure_broken = false;
        for lint in &self.lints {
            let reason = if structure_broken && matches!(lint.id(), "zero-skew" | "switched-cap") {
                Some("tree structure is broken".to_string())
            } else if partial_scope && lint.whole_design_only() {
                Some(format!(
                    "whole-design pass under partial scope {}",
                    input.scope
                ))
            } else {
                None
            };
            if let Some(reason) = reason {
                if tracer.enabled() {
                    tracer.warn(
                        "verify.skipped",
                        &format!("skipping {} pass: {reason}", lint.id()),
                    );
                }
                skipped.push(SkippedPass {
                    id: lint.id(),
                    reason,
                });
                continue;
            }
            let before = diagnostics.len();
            {
                let _pass = tracer.span(lint.id());
                lint.run(input, &mut diagnostics);
            }
            passes_run.push(lint.id());
            // Structure health is judged on the *unfiltered* output: a
            // break outside the scope still poisons delay recomputation
            // inside it.
            if lint.id() == "tree-structure"
                && diagnostics[before..]
                    .iter()
                    .any(|d| d.severity == crate::Severity::Error)
            {
                structure_broken = true;
            }
            if partial_scope {
                let scope = &input.scope;
                let mut keep = before;
                for i in before..diagnostics.len() {
                    if scope.covers(&diagnostics[i].location) {
                        diagnostics.swap(keep, i);
                        keep += 1;
                    }
                }
                diagnostics.truncate(keep);
            }
        }
        tracer.counter("verify.passes_run", passes_run.len() as f64);
        tracer.counter("verify.diagnostics", diagnostics.len() as f64);
        VerifyReport::new(diagnostics, passes_run, skipped)
    }
}
