//! The `Lint` trait and the pass registry that runs lints over a design.

use crate::diag::{Diagnostic, VerifyReport};
use crate::input::VerifyInput;
use crate::passes;

/// One static-analysis pass over a design.
///
/// A lint inspects the [`VerifyInput`] and appends [`Diagnostic`]s; it
/// must not mutate anything and must tolerate missing optional context by
/// checking less (not by erroring).
pub trait Lint {
    /// Stable machine-readable id, also used as the diagnostic `lint_id`
    /// (e.g. `"zero-skew"`).
    fn id(&self) -> &'static str;

    /// One-line human description of what the pass checks.
    fn description(&self) -> &'static str;

    /// Runs the pass, appending findings to `out`.
    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered registry of lints — the verifier itself.
#[derive(Default)]
pub struct Verifier {
    lints: Vec<Box<dyn Lint>>,
}

impl Verifier {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Verifier::default()
    }

    /// The registry with every built-in pass, in dependency-friendly
    /// order (structure first — later passes assume a sane tree shape).
    #[must_use]
    pub fn with_default_lints() -> Self {
        let mut v = Verifier::new();
        v.register(Box::new(passes::TreeStructureLint));
        v.register(Box::new(passes::GeometryLint));
        v.register(Box::new(passes::ZeroSkewLint));
        v.register(Box::new(passes::ActivityTablesLint));
        v.register(Box::new(passes::GatingLint));
        v.register(Box::new(passes::SwitchedCapLint));
        v
    }

    /// Appends a lint to the run order.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// The registered lints, in run order.
    #[must_use]
    pub fn lints(&self) -> &[Box<dyn Lint>] {
        &self.lints
    }

    /// Runs every pass over `input`.
    ///
    /// Structural damage makes electrical recomputation meaningless (and
    /// possibly non-terminating), so when the tree-structure pass reports
    /// an Error, passes that traverse parent/child links (zero-skew,
    /// switched-cap) are skipped; their ids still appear in
    /// [`VerifyReport::passes_run`] only if they actually ran.
    #[must_use]
    pub fn run(&self, input: &VerifyInput<'_>) -> VerifyReport {
        self.run_traced(input, &gcr_trace::Tracer::disabled())
    }

    /// [`Verifier::run`] with a span per pass (named by the lint id) under
    /// a `verify.run` parent, plus diagnostic counters, recorded on
    /// `tracer`. Skipped passes emit a `verify.skipped` warn event.
    #[must_use]
    pub fn run_traced(&self, input: &VerifyInput<'_>, tracer: &gcr_trace::Tracer) -> VerifyReport {
        let _run = tracer.span("verify.run");
        let mut diagnostics = Vec::new();
        let mut passes_run = Vec::new();
        let mut structure_broken = false;
        for lint in &self.lints {
            let traverses = matches!(lint.id(), "zero-skew" | "switched-cap");
            if structure_broken && traverses {
                if tracer.enabled() {
                    tracer.warn(
                        "verify.skipped",
                        &format!("skipping {} pass: tree structure is broken", lint.id()),
                    );
                }
                continue;
            }
            let before = diagnostics.len();
            {
                let _pass = tracer.span(lint.id());
                lint.run(input, &mut diagnostics);
            }
            passes_run.push(lint.id());
            if lint.id() == "tree-structure"
                && diagnostics[before..]
                    .iter()
                    .any(|d| d.severity == crate::Severity::Error)
            {
                structure_broken = true;
            }
        }
        tracer.counter("verify.passes_run", passes_run.len() as f64);
        tracer.counter("verify.diagnostics", diagnostics.len() as f64);
        VerifyReport::new(diagnostics, passes_run)
    }
}
