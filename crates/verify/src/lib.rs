//! Static verification for gated clock trees — a "DRC deck" for the
//! routing and power machinery in this workspace.
//!
//! The router (`gcr-cts`), the activity model (`gcr-activity`), and the
//! power evaluator (`gcr-core`) each maintain invariants the others rely
//! on: the tree is a well-formed binary merge structure, the embedding is
//! zero-skew under the Elmore model, the enable probabilities are actual
//! probabilities, every controlled gate has an enable net, and the
//! switched-capacitance totals follow Equation (3) of the paper. This
//! crate re-checks all of that *from the outside*: every pass recomputes
//! its invariant from first principles against the public data model,
//! sharing no code with the subsystem it audits, so a bug upstream shows
//! up as a diagnostic here instead of being verified against itself.
//!
//! # Architecture
//!
//! - [`Lint`] is the pass interface: an `id`, a `description`, and a
//!   `run` that appends [`Diagnostic`]s.
//! - [`Verifier`] is the registry; [`Verifier::with_default_lints`]
//!   installs the seven standard passes in dependency order and
//!   [`Verifier::run`] produces a [`VerifyReport`].
//! - [`VerifyInput`] bundles the design under audit: the tree and
//!   technology always, plus optional die outline, activity tables,
//!   per-node enable statistics, controller plan, controlled-gate mask,
//!   a stored power report to cross-check, a greedy [`MergeDecision`]
//!   log, and a [`Scope`] restricting the run to a dirty node set.
//! - [`VerifyReport`] renders as human-readable text
//!   ([`VerifyReport::render_text`]), machine-readable JSON
//!   ([`VerifyReport::render_json`]), or SARIF 2.1.0
//!   ([`VerifyReport::render_sarif`]) for code-scanning tooling; it
//!   answers [`VerifyReport::has_errors`] for gating CI and surfaces
//!   skipped passes with reasons ([`VerifyReport::skipped`]).
//!
//! The standard passes, in run order:
//!
//! | id | checks |
//! |----|--------|
//! | `tree-structure` | parent/child mutual consistency, single root, acyclicity, binary merges, sink bijection |
//! | `geometry` | finite in-die placements, electrical length ≥ Manhattan distance |
//! | `zero-skew` | independent Elmore recomputation, equal arrival at every sink |
//! | `activity-tables` | IFT/ITMATT are consistent distributions, enable probability bounds |
//! | `gating` | controlled edges carry gates, enable nets exist in the star plan |
//! | `switched-cap` | Equation (3) re-derived from first principles matches `gcr-core::evaluate` |
//! | `determinism` | the greedy decision log is canonical and matches the embedded tree |
//!
//! The delay- and capacitance-dependent passes (`zero-skew`,
//! `switched-cap`) are skipped when `tree-structure` reports an error:
//! their recursions assume a well-formed tree. Skips are recorded in the
//! report with reasons.
//!
//! # Scoped (incremental) verification
//!
//! A [`Scope`] restricts a run to a dirty node set or subtree. The
//! contract — property-tested in `tests/scoped.rs` — is that a scoped
//! run reports exactly the diagnostics a full run reports at locations
//! the scope [`covers`](Scope::covers). Whole-design passes are skipped
//! under a partial scope (and recorded as skipped); node-anchored passes
//! either restrict their iteration to the scope or are filtered by the
//! [`Verifier`] after the fact.
//!
//! # Example
//!
//! ```
//! use gcr_core::DeviceRole;
//! use gcr_cts::{build_buffered_tree, Sink};
//! use gcr_geometry::Point;
//! use gcr_rctree::Technology;
//! use gcr_verify::{Verifier, VerifyInput};
//!
//! let tech = Technology::default();
//! let sinks = vec![
//!     Sink::new(Point::new(0.0, 0.0), 0.05),
//!     Sink::new(Point::new(200.0, 0.0), 0.05),
//!     Sink::new(Point::new(0.0, 200.0), 0.05),
//!     Sink::new(Point::new(200.0, 200.0), 0.05),
//! ];
//! let tree = build_buffered_tree(&tech, &sinks, Point::new(100.0, 100.0))?;
//! let input = VerifyInput::new(&tree, &tech).with_role(DeviceRole::Buffer);
//! let report = Verifier::with_default_lints().run(&input);
//! assert!(!report.has_errors(), "{}", report.render_text());
//! # Ok::<(), gcr_cts::CtsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod eco;
mod input;
mod lint;
pub mod passes;
mod scope;
mod shadow;

pub use diag::{Diagnostic, Location, Severity, SkippedPass, VerifyReport};
pub use eco::{check_eco, EcoOracleReport, DEFAULT_QUALITY_EPS};
pub use gcr_cts::MergeDecision;
pub use input::VerifyInput;
pub use lint::{Lint, Verifier};
pub use passes::{
    ActivityTablesLint, DeterminismLint, GatingLint, GeometryLint, SwitchedCapLint,
    TreeStructureLint, ZeroSkewLint,
};
pub use scope::Scope;
pub use shadow::verify_each_merge;
