//! From-scratch oracle for incremental ECO re-routes.
//!
//! [`check_eco`] is the trust anchor of the `gcr_cts::eco` engine: after
//! every incremental re-route it (1) runs the scoped verifier over the
//! dirty-node set the engine reports, and (2) rebuilds the result from
//! scratch with the non-incremental code paths and compares:
//!
//! * **Same-topology rebuild** ([`gated_routing_for_topology_mapped`]) —
//!   must match the incremental result **bit for bit** in every case:
//!   the embedded tree is a pure function of (topology, sinks,
//!   assignment), and the incremental enable statistics aggregate the
//!   same activation vectors the oracle derives from module-set unions.
//!   For *pure replay* batches (no geometric edit) the old topology
//!   itself must survive unchanged, so this check alone pins the entire
//!   result.
//! * **From-scratch re-route** ([`route_gated_mapped`]) — for splice
//!   cases the incremental topology may legitimately differ (the
//!   frontier heuristic re-searches only locally), but the Equation-3
//!   switched capacitance must stay within a documented ε of the
//!   from-scratch optimum-effort run. The default bound is
//!   [`DEFAULT_QUALITY_EPS`]; see `docs/algorithms.md` §Incremental ECO
//!   for the contract.

use gcr_core::{
    evaluate, gated_routing_for_topology_mapped, route_gated_mapped, DeviceRole, GatedEcoResult,
    GatedRouting, RouteError, RouterConfig,
};

use gcr_activity::ActivityTables;

use crate::{Scope, Verifier, VerifyInput, VerifyReport};

/// Default relative slack allowed between the incremental and the
/// from-scratch switched capacitance on splice cases: the frontier
/// re-search is local, so it can miss cross-frontier pairings a global
/// re-route would take; measured slack on the Tsay benchmarks stays in
/// the low percents, and 10 % is the contract ceiling.
pub const DEFAULT_QUALITY_EPS: f64 = 0.10;

/// What [`check_eco`] found. `failures` is empty iff every oracle check
/// passed; the scoped verifier report is included in full.
#[derive(Debug)]
pub struct EcoOracleReport {
    /// Whether the batch was a pure replay (bit-identity contract) or a
    /// splice (ε contract).
    pub pure_replay: bool,
    /// The scoped verifier run over the engine's dirty-node set.
    pub scoped: VerifyReport,
    /// `W` of the incremental routing (Equation 3 total).
    pub incremental_cap: f64,
    /// `W` of the from-scratch re-route over the same edited design.
    pub scratch_cap: f64,
    /// `incremental_cap / scratch_cap` — the splice quality ratio.
    pub quality_ratio: f64,
    /// Human-readable descriptions of every failed check.
    pub failures: Vec<String>,
}

impl EcoOracleReport {
    /// Whether the incremental result is verified: the scoped run is
    /// clean and every oracle comparison held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && !self.scoped.has_errors()
    }
}

/// Verifies an incremental re-route against the non-incremental code
/// paths (see the module docs for the two-sided contract).
/// `quality_eps` bounds the splice-case switched-capacitance slack; pass
/// [`DEFAULT_QUALITY_EPS`] unless the caller documents a different
/// contract.
///
/// # Errors
///
/// Returns the underlying [`RouteError`] when an oracle rebuild itself
/// fails — that is an environment problem, not an ECO mismatch.
///
/// # Panics
///
/// Panics if `quality_eps` is negative or non-finite.
pub fn check_eco(
    old: &GatedRouting,
    result: &GatedEcoResult,
    tables: &ActivityTables,
    config: &RouterConfig,
    quality_eps: f64,
) -> Result<EcoOracleReport, RouteError> {
    assert!(
        quality_eps.is_finite() && quality_eps >= 0.0,
        "quality_eps must be a finite non-negative fraction"
    );
    let mut failures = Vec::new();
    let pure_replay = result.outcome.pure_replay;

    // 1. Scoped verification over the engine's dirty-node set.
    let scope = Scope::nodes(result.outcome.dirty_nodes.iter().map(|&i| i as usize));
    let input = VerifyInput::new(&result.routing.tree, config.tech())
        .with_scope(scope)
        .with_die(config.die())
        .with_tables(tables)
        .with_node_stats(&result.routing.node_stats)
        .with_controller(config.controller());
    let scoped = Verifier::with_default_lints().run(&input);
    if scoped.has_errors() {
        failures.push(format!(
            "scoped verifier reported errors over the dirty set:\n{}",
            scoped.render_text()
        ));
    }

    // 2. Same-topology rebuild: bit-identity in every case.
    if pure_replay && result.routing.topology != old.topology {
        failures.push("pure replay changed the topology".to_string());
    }
    let same_topo = gated_routing_for_topology_mapped(
        result.routing.topology.clone(),
        &result.sinks,
        &result.module_of,
        tables,
        config,
    )?;
    if same_topo.tree != result.routing.tree {
        failures.push("incremental tree differs from the same-topology rebuild".to_string());
    }
    if same_topo.node_modules != result.routing.node_modules {
        failures.push("incremental module sets differ from the same-topology rebuild".to_string());
    }
    for (i, (inc, orc)) in result
        .routing
        .node_stats
        .iter()
        .zip(&same_topo.node_stats)
        .enumerate()
    {
        if inc.signal.to_bits() != orc.signal.to_bits()
            || inc.transition.to_bits() != orc.transition.to_bits()
        {
            failures.push(format!(
                "node {i} enable stats differ from the same-topology rebuild: \
                 P(EN) {} vs {}, P_tr(EN) {} vs {}",
                inc.signal, orc.signal, inc.transition, orc.transition
            ));
            break;
        }
    }

    // 3. Objective value. A pure replay keeps the topology by contract,
    //    so its from-scratch reference is the same-topology rebuild and
    //    the match must be bitwise (a re-route under swapped tables may
    //    legitimately choose a different topology — that freedom is
    //    exactly what the replay forgoes). A splice is compared against
    //    the full from-scratch re-route under the ε bound.
    let incremental_cap = evaluate(
        &result.routing.tree,
        &result.routing.node_stats,
        config.controller(),
        config.tech(),
        DeviceRole::Gate,
    )
    .total_switched_cap;
    let scratch_cap = if pure_replay {
        evaluate(
            &same_topo.tree,
            &same_topo.node_stats,
            config.controller(),
            config.tech(),
            DeviceRole::Gate,
        )
        .total_switched_cap
    } else {
        let scratch = route_gated_mapped(&result.sinks, &result.module_of, tables, config)?;
        evaluate(
            &scratch.tree,
            &scratch.node_stats,
            config.controller(),
            config.tech(),
            DeviceRole::Gate,
        )
        .total_switched_cap
    };
    let quality_ratio = if scratch_cap > 0.0 {
        incremental_cap / scratch_cap
    } else {
        1.0
    };
    if pure_replay {
        if incremental_cap.to_bits() != scratch_cap.to_bits() {
            failures.push(format!(
                "pure replay switched capacitance {incremental_cap} differs from the \
                 from-scratch rebuild's value {scratch_cap}"
            ));
        }
    } else if quality_ratio > 1.0 + quality_eps {
        failures.push(format!(
            "splice switched capacitance {incremental_cap} exceeds the from-scratch \
             value {scratch_cap} by more than ε = {quality_eps} (ratio {quality_ratio:.4})"
        ));
    }

    Ok(EcoOracleReport {
        pure_replay,
        scoped,
        incremental_cap,
        scratch_cap,
        quality_ratio,
        failures,
    })
}
