//! The design-under-verification: an embedded clock tree plus whatever
//! optional context (die, activity statistics, controller plan, a power
//! report to cross-check) the caller has. Passes check what the provided
//! context allows and stay silent about the rest.

use crate::Scope;
use gcr_activity::{ActivityTables, EnableStats};
use gcr_core::{ControllerPlan, DeviceRole, PowerReport};
use gcr_cts::{ClockTree, MergeDecision};
use gcr_geometry::BBox;
use gcr_rctree::Technology;

/// Everything a lint pass may look at. Build with [`VerifyInput::new`] and
/// the `with_*` methods.
#[derive(Clone)]
pub struct VerifyInput<'a> {
    /// The embedded tree under verification.
    pub tree: &'a ClockTree,
    /// Technology parameters for electrical recomputation.
    pub tech: &'a Technology,
    /// How the tree's devices behave for power accounting.
    pub role: DeviceRole,
    /// The die outline, if known. Enables the geometry containment check.
    pub die: Option<BBox>,
    /// The activity tables, if known. Enables the stochastic table checks.
    pub tables: Option<&'a ActivityTables>,
    /// Per-node enable statistics, if known (`node_stats[i]` for topology
    /// node `i`). Enables the probability-bound and switched-cap checks.
    pub node_stats: Option<&'a [EnableStats]>,
    /// The enable-star controller plan, if known.
    pub controller: Option<&'a ControllerPlan>,
    /// Which devices are *controlled* masking gates (vs always-on
    /// buffers). `None` means the [`DeviceRole`] default: all devices
    /// controlled under `Gate`, none under `Buffer`.
    pub controlled: Option<&'a [bool]>,
    /// A previously computed power report to cross-check.
    pub power_report: Option<&'a PowerReport>,
    /// Allowed source-to-sink delay spread (ps) before the zero-skew pass
    /// reports an Error. The exact-zero-skew DME embedding stays below
    /// 1e-6 ps of float noise; bounded-skew trees need the bound they
    /// were built with.
    pub skew_tolerance_ps: f64,
    /// Which part of the design to re-verify. Defaults to
    /// [`Scope::Full`]; a dirty-set scope makes the run incremental and
    /// the report is exactly the full run's findings restricted to the
    /// scope (see `docs/invariants.md` §Scope semantics).
    pub scope: Scope,
    /// The greedy engine's decision log for this tree, if recorded
    /// (`GreedyParams::log_decisions`). Enables the `determinism` pass.
    pub decision_log: Option<&'a [MergeDecision]>,
}

impl<'a> VerifyInput<'a> {
    /// A minimal input: tree + technology, gate-role accounting, default
    /// zero-skew tolerance.
    #[must_use]
    pub fn new(tree: &'a ClockTree, tech: &'a Technology) -> Self {
        VerifyInput {
            tree,
            tech,
            role: DeviceRole::Gate,
            die: None,
            tables: None,
            node_stats: None,
            controller: None,
            controlled: None,
            power_report: None,
            skew_tolerance_ps: 1e-6,
            scope: Scope::Full,
            decision_log: None,
        }
    }

    /// Restricts the run to a [`Scope`] (dirty node set or subtree).
    #[must_use]
    pub fn with_scope(mut self, scope: Scope) -> Self {
        self.scope = scope;
        self
    }

    /// Attaches the greedy engine's decision log, enabling the
    /// `determinism` pass.
    #[must_use]
    pub fn with_decision_log(mut self, log: &'a [MergeDecision]) -> Self {
        self.decision_log = Some(log);
        self
    }

    /// Sets the die outline.
    #[must_use]
    pub fn with_die(mut self, die: BBox) -> Self {
        self.die = Some(die);
        self
    }

    /// Sets the device accounting role.
    #[must_use]
    pub fn with_role(mut self, role: DeviceRole) -> Self {
        self.role = role;
        self
    }

    /// Sets the activity tables.
    #[must_use]
    pub fn with_tables(mut self, tables: &'a ActivityTables) -> Self {
        self.tables = Some(tables);
        self
    }

    /// Sets the per-node enable statistics.
    #[must_use]
    pub fn with_node_stats(mut self, stats: &'a [EnableStats]) -> Self {
        self.node_stats = Some(stats);
        self
    }

    /// Sets the controller plan.
    #[must_use]
    pub fn with_controller(mut self, controller: &'a ControllerPlan) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Sets the controlled-gate mask (from gate reduction in untie mode).
    #[must_use]
    pub fn with_controlled(mut self, controlled: &'a [bool]) -> Self {
        self.controlled = Some(controlled);
        self
    }

    /// Sets a power report to cross-check against first principles.
    #[must_use]
    pub fn with_power_report(mut self, report: &'a PowerReport) -> Self {
        self.power_report = Some(report);
        self
    }

    /// Sets the allowed delay spread for the zero-skew pass (e.g. the
    /// bound of a bounded-skew tree).
    #[must_use]
    pub fn with_skew_tolerance_ps(mut self, tol: f64) -> Self {
        self.skew_tolerance_ps = tol;
        self
    }

    /// The effective controlled mask: the explicit one, or the
    /// [`DeviceRole`] default.
    #[must_use]
    pub fn effective_controlled(&self) -> Vec<bool> {
        match self.controlled {
            Some(mask) => mask.to_vec(),
            None => match self.role {
                DeviceRole::Gate => vec![true; self.tree.len()],
                DeviceRole::Buffer => vec![false; self.tree.len()],
            },
        }
    }
}
