//! The diagnostics data model: severities, locations, diagnostics and the
//! report they are collected into, renderable as human text,
//! machine-readable JSON, or SARIF 2.1.0.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth surfacing, not a defect.
    Info,
    /// Suspicious but not provably wrong (e.g. a statistical bound that
    /// finite sampling can graze).
    Warn,
    /// A violated invariant: the design is not what it claims to be.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Where in the design a diagnostic points.
#[derive(Clone, Debug, PartialEq)]
pub enum Location {
    /// A whole-design property with no sharper anchor.
    Design,
    /// Tree node `v_i` (its dense topology index).
    Node(usize),
    /// The edge between node `child` and its parent.
    Edge {
        /// The node at the bottom of the edge.
        child: usize,
    },
    /// Sink `i` (the paper's `s_i`).
    Sink(usize),
    /// A whole activity table.
    Table(&'static str),
    /// One cell of an activity table.
    TableCell {
        /// Which table (`"IFT"`, `"ITMATT"`).
        table: &'static str,
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Design => f.write_str("design"),
            Location::Node(i) => write!(f, "v{i}"),
            Location::Edge { child } => write!(f, "edge(v{child})"),
            Location::Sink(i) => write!(f, "s{i}"),
            Location::Table(t) => f.write_str(t),
            Location::TableCell { table, row, col } => write!(f, "{table}[{row}][{col}]"),
        }
    }
}

/// One finding of one lint pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The id of the lint that produced this (e.g. `"zero-skew"`).
    pub lint_id: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub location: Location,
    /// Human-readable description of the violation.
    pub message: String,
    /// Stable diagnostic code (e.g. `"GCR-ZS01"`); `None` falls back to
    /// the lint id in renderings. Codes never change meaning between
    /// releases — tooling may key on them.
    pub code: Option<&'static str>,
    /// Optional fix-it hint: what a user would do about this finding.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(
        lint_id: &'static str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            lint_id,
            severity,
            location,
            message: message.into(),
            code: None,
            hint: None,
        }
    }

    /// Attaches a stable diagnostic code (builder style).
    #[must_use]
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// Attaches a fix-it hint (builder style).
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// The stable code, falling back to the lint id when none was set.
    #[must_use]
    pub fn code(&self) -> &'static str {
        self.code.unwrap_or(self.lint_id)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity,
            self.code(),
            self.location,
            self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

/// A pass the verifier decided not to run, and why.
#[derive(Clone, Debug, PartialEq)]
pub struct SkippedPass {
    /// The id of the pass that was skipped.
    pub id: &'static str,
    /// Why it was skipped (e.g. broken tree structure upstream, or a
    /// whole-design pass under a partial scope).
    pub reason: String,
}

/// Every diagnostic produced by one verifier run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
    passes_run: Vec<&'static str>,
    skipped: Vec<SkippedPass>,
}

impl VerifyReport {
    pub(crate) fn new(
        diagnostics: Vec<Diagnostic>,
        passes_run: Vec<&'static str>,
        skipped: Vec<SkippedPass>,
    ) -> Self {
        VerifyReport {
            diagnostics,
            passes_run,
            skipped,
        }
    }

    /// All diagnostics, in pass-registration order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The ids of the passes that ran (including clean ones).
    #[must_use]
    pub fn passes_run(&self) -> &[&'static str] {
        &self.passes_run
    }

    /// Passes the verifier skipped this run, with reasons — e.g.
    /// delay-dependent passes after the tree structure proved broken, or
    /// whole-design passes under a partial [`Scope`](crate::Scope).
    #[must_use]
    pub fn skipped(&self) -> &[SkippedPass] {
        &self.skipped
    }

    /// Number of diagnostics at `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any Error-severity diagnostic exists.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Diagnostics produced by the lint with `id`.
    pub fn by_lint<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.lint_id == id)
    }

    /// Human-readable multi-line rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        for s in &self.skipped {
            let _ = writeln!(out, "skipped: [{}] {}", s.id, s.reason);
        }
        let _ = write!(
            out,
            "{} passes, {} errors, {} warnings, {} notes",
            self.passes_run.len(),
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        if !self.skipped.is_empty() {
            let _ = write!(out, ", {} skipped", self.skipped.len());
        }
        out.push('\n');
        out
    }

    /// Machine-readable JSON rendering (no external dependencies, hence
    /// hand-built; the shape is stable: `{"passes": [...], "diagnostics":
    /// [{"lint", "code", "severity", "location", "message", "hint"?}],
    /// "skipped": [{"pass", "reason"}], "errors": N}`).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"passes\":[");
        for (i, p) in self.passes_run.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(p);
            out.push('"');
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"lint\":\"");
            out.push_str(d.lint_id);
            out.push_str("\",\"code\":\"");
            out.push_str(d.code());
            out.push_str("\",\"severity\":\"");
            out.push_str(&d.severity.to_string());
            out.push_str("\",\"location\":\"");
            push_json_escaped(&mut out, &d.location.to_string());
            out.push_str("\",\"message\":\"");
            push_json_escaped(&mut out, &d.message);
            out.push('"');
            if let Some(hint) = &d.hint {
                out.push_str(",\"hint\":\"");
                push_json_escaped(&mut out, hint);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("],\"skipped\":[");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"pass\":\"");
            out.push_str(s.id);
            out.push_str("\",\"reason\":\"");
            push_json_escaped(&mut out, &s.reason);
            out.push_str("\"}");
        }
        out.push_str("],\"errors\":");
        out.push_str(&self.count(Severity::Error).to_string());
        out.push('}');
        out
    }

    /// SARIF 2.1.0 rendering — the static-analysis interchange format
    /// GitHub code scanning and most SARIF viewers ingest. One run, one
    /// `tool.driver` named `gcr-verify`; each unique diagnostic code
    /// becomes a reporting rule, each diagnostic a result anchored at a
    /// logical location (the design has no source files, so tree nodes,
    /// sinks and tables are logical locations).
    #[must_use]
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(concat!(
            "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",",
            "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{",
            "\"name\":\"gcr-verify\",\"informationUri\":",
            "\"https://github.com/gcr/gcr\",\"rules\":["
        ));
        let mut rules: Vec<(&'static str, &'static str)> = Vec::new();
        for d in &self.diagnostics {
            if !rules.iter().any(|(code, _)| *code == d.code()) {
                rules.push((d.code(), d.lint_id));
            }
        }
        for (i, (code, lint_id)) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":\"");
            out.push_str(code);
            out.push_str("\",\"shortDescription\":{\"text\":\"");
            push_json_escaped(&mut out, lint_id);
            out.push_str("\"}}");
        }
        out.push_str("]}},\"results\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"ruleId\":\"");
            out.push_str(d.code());
            out.push_str("\",\"level\":\"");
            out.push_str(match d.severity {
                Severity::Error => "error",
                Severity::Warn => "warning",
                Severity::Info => "note",
            });
            out.push_str("\",\"message\":{\"text\":\"");
            push_json_escaped(&mut out, &d.message);
            if let Some(hint) = &d.hint {
                push_json_escaped(&mut out, &format!(" (hint: {hint})"));
            }
            out.push_str("\"},\"locations\":[{\"logicalLocations\":[{\"name\":\"");
            push_json_escaped(&mut out, &d.location.to_string());
            out.push_str("\"}]}]}");
        }
        out.push_str("]}]}");
        out
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counts_and_filters() {
        let report = VerifyReport::new(
            vec![
                Diagnostic::new("a", Severity::Error, Location::Node(3), "bad"),
                Diagnostic::new("b", Severity::Warn, Location::Design, "meh"),
                Diagnostic::new("a", Severity::Info, Location::Sink(0), "fyi"),
            ],
            vec!["a", "b"],
            Vec::new(),
        );
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.by_lint("a").count(), 2);
        let text = report.render_text();
        assert!(text.contains("error: [a] v3: bad"));
        assert!(text.contains("2 passes, 1 errors, 1 warnings, 1 notes"));
        assert!(!text.contains("skipped"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let report = VerifyReport::new(
            vec![Diagnostic::new(
                "x",
                Severity::Error,
                Location::TableCell {
                    table: "IFT",
                    row: 1,
                    col: 2,
                },
                "say \"no\"\n",
            )],
            vec!["x"],
            Vec::new(),
        );
        let json = report.render_json();
        assert!(json.contains("\"lint\":\"x\""));
        assert!(json.contains("\"code\":\"x\""));
        assert!(json.contains("IFT[1][2]"));
        assert!(json.contains("say \\\"no\\\"\\n"));
        assert!(json.contains("\"skipped\":[]"));
        assert!(json.ends_with("\"errors\":1}"));
    }

    #[test]
    fn codes_and_hints_flow_through_every_rendering() {
        let d = Diagnostic::new(
            "zero-skew",
            Severity::Error,
            Location::Node(7),
            "late arrival",
        )
        .with_code("GCR-ZS01")
        .with_hint("re-run embed() after the topology change");
        assert_eq!(d.code(), "GCR-ZS01");
        assert_eq!(
            d.to_string(),
            "error: [GCR-ZS01] v7: late arrival \
             (hint: re-run embed() after the topology change)"
        );
        let report = VerifyReport::new(vec![d], vec!["zero-skew"], Vec::new());
        let json = report.render_json();
        assert!(json.contains("\"code\":\"GCR-ZS01\""));
        assert!(json.contains("\"hint\":\"re-run embed()"));
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"gcr-verify\""));
        assert!(sarif.contains("{\"id\":\"GCR-ZS01\""));
        assert!(sarif.contains("\"ruleId\":\"GCR-ZS01\",\"level\":\"error\""));
        assert!(sarif.contains("\"logicalLocations\":[{\"name\":\"v7\"}]"));
    }

    #[test]
    fn skipped_passes_surface_in_text_and_json() {
        let report = VerifyReport::new(
            Vec::new(),
            vec!["tree-structure"],
            vec![SkippedPass {
                id: "zero-skew",
                reason: "tree structure is broken".into(),
            }],
        );
        let text = report.render_text();
        assert!(text.contains("skipped: [zero-skew] tree structure is broken"));
        assert!(text.contains("1 passes, 0 errors, 0 warnings, 0 notes, 1 skipped"));
        let json = report.render_json();
        assert!(json.contains(
            "\"skipped\":[{\"pass\":\"zero-skew\",\"reason\":\"tree structure is broken\"}]"
        ));
    }

    #[test]
    fn sarif_dedupes_rules_and_maps_levels() {
        let report = VerifyReport::new(
            vec![
                Diagnostic::new("g", Severity::Warn, Location::Sink(1), "w1").with_code("GCR-G01"),
                Diagnostic::new("g", Severity::Info, Location::Sink(2), "w2").with_code("GCR-G01"),
            ],
            vec!["g"],
            Vec::new(),
        );
        let sarif = report.render_sarif();
        assert_eq!(sarif.matches("{\"id\":\"GCR-G01\"").count(), 1);
        assert!(sarif.contains("\"level\":\"warning\""));
        assert!(sarif.contains("\"level\":\"note\""));
    }
}
