//! The diagnostics data model: severities, locations, diagnostics and the
//! report they are collected into, renderable as human text or
//! machine-readable JSON.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth surfacing, not a defect.
    Info,
    /// Suspicious but not provably wrong (e.g. a statistical bound that
    /// finite sampling can graze).
    Warn,
    /// A violated invariant: the design is not what it claims to be.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Where in the design a diagnostic points.
#[derive(Clone, Debug, PartialEq)]
pub enum Location {
    /// A whole-design property with no sharper anchor.
    Design,
    /// Tree node `v_i` (its dense topology index).
    Node(usize),
    /// The edge between node `child` and its parent.
    Edge {
        /// The node at the bottom of the edge.
        child: usize,
    },
    /// Sink `i` (the paper's `s_i`).
    Sink(usize),
    /// A whole activity table.
    Table(&'static str),
    /// One cell of an activity table.
    TableCell {
        /// Which table (`"IFT"`, `"ITMATT"`).
        table: &'static str,
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Design => f.write_str("design"),
            Location::Node(i) => write!(f, "v{i}"),
            Location::Edge { child } => write!(f, "edge(v{child})"),
            Location::Sink(i) => write!(f, "s{i}"),
            Location::Table(t) => f.write_str(t),
            Location::TableCell { table, row, col } => write!(f, "{table}[{row}][{col}]"),
        }
    }
}

/// One finding of one lint pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The id of the lint that produced this (e.g. `"zero-skew"`).
    pub lint_id: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub location: Location,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(
        lint_id: &'static str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            lint_id,
            severity,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity, self.lint_id, self.location, self.message
        )
    }
}

/// Every diagnostic produced by one verifier run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
    passes_run: Vec<&'static str>,
}

impl VerifyReport {
    pub(crate) fn new(diagnostics: Vec<Diagnostic>, passes_run: Vec<&'static str>) -> Self {
        VerifyReport {
            diagnostics,
            passes_run,
        }
    }

    /// All diagnostics, in pass-registration order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The ids of the passes that ran (including clean ones).
    #[must_use]
    pub fn passes_run(&self) -> &[&'static str] {
        &self.passes_run
    }

    /// Number of diagnostics at `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any Error-severity diagnostic exists.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Diagnostics produced by the lint with `id`.
    pub fn by_lint<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.lint_id == id)
    }

    /// Human-readable multi-line rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} passes, {} errors, {} warnings, {} notes",
            self.passes_run.len(),
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        out
    }

    /// Machine-readable JSON rendering (no external dependencies, hence
    /// hand-built; the shape is stable: `{"passes": [...], "diagnostics":
    /// [{"lint", "severity", "location", "message"}], "errors": N}`).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"passes\":[");
        for (i, p) in self.passes_run.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(p);
            out.push('"');
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"lint\":\"");
            out.push_str(d.lint_id);
            out.push_str("\",\"severity\":\"");
            out.push_str(&d.severity.to_string());
            out.push_str("\",\"location\":\"");
            push_json_escaped(&mut out, &d.location.to_string());
            out.push_str("\",\"message\":\"");
            push_json_escaped(&mut out, &d.message);
            out.push_str("\"}");
        }
        out.push_str("],\"errors\":");
        out.push_str(&self.count(Severity::Error).to_string());
        out.push('}');
        out
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counts_and_filters() {
        let report = VerifyReport::new(
            vec![
                Diagnostic::new("a", Severity::Error, Location::Node(3), "bad"),
                Diagnostic::new("b", Severity::Warn, Location::Design, "meh"),
                Diagnostic::new("a", Severity::Info, Location::Sink(0), "fyi"),
            ],
            vec!["a", "b"],
        );
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.by_lint("a").count(), 2);
        let text = report.render_text();
        assert!(text.contains("error: [a] v3: bad"));
        assert!(text.contains("2 passes, 1 errors, 1 warnings, 1 notes"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let report = VerifyReport::new(
            vec![Diagnostic::new(
                "x",
                Severity::Error,
                Location::TableCell {
                    table: "IFT",
                    row: 1,
                    col: 2,
                },
                "say \"no\"\n",
            )],
            vec!["x"],
        );
        let json = report.render_json();
        assert!(json.contains("\"lint\":\"x\""));
        assert!(json.contains("IFT[1][2]"));
        assert!(json.contains("say \\\"no\\\"\\n"));
        assert!(json.ends_with("\"errors\":1}"));
    }
}
