//! `determinism`: cross-checks the greedy engine's decision log against
//! the tree it claims to have built.
//!
//! The log ([`gcr_cts::MergeDecision`], recorded under
//! `GreedyParams::log_decisions`) is the replay artifact the
//! `gcr-verify audit` subcommand diffs across thread counts and
//! traced/untraced configurations; this pass checks the *internal*
//! consistency of one log — canonical pair order, bottom-up merge
//! numbering, finite tie-break keys, and agreement with the embedded
//! tree's parent/child structure. A log that passes here and is
//! bit-identical across configurations certifies the run deterministic.
//!
//! Without a decision log in the [`VerifyInput`] the pass runs and finds
//! nothing (the usual missing-context convention).

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;

/// See the module docs.
pub struct DeterminismLint;

const ID: &str = "determinism";

impl Lint for DeterminismLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "the greedy decision log is canonical and matches the embedded tree"
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        let Some(log) = input.decision_log else {
            return;
        };
        let tree = input.tree;
        let s = tree.num_sinks();
        if s == 0 || tree.len() != 2 * s - 1 {
            // A malformed tree is the structure pass's finding; matching a
            // log against it would only produce noise.
            return;
        }
        if log.len() != s - 1 {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Design,
                    format!(
                        "decision log records {} merges; a tree over {s} sinks has {}",
                        log.len(),
                        s - 1
                    ),
                )
                .with_code("GCR-DT01")
                .with_hint("the log and the tree come from different runs"),
            );
            return;
        }
        for (i, d) in log.iter().enumerate() {
            let expected = (s + i) as u32;
            if d.node != expected {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(d.node as usize),
                        format!(
                            "merge {i} created v{}; bottom-up numbering expects v{expected}",
                            d.node
                        ),
                    )
                    .with_code("GCR-DT02"),
                );
                continue;
            }
            if !(d.a < d.b && d.b < d.node) {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(d.node as usize),
                        format!(
                            "merge v{} <- (v{}, v{}) is not in canonical order \
                             (a < b < node)",
                            d.node, d.a, d.b
                        ),
                    )
                    .with_code("GCR-DT03"),
                );
                continue;
            }
            if !d.key().is_finite() {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(d.node as usize),
                        format!(
                            "merge v{} carries a non-finite tie-break key \
                             (bits 0x{:016x})",
                            d.node, d.key_bits
                        ),
                    )
                    .with_code("GCR-DT04"),
                );
            }
            let node = tree.node(tree.id(d.node as usize));
            let kids = node.children();
            let matches_tree = kids.len() == 2 && {
                let (x, y) = (kids[0].index() as u32, kids[1].index() as u32);
                (x.min(y), x.max(y)) == (d.a, d.b)
            };
            if !matches_tree {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(d.node as usize),
                        format!(
                            "log says v{} merged (v{}, v{}); the tree's children are {:?}",
                            d.node,
                            d.a,
                            d.b,
                            kids.iter().map(|k| k.index()).collect::<Vec<_>>()
                        ),
                    )
                    .with_code("GCR-DT05")
                    .with_hint("replay the route with log_decisions on the same input"),
                );
            }
        }
    }
}
