//! `activity-tables`: stochastic consistency of the paper's probability
//! machinery — the IFT is a distribution over instructions (§3.2,
//! Table 2), the ITMATT is a joint distribution over consecutive
//! instruction pairs (§3.2, Table 3) whose marginals agree with the IFT,
//! and every node's enable statistics respect the probability bounds that
//! Equation (2)'s switched-capacitance weighting assumes.

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;

/// See the module docs.
pub struct ActivityTablesLint;

const ID: &str = "activity-tables";

/// Distribution sums are checked to this absolute tolerance. The tables
/// are built from exact rational counts (`c / B`), so only accumulated
/// f64 rounding should remain.
const SUM_TOL: f64 = 1e-6;

/// Finite-stream slack on the transition bounds: the IFT is estimated
/// over B cycles, the ITMATT over B−1 pairs, so marginals drift apart by
/// O(1/B). Streams in this workspace are ≥ 1000 cycles.
const STREAM_TOL: f64 = 1e-2;

/// Slack on the `[0, 1]` range itself: probabilities assembled by
/// inclusion-exclusion (the OR over a node's module set) accumulate a few
/// ulps past 1 without being wrong.
const PROB_TOL: f64 = 1e-9;

fn is_probability(p: f64) -> bool {
    p.is_finite() && (-PROB_TOL..=1.0 + PROB_TOL).contains(&p)
}

impl Lint for ActivityTablesLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "IFT/ITMATT are consistent distributions; enable probabilities obey their bounds"
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        // Table findings anchor at Table/TableCell locations, which a
        // partial scope never covers — skip the whole-table sweep there.
        if input.scope.is_full() {
            if let Some(tables) = input.tables {
                check_tables(tables, out);
            }
        }
        if let Some(stats) = input.node_stats {
            check_node_stats(input, stats, out);
        }
    }
}

fn check_tables(tables: &gcr_activity::ActivityTables, out: &mut Vec<Diagnostic>) {
    let rtl = tables.rtl();
    let ift = tables.ift();
    let itmatt = tables.itmatt();
    let k = rtl.num_instructions();

    if ift.len() != k {
        out.push(
            Diagnostic::new(
                ID,
                Severity::Error,
                Location::Table("IFT"),
                format!("IFT covers {} instructions, RTL has {k}", ift.len()),
            )
            .with_code("GCR-AT01"),
        );
        return;
    }
    if itmatt.num_instructions() != k {
        out.push(
            Diagnostic::new(
                ID,
                Severity::Error,
                Location::Table("ITMATT"),
                format!(
                    "ITMATT covers {} instructions, RTL has {k}",
                    itmatt.num_instructions()
                ),
            )
            .with_code("GCR-AT02"),
        );
        return;
    }

    // IFT: a distribution over instructions.
    let mut ift_sum = 0.0;
    for (row, i) in rtl.instruction_ids().enumerate() {
        let p = ift.probability(i);
        if !is_probability(p) {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::TableCell {
                        table: "IFT",
                        row,
                        col: 0,
                    },
                    format!("P(I{row}) = {p} is not a probability"),
                )
                .with_code("GCR-AT03"),
            );
        }
        ift_sum += p;
    }
    if (ift_sum - 1.0).abs() > SUM_TOL {
        out.push(
            Diagnostic::new(
                ID,
                Severity::Error,
                Location::Table("IFT"),
                format!("IFT sums to {ift_sum}, not 1"),
            )
            .with_code("GCR-AT04"),
        );
    }

    // ITMATT: a joint distribution over consecutive pairs whose row
    // marginals match the IFT up to finite-stream end effects.
    let mut pair_sum = 0.0;
    for (row, a) in rtl.instruction_ids().enumerate() {
        let mut row_sum = 0.0;
        for (col, b) in rtl.instruction_ids().enumerate() {
            let p = itmatt.pair_probability(a, b);
            if !is_probability(p) {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::TableCell {
                            table: "ITMATT",
                            row,
                            col,
                        },
                        format!("P(I{row} -> I{col}) = {p} is not a probability"),
                    )
                    .with_code("GCR-AT05"),
                );
            }
            row_sum += p;
        }
        pair_sum += row_sum;
        let marginal = ift.probability(a);
        if (row_sum - marginal).abs() > STREAM_TOL {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Warn,
                    Location::TableCell {
                        table: "ITMATT",
                        row,
                        col: 0,
                    },
                    format!(
                        "row {row} marginal {row_sum} differs from IFT {marginal} by more than \
                     finite-stream end effects explain"
                    ),
                )
                .with_code("GCR-AT06"),
            );
        }
    }
    if (pair_sum - 1.0).abs() > SUM_TOL {
        out.push(
            Diagnostic::new(
                ID,
                Severity::Error,
                Location::Table("ITMATT"),
                format!("ITMATT pair probabilities sum to {pair_sum}, not 1"),
            )
            .with_code("GCR-AT07"),
        );
    }
}

fn check_node_stats(
    input: &VerifyInput<'_>,
    stats: &[gcr_activity::EnableStats],
    out: &mut Vec<Diagnostic>,
) {
    let tree = input.tree;
    if stats.len() != tree.len() {
        // The mismatch is a whole-design finding; a partial scope never
        // covers it, and indexing below would be unsound — bail either way.
        if input.scope.is_full() {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Design,
                    format!(
                        "node statistics cover {} nodes, tree has {}",
                        stats.len(),
                        tree.len()
                    ),
                )
                .with_code("GCR-AT08"),
            );
        }
        return;
    }
    for i in input.scope.nodes_in(stats.len()) {
        let st = &stats[i];
        let (p, tr) = (st.signal, st.transition);
        if !is_probability(p) {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Node(i),
                    format!("P(EN) = {p} is not a probability"),
                )
                .with_code("GCR-AT09"),
            );
            continue;
        }
        if !is_probability(tr) {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Node(i),
                    format!("P_tr(EN) = {tr} is not a probability"),
                )
                .with_code("GCR-AT10"),
            );
            continue;
        }
        // Stationarity theorem: P(0->1) = P(1->0) and each is bounded by
        // both marginals, so P_tr <= 2*min(P, 1-P). Violations beyond
        // end-effect slack mean the signal and transition probabilities
        // were not measured on the same stream.
        let hard = 2.0 * p.min(1.0 - p);
        if tr > hard + STREAM_TOL {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Node(i),
                    format!(
                        "P_tr(EN) = {tr} exceeds the stationary bound 2*min(P, 1-P) = {hard} \
                     for P(EN) = {p}"
                    ),
                )
                .with_code("GCR-AT11")
                .with_hint("measure P(EN) and P_tr(EN) on the same enable stream"),
            );
            continue;
        }
        // Independence bound (§2.2): an uncorrelated enable toggles with
        // 2*P*(1-P); gating pays off because real enables are persistent
        // and toggle *less*. More toggling than a coin flip means the
        // stream is anti-persistent and the SC accounting premise is off.
        let soft = 2.0 * p * (1.0 - p);
        if tr > soft + STREAM_TOL {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Warn,
                    Location::Node(i),
                    format!(
                        "P_tr(EN) = {tr} exceeds the independence bound 2*P*(1-P) = {soft}: \
                     the enable is anti-persistent"
                    ),
                )
                .with_code("GCR-AT12"),
            );
        }
    }
    // EN_parent is the OR of its children's enables (§3.3), so P(EN) can
    // only grow toward the root. Check along tree edges where both ends
    // have stats.
    for i in input.scope.nodes_in(tree.len()) {
        let id = tree.id(i);
        if let Some(p) = tree.node(id).parent() {
            if p.index() < stats.len() {
                let (child_p, parent_p) = (stats[id.index()].signal, stats[p.index()].signal);
                if child_p > parent_p + 1e-9 {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(id.index()),
                            format!(
                                "P(EN) = {child_p} exceeds its parent's {parent_p}; an OR of \
                             enables cannot be less probable than any input"
                            ),
                        )
                        .with_code("GCR-AT13"),
                    );
                }
            }
        }
    }
}
