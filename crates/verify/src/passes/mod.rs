//! The built-in lint passes.

mod activity_tables;
mod determinism;
mod gating;
mod geometry;
mod switched_cap;
mod tree_structure;
mod zero_skew;

pub use activity_tables::ActivityTablesLint;
pub use determinism::DeterminismLint;
pub use gating::GatingLint;
pub use geometry::GeometryLint;
pub use switched_cap::SwitchedCapLint;
pub use tree_structure::TreeStructureLint;
pub use zero_skew::ZeroSkewLint;
