//! `gating`: consistency of the gate placement with the control plan —
//! every *controlled* edge actually carries a gate device, every
//! controlled gate has a finite enable net reaching a controller inside
//! the die (the §2.2 star routing), and the controlled mask agrees with
//! the tree's device role.

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;
use gcr_core::DeviceRole;

/// See the module docs.
pub struct GatingLint;

const ID: &str = "gating";

impl Lint for GatingLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "controlled edges carry gates; every controlled gate has an enable net in the star plan"
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        let tree = input.tree;
        if let Some(mask) = input.controlled {
            if mask.len() != tree.len() {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Design,
                        format!(
                            "controlled mask covers {} edges, tree has {}",
                            mask.len(),
                            tree.len()
                        ),
                    )
                    .with_code("GCR-GA01"),
                );
                return;
            }
        }
        let controlled = input.effective_controlled();

        // A buffered baseline has no control network at all; a mask that
        // claims otherwise contradicts the accounting role.
        if input.role == DeviceRole::Buffer {
            if let Some(i) =
                (0..tree.len()).find(|&i| controlled[i] && tree.node(tree.id(i)).device().is_some())
            {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Edge { child: i },
                        "buffer-role tree has a controlled gate; buffers take no enable wiring",
                    )
                    .with_code("GCR-GA02"),
                );
            }
        }

        let mut controlled_gates = Vec::new();
        for (i, &is_controlled) in controlled.iter().enumerate() {
            let has_device = tree.node(tree.id(i)).device().is_some();
            if is_controlled && !has_device {
                // The reduction pass unties or removes a gate by clearing
                // its mask/device together; a controlled edge without a
                // device means the mask refers to a gate that is gone.
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Edge { child: i },
                        "edge is marked as a controlled gate but carries no device",
                    )
                    .with_code("GCR-GA03")
                    .with_hint("clear the mask bit and the device together when untying a gate"),
                );
            }
            if is_controlled && has_device {
                controlled_gates.push(i);
            }
        }

        if controlled_gates.is_empty() {
            if input.role == DeviceRole::Gate && tree.device_count() == 0 {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Info,
                        Location::Design,
                        "gate-role tree carries no devices; nothing is masked",
                    )
                    .with_code("GCR-GA04"),
                );
            }
            return;
        }

        let Some(controller) = input.controller else {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Design,
                    format!(
                        "{} controlled gates but no controller star plan to drive their enables",
                        controlled_gates.len()
                    ),
                )
                .with_code("GCR-GA05")
                .with_hint("attach a ControllerPlan with with_controller()"),
            );
            return;
        };

        for &i in &controlled_gates {
            let id = tree.id(i);
            let gate_loc = tree.gate_location(id);
            let serving = controller.controller_for(gate_loc);
            let len = controller.enable_wire_length(gate_loc);
            if !len.is_finite() || len < 0.0 {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Edge { child: i },
                        format!("enable net length {len} is not a finite non-negative number"),
                    )
                    .with_code("GCR-GA06"),
                );
            }
            if let Some(die) = input.die {
                if !die.contains(serving) {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Edge { child: i },
                            format!(
                                "enable net terminates at controller ({}, {}), outside the die",
                                serving.x, serving.y
                            ),
                        )
                        .with_code("GCR-GA07"),
                    );
                }
            }
            if let Some(stats) = input.node_stats {
                if i < stats.len() && stats[i].signal >= 1.0 && stats[i].transition <= 0.0 {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Info,
                            Location::Edge { child: i },
                            "controlled gate is always enabled; its enable wire is pure overhead",
                        )
                        .with_code("GCR-GA08"),
                    );
                }
            }
        }
    }
}
