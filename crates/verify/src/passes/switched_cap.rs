//! `switched-cap`: re-derives the paper's objective `W = W(T) + W(S)`
//! (Equation (3)) from first principles and cross-checks
//! [`gcr_core::evaluate_with_mask`] — and, when one is supplied, a stored
//! [`PowerReport`] — against it.
//!
//! The derivation here deliberately takes the naive route: for every
//! edge it walks *up* the tree to find the nearest controlled gate and
//! weights that edge's capacitance by the gate's enable probability
//! (§2.1), then sums each controlled gate's enable star wire weighted by
//! its transition probability (§2.2). `gcr_core::evaluate` computes the
//! same quantity with a memoized single sweep; agreement within float
//! noise is the check.
//!
//! [`PowerReport`]: gcr_core::PowerReport

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;
use gcr_activity::EnableStats;
use gcr_core::{evaluate_with_mask, ControllerPlan};

/// See the module docs.
pub struct SwitchedCapLint;

const ID: &str = "switched-cap";

/// Absolute agreement tolerance (pF) on the switched-capacitance totals.
const CAP_TOL: f64 = 1e-6;

impl Lint for SwitchedCapLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "Equation (3) re-derived from first principles matches gcr-core::evaluate"
    }

    fn whole_design_only(&self) -> bool {
        // Every finding is a Design-level total mismatch; a partial scope
        // never covers those, so the re-derivation would be wasted work.
        true
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        let tree = input.tree;
        let tech = input.tech;
        let n = tree.len();
        if n == 0 {
            return;
        }
        let controlled = input.effective_controlled();
        if controlled.len() != n {
            return; // reported by the gating pass
        }
        // Without per-node statistics every device is accounted always-on.
        let default_stats;
        let stats: &[EnableStats] = match input.node_stats {
            Some(s) if s.len() == n => s,
            Some(_) => return, // reported by the activity pass
            None => {
                default_stats = vec![EnableStats::ALWAYS_ON; n];
                &default_stats
            }
        };
        // A star plan is needed as soon as any gate is controlled; without
        // one the gating pass reports and there is nothing to check here.
        let any_controlled =
            (0..n).any(|i| controlled[i] && tree.node(tree.id(i)).device().is_some());
        let fallback_plan;
        let controller: &ControllerPlan = match input.controller {
            Some(c) => c,
            None if !any_controlled => {
                // Unused by the computation; any plan will do.
                fallback_plan = ControllerPlan::Centralized {
                    location: tree.node(tree.root()).location(),
                };
                &fallback_plan
            }
            None => return,
        };

        // W(T), the naive way: each edge's capacitance — wire, the sink
        // load at its foot, and the child gate pins hanging at its foot —
        // switches with the enable probability of the nearest controlled
        // gate at or above it (§2.1).
        let domain_of = |start: usize| -> f64 {
            let mut cur = start;
            let mut hops = 0usize;
            loop {
                let node = tree.node(tree.id(cur));
                if controlled[cur] && node.device().is_some() {
                    return stats[cur].signal;
                }
                match node.parent() {
                    Some(p) => cur = p.index(),
                    None => return 1.0,
                }
                hops += 1;
                if hops > n {
                    return f64::NAN; // cyclic; the structure pass reports
                }
            }
        };
        let mut clock_cap = 0.0;
        for i in 0..n {
            let node = tree.node(tree.id(i));
            let mut cap_here = tech.unit_cap() * node.electrical_length();
            if let Some(k) = node.sink() {
                cap_here += tree.sink_cap(k);
            }
            for &ch in node.children() {
                if let Some(d) = tree.node(ch).device() {
                    cap_here += d.input_cap();
                }
            }
            clock_cap += domain_of(i) * cap_here;
        }
        // The root gate's own input pin is driven by the free-running
        // source every cycle.
        if let Some(d) = tree.node(tree.root()).device() {
            clock_cap += d.input_cap();
        }

        // W(S): each controlled gate's enable leg switches with the
        // enable's transition probability (§2.2).
        let mut control_cap = 0.0;
        for (id, d) in tree.devices() {
            if controlled[id.index()] {
                let len = controller.enable_wire_length(tree.gate_location(id));
                control_cap +=
                    (tech.control_unit_cap() * len + d.input_cap()) * stats[id.index()].transition;
            }
        }
        let total = clock_cap + control_cap;

        // Cross-check the production evaluator.
        let reference = evaluate_with_mask(tree, stats, controller, tech, &controlled);
        for (name, ours, theirs) in [
            ("W(T)", clock_cap, reference.clock_switched_cap),
            ("W(S)", control_cap, reference.control_switched_cap),
            ("W", total, reference.total_switched_cap),
        ] {
            if (ours - theirs).abs() > CAP_TOL {
                out.push(Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Design,
                    format!(
                        "{name} from first principles is {ours} pF; gcr-core::evaluate \
                         reports {theirs} pF"
                    ),
                ).with_code("GCR-SC01").with_hint("the naive Equation (3) walk and the memoized evaluator disagree; one of them is wrong"));
            }
        }

        // Cross-check a stored report, if the caller archived one.
        if let Some(stored) = input.power_report {
            for (name, ours, theirs) in [
                ("W(T)", clock_cap, stored.clock_switched_cap),
                ("W(S)", control_cap, stored.control_switched_cap),
                ("W", total, stored.total_switched_cap),
            ] {
                if (ours - theirs).abs() > CAP_TOL {
                    out.push(Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Design,
                        format!(
                            "stored power report claims {name} = {theirs} pF; first-principles \
                             recomputation gives {ours} pF"
                        ),
                    ).with_code("GCR-SC02").with_hint("regenerate the archived PowerReport; the design changed since it was computed"));
                }
            }
        }
    }
}
