//! `tree-structure`: the shape invariants every embedded [`ClockTree`]
//! must satisfy — single root, mutual parent/child consistency,
//! acyclicity, binary internal nodes, the sink-index bijection and the
//! children-before-parents index convention the bottom-up traversals of
//! `gcr-cts` and `gcr-core` rely on.
//!
//! [`ClockTree`]: gcr_cts::ClockTree

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;

/// See the module docs.
pub struct TreeStructureLint;

const ID: &str = "tree-structure";

impl Lint for TreeStructureLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "single root, parent/child consistency, acyclicity, binary internal nodes, sink bijection"
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        let tree = input.tree;
        let n = tree.len();
        if n == 0 {
            out.push(
                Diagnostic::new(ID, Severity::Error, Location::Design, "tree has no nodes")
                    .with_code("GCR-TS01"),
            );
            return;
        }
        let s = tree.num_sinks();
        if n != 2 * s.max(1) - 1 {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Design,
                    format!(
                        "{n} nodes for {s} sinks; a binary merge tree has 2N-1 = {}",
                        2 * s.max(1) - 1
                    ),
                )
                .with_code("GCR-TS02"),
            );
        }

        // Exactly one root, and it is the last node (the merge-order
        // convention every bottom-up loop in the workspace assumes).
        let root = tree.root();
        for id in tree.ids() {
            let node = tree.node(id);
            match node.parent() {
                None if id != root => out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(id.index()),
                        format!("parentless node {id} is not the root (v{})", root.index()),
                    )
                    .with_code("GCR-TS03"),
                ),
                Some(p) if id == root => out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(id.index()),
                        format!("root node has parent {p}"),
                    )
                    .with_code("GCR-TS04"),
                ),
                _ => {}
            }
        }

        // Parent/child mutual consistency, child arity, and the
        // children-precede-parents index order.
        for id in tree.ids() {
            let node = tree.node(id);
            let kids = node.children();
            if !kids.is_empty() && kids.len() != 2 {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(id.index()),
                        format!(
                            "internal node has {} children; merges are binary",
                            kids.len()
                        ),
                    )
                    .with_code("GCR-TS05"),
                );
            }
            for &ch in kids {
                if ch.index() >= id.index() {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(id.index()),
                            format!("child {ch} does not precede its parent {id} in index order"),
                        )
                        .with_code("GCR-TS06"),
                    );
                }
                if tree.node(ch).parent() != Some(id) {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(ch.index()),
                            format!(
                                "child {ch} of {id} points back at {:?}",
                                tree.node(ch).parent().map(gcr_cts::TreeId::index)
                            ),
                        )
                        .with_code("GCR-TS07"),
                    );
                }
            }
            if let Some(p) = node.parent() {
                if p.index() >= n {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(id.index()),
                            format!("parent index {} out of range", p.index()),
                        )
                        .with_code("GCR-TS08"),
                    );
                } else if !tree.node(p).children().contains(&id) {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(id.index()),
                            format!("{id} claims parent {p}, which does not list it as a child"),
                        )
                        .with_code("GCR-TS09"),
                    );
                }
            }
        }

        // Acyclicity: every parent chain must reach the root within n
        // steps.
        for id in tree.ids() {
            let mut cur = id;
            let mut steps = 0usize;
            while let Some(p) = tree.node(cur).parent() {
                if p.index() >= n {
                    break; // already reported above
                }
                cur = p;
                steps += 1;
                if steps > n {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(id.index()),
                            format!("parent chain from {id} cycles without reaching the root"),
                        )
                        .with_code("GCR-TS10"),
                    );
                    break;
                }
            }
        }

        // Sink-index bijection: leaves are exactly the nodes 0..N, each
        // bound to its own sink index, and internal nodes carry none.
        let mut seen = vec![false; s];
        for id in tree.ids() {
            let node = tree.node(id);
            match node.sink() {
                Some(k) => {
                    if !node.children().is_empty() {
                        out.push(
                            Diagnostic::new(
                                ID,
                                Severity::Error,
                                Location::Node(id.index()),
                                format!("internal node is bound to sink s{k}"),
                            )
                            .with_code("GCR-TS11"),
                        );
                    }
                    if k >= s {
                        out.push(
                            Diagnostic::new(
                                ID,
                                Severity::Error,
                                Location::Node(id.index()),
                                format!("sink index s{k} out of range (N = {s})"),
                            )
                            .with_code("GCR-TS12"),
                        );
                    } else {
                        if seen[k] {
                            out.push(
                                Diagnostic::new(
                                    ID,
                                    Severity::Error,
                                    Location::Sink(k),
                                    format!("sink s{k} bound to more than one leaf"),
                                )
                                .with_code("GCR-TS13"),
                            );
                        }
                        seen[k] = true;
                        if id.index() != k {
                            out.push(
                                Diagnostic::new(
                                    ID,
                                    Severity::Error,
                                    Location::Node(id.index()),
                                    format!(
                                        "leaf v{} bound to s{k}; leaf ids must equal sink indices",
                                        id.index()
                                    ),
                                )
                                .with_code("GCR-TS14"),
                            );
                        }
                    }
                }
                None => {
                    if node.children().is_empty() {
                        out.push(
                            Diagnostic::new(
                                ID,
                                Severity::Error,
                                Location::Node(id.index()),
                                "leaf node is not bound to any sink",
                            )
                            .with_code("GCR-TS15"),
                        );
                    }
                }
            }
        }
        for (k, &was_seen) in seen.iter().enumerate() {
            if !was_seen {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Sink(k),
                        format!("sink s{k} is not bound to any leaf"),
                    )
                    .with_code("GCR-TS16"),
                );
            }
        }

        // The root drives the tree directly: it has no parent edge, so a
        // nonzero electrical length there is meaningless.
        if tree.node(root).electrical_length() != 0.0 {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Edge {
                        child: root.index(),
                    },
                    format!(
                        "root carries a parent-edge length of {}; it has no parent",
                        tree.node(root).electrical_length()
                    ),
                )
                .with_code("GCR-TS17")
                .with_hint("zero the root's electrical_length; only child edges carry wire"),
            );
        }
    }
}
