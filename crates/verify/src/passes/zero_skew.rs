//! `zero-skew`: an independent Elmore recomputation of every
//! source-to-sink delay, confirming the Tsay-style DME embedding's
//! central promise — equal arrival at every sink (§4.1, Equation (1)).
//!
//! The recomputation is written against the [`ClockTree`] directly, with
//! its own downstream-capacitance and arrival recursions. It shares no
//! code with the router's merge-time delay bookkeeping
//! (`gcr-cts::merge`) nor with [`ClockTree::to_rc_tree`], so a bug in
//! either shows up as a disagreement here instead of being verified
//! against itself.
//!
//! [`ClockTree`]: gcr_cts::ClockTree
//! [`ClockTree::to_rc_tree`]: gcr_cts::ClockTree::to_rc_tree

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;

/// See the module docs.
pub struct ZeroSkewLint;

const ID: &str = "zero-skew";

impl Lint for ZeroSkewLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "independent Elmore recomputation: every sink hears the clock at the same time"
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        let tree = input.tree;
        let tech = input.tech;
        let n = tree.len();
        if n == 0 || tree.num_sinks() == 0 {
            return;
        }

        // Downstream capacitance at each node's output. The device on a
        // child edge sits at the top of that edge and hides everything
        // below it behind its input pin.
        let mut down = vec![0.0f64; n];
        for i in 0..n {
            let node = tree.node(tree.id(i));
            let mut c = node.sink().map_or(0.0, |k| tree.sink_cap(k));
            for &ch in node.children() {
                let child = tree.node(ch);
                c += match child.device() {
                    Some(d) => d.input_cap(),
                    None => tech.wire_cap(child.electrical_length()) + down[ch.index()],
                };
            }
            down[i] = c;
        }

        // Arrival at each node, top-down. `drive[i]` is the Elmore time at
        // node i's location, i.e. the potential driving its child edges.
        let mut drive = vec![0.0f64; n];
        let mut arrivals: Vec<(usize, f64)> = Vec::with_capacity(tree.num_sinks());
        for i in (0..n).rev() {
            let node = tree.node(tree.id(i));
            let len = node.electrical_length();
            let (r, c_wire) = (tech.wire_res(len), tech.wire_cap(len));
            let base = match node.parent() {
                Some(p) => drive[p.index()],
                None => {
                    // The free-running source drives the root; it sees
                    // either the root gate's pin or the bare tree.
                    let burden = match node.device() {
                        Some(d) => d.input_cap(),
                        None => c_wire + down[i],
                    };
                    tech.source().stage_delay(burden)
                }
            };
            let after_gate = base
                + node
                    .device()
                    .map_or(0.0, |d| d.stage_delay(c_wire + down[i]));
            let arr = after_gate + r * (c_wire / 2.0 + down[i]);
            drive[i] = arr;
            if let Some(k) = node.sink() {
                arrivals.push((k, arr));
            }
        }

        let Some(&(_, first)) = arrivals.first() else {
            return;
        };
        let (mut min_k, mut min_t) = (arrivals[0].0, first);
        let (mut max_k, mut max_t) = (arrivals[0].0, first);
        for &(k, t) in &arrivals {
            if t < min_t {
                (min_k, min_t) = (k, t);
            }
            if t > max_t {
                (max_k, max_t) = (k, t);
            }
        }
        let skew = max_t - min_t;
        let tol = input.skew_tolerance_ps.max(1e-12 * max_t.abs());
        if skew > tol {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Sink(max_k),
                    format!(
                        "skew {skew:.6} ps exceeds tolerance {tol:.6} ps: s{max_k} hears the \
                         clock at {max_t:.6} ps, s{min_k} at {min_t:.6} ps"
                    ),
                )
                .with_code("GCR-ZS01")
                .with_hint(
                    "re-run embed() after any topology or device change; \
                     zero skew is only guaranteed by a fresh DME pass",
                ),
            );
        }
        if !max_t.is_finite() {
            out.push(
                Diagnostic::new(
                    ID,
                    Severity::Error,
                    Location::Design,
                    "non-finite Elmore delay; electrical parameters are corrupt",
                )
                .with_code("GCR-ZS02"),
            );
        }
    }
}
