//! `geometry`: placement sanity — finite coordinates, nodes inside the
//! die outline (when one is provided), and the snaking invariant of the
//! DME embedding: an edge's electrical length is at least the Manhattan
//! distance between its placed endpoints (wire can be snaked to lengthen
//! a path, never shortened below geometry; §4.1 of the paper).

use crate::diag::{Diagnostic, Location, Severity};
use crate::input::VerifyInput;
use crate::lint::Lint;

/// See the module docs.
pub struct GeometryLint;

const ID: &str = "geometry";

impl Lint for GeometryLint {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "finite in-die placements; electrical length >= Manhattan distance (non-negative snaking)"
    }

    fn run(&self, input: &VerifyInput<'_>, out: &mut Vec<Diagnostic>) {
        let tree = input.tree;
        // Every finding anchors at the node (or its parent edge), so a
        // scoped run only needs to walk the dirty set.
        for i in input.scope.nodes_in(tree.len()) {
            let id = tree.id(i);
            let node = tree.node(id);
            let loc = node.location();
            if !loc.x.is_finite() || !loc.y.is_finite() {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Node(id.index()),
                        format!("non-finite location ({}, {})", loc.x, loc.y),
                    )
                    .with_code("GCR-GE01"),
                );
                continue;
            }
            if let Some(die) = input.die {
                if !die.contains(loc) {
                    out.push(
                        Diagnostic::new(
                            ID,
                            Severity::Error,
                            Location::Node(id.index()),
                            format!("placed at ({}, {}), outside the die {die:?}", loc.x, loc.y),
                        )
                        .with_code("GCR-GE02")
                        .with_hint("re-run embed(); DME tap points never leave the sink bbox"),
                    );
                }
            }
            let el = node.electrical_length();
            if !el.is_finite() || el < 0.0 {
                out.push(
                    Diagnostic::new(
                        ID,
                        Severity::Error,
                        Location::Edge { child: id.index() },
                        format!("electrical length {el} is not a finite non-negative number"),
                    )
                    .with_code("GCR-GE03"),
                );
                continue;
            }
            if let Some(p) = node.parent() {
                if p.index() < tree.len() {
                    let dist = loc.manhattan(tree.node(p).location());
                    // Float slack: the DME embedding computes both
                    // quantities from the same coordinates, so anything
                    // beyond rounding noise is a genuinely short wire.
                    let tol = 1e-9 * dist.max(1.0);
                    if el + tol < dist {
                        out.push(
                            Diagnostic::new(
                                ID,
                                Severity::Error,
                                Location::Edge { child: id.index() },
                                format!(
                                    "electrical length {el} shorter than the {dist} Manhattan \
                                     distance to the parent (negative snaking)"
                                ),
                            )
                            .with_code("GCR-GE04")
                            .with_hint(
                                "wire may be snaked longer than geometry, never shorter; \
                                 recompute the edge length from the embedding",
                            ),
                        );
                    }
                }
            }
        }
    }
}
