//! Verification scopes: which part of the design a run re-checks.
//!
//! A [`Scope`] is either the full tree or a *dirty set* of topology node
//! indices (e.g. the subtree an ECO re-balance touched, or the frontier a
//! single greedy merge created). Passes use the scope to re-derive their
//! invariants only over the dirty set plus its boundary conditions, and
//! the [`Verifier`](crate::Verifier) guarantees the scoped-oracle
//! contract: a scoped run reports **exactly** the diagnostics a full run
//! reports at locations the scope [`covers`](Scope::covers).
//!
//! Coverage rules (see `docs/invariants.md` §Scope semantics):
//!
//! - `Node(i)` and `Edge { child: i }` are covered iff node `i` is dirty.
//! - `Sink(k)` is covered iff node `k` is dirty (leaf ids equal sink
//!   indices — the bijection the `tree-structure` pass enforces).
//! - `Design`, `Table` and `TableCell` locations are whole-design
//!   findings; only [`Scope::Full`] covers them.

use crate::diag::Location;
use gcr_cts::ClockTree;

/// The part of the design a verifier run re-checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Scope {
    /// Every node, every table, every whole-design property — the
    /// one-shot linter behavior.
    #[default]
    Full,
    /// A dirty set of topology node indices, sorted and deduplicated.
    /// Whole-design findings are out of scope; node-anchored findings
    /// are reported iff their node is in the set.
    Dirty(Vec<usize>),
}

impl Scope {
    /// The full-tree scope.
    #[must_use]
    pub fn full() -> Self {
        Scope::Full
    }

    /// A dirty-set scope over the given topology node indices
    /// (deduplicated and sorted; order of the input is irrelevant).
    #[must_use]
    pub fn nodes(nodes: impl IntoIterator<Item = usize>) -> Self {
        let mut v: Vec<usize> = nodes.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Scope::Dirty(v)
    }

    /// The subtree rooted at topology node `root` (inclusive) — the dirty
    /// set of a local re-balance or of one committed merge.
    #[must_use]
    pub fn subtree(tree: &ClockTree, root: usize) -> Self {
        if root >= tree.len() {
            return Scope::Dirty(Vec::new());
        }
        let mut stack = vec![tree.id(root)];
        let mut nodes = Vec::new();
        while let Some(id) = stack.pop() {
            nodes.push(id.index());
            stack.extend(tree.node(id).children().iter().copied());
        }
        Scope::nodes(nodes)
    }

    /// Whether this is the full-tree scope.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, Scope::Full)
    }

    /// Whether topology node `i` is inside the scope.
    #[must_use]
    pub fn contains_node(&self, i: usize) -> bool {
        match self {
            Scope::Full => true,
            Scope::Dirty(nodes) => nodes.binary_search(&i).is_ok(),
        }
    }

    /// Whether a diagnostic at `location` belongs to this scope — the
    /// oracle predicate: a scoped run reports exactly the full run's
    /// diagnostics whose locations this returns `true` for.
    #[must_use]
    pub fn covers(&self, location: &Location) -> bool {
        match self {
            Scope::Full => true,
            Scope::Dirty(_) => match location {
                Location::Node(i) | Location::Edge { child: i } | Location::Sink(i) => {
                    self.contains_node(*i)
                }
                Location::Design | Location::Table(_) | Location::TableCell { .. } => false,
            },
        }
    }

    /// Iterates the in-scope node indices of a tree with `len` nodes, in
    /// ascending order (all of them under [`Scope::Full`]; dirty indices
    /// past the tree are skipped).
    pub fn nodes_in(&self, len: usize) -> impl Iterator<Item = usize> + '_ {
        let (full, dirty): (Option<std::ops::Range<usize>>, &[usize]) = match self {
            Scope::Full => (Some(0..len), &[]),
            Scope::Dirty(nodes) => (None, nodes.as_slice()),
        };
        full.into_iter()
            .flatten()
            .chain(dirty.iter().copied().filter(move |&i| i < len))
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scope::Full => f.write_str("full"),
            Scope::Dirty(nodes) => write!(f, "dirty({} nodes)", nodes.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_sets_sort_and_dedup() {
        let s = Scope::nodes([5, 1, 3, 1, 5]);
        assert_eq!(s, Scope::Dirty(vec![1, 3, 5]));
        assert!(s.contains_node(3) && !s.contains_node(2));
        assert!(!s.is_full());
        assert_eq!(s.to_string(), "dirty(3 nodes)");
    }

    #[test]
    fn coverage_follows_the_location_kind() {
        let s = Scope::nodes([2, 4]);
        assert!(s.covers(&Location::Node(2)));
        assert!(s.covers(&Location::Edge { child: 4 }));
        assert!(s.covers(&Location::Sink(2)));
        assert!(!s.covers(&Location::Node(3)));
        assert!(!s.covers(&Location::Design));
        assert!(!s.covers(&Location::Table("IFT")));
        assert!(Scope::full().covers(&Location::Design));
    }

    #[test]
    fn nodes_in_clips_to_the_tree() {
        let s = Scope::nodes([0, 2, 99]);
        assert_eq!(s.nodes_in(5).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(Scope::full().nodes_in(3).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
