//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5–§6) from the substrates in this workspace.
//!
//! Each experiment is a library function returning structured rows — the
//! binaries under `src/bin/` print them as ASCII tables, the Criterion
//! benches in `gcr-bench` time them, and the integration tests assert the
//! paper's qualitative shapes on them:
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Table 4 (benchmark characteristics) | [`table4`] | `cargo run -p gcr-report --bin table4` |
//! | Fig. 3 (buffered vs gated vs gate-reduced, r1–r5) | [`fig3`] | `… --bin fig3` |
//! | Fig. 4 (module activity vs switched capacitance) | [`fig4`] | `… --bin fig4` |
//! | Fig. 5 (gate reduction vs switched capacitance/area) | [`fig5`] | `… --bin fig5` |
//! | Fig. 6 / §6 (distributed controllers) | [`fig6`] | `… --bin fig6` |
//!
//! The pipeline shared by all of them lives in [`run_pipeline`]: generate
//! a workload, build the buffered baseline, run the gated router, apply
//! gate reduction, and evaluate each tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod svg;
mod table;

pub use experiments::ext::{
    corner_study, optimal_vs_heuristic, seeded_workload, skew_tradeoff_study, tech_scaling_study,
    variance_study, CornerRow, OptimalRow, ScalingRow, SkewTradeoffRow, Stats1d, VarianceSummary,
};
pub use experiments::fig3::{
    fig3, render_area as render_fig3_area, render_switched_cap as render_fig3_switched_cap, Fig3Row,
};
pub use experiments::fig4::{fig4, render as render_fig4, Fig4Row};
pub use experiments::fig5::{fig5, render as render_fig5, Fig5Row};
pub use experiments::fig6::{fig6, render as render_fig6, Fig6Row};
pub use experiments::pipeline::{run_pipeline, PipelineResult, DEFAULT_STRENGTHS};
pub use experiments::table4::{render as render_table4, table4, Table4Row};
pub use svg::{render_svg, SvgOptions};
pub use table::TextTable;
