use std::fmt::Write as _;

use gcr_activity::EnableStats;
use gcr_core::ControllerPlan;
use gcr_cts::ClockTree;
use gcr_geometry::BBox;

/// Options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Output image width in pixels (height follows the die aspect).
    pub width_px: f64,
    /// Draw the enable star wires to each *controlled* gate.
    pub draw_control: bool,
    /// Per-node enable statistics for gate coloring (green = rarely on,
    /// red = always on); `None` renders all gates neutral.
    pub node_stats: Option<Vec<EnableStats>>,
    /// Which gates are controlled (untied gates render hollow); `None`
    /// treats every device as controlled.
    pub controlled: Option<Vec<bool>>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 800.0,
            draw_control: true,
            node_stats: None,
            controlled: None,
        }
    }
}

/// Renders an embedded clock tree as a standalone SVG document: die
/// outline, clock wires, sinks (dots), gates (squares, colored by their
/// enable probability when stats are supplied), and optionally the enable
/// star routing to the controller(s).
///
/// The output is deterministic and suitable for golden-file testing; see
/// the `render_tree` binary for a file-producing front end.
///
/// # Panics
///
/// Panics if `node_stats`/`controlled` are present but do not cover every
/// tree node.
#[must_use]
pub fn render_svg(
    tree: &ClockTree,
    die: BBox,
    controller: &ControllerPlan,
    options: &SvgOptions,
) -> String {
    if let Some(stats) = &options.node_stats {
        assert_eq!(stats.len(), tree.len(), "stats must cover every node");
    }
    if let Some(c) = &options.controlled {
        assert_eq!(c.len(), tree.len(), "controlled mask must cover every node");
    }
    let scale = options.width_px / die.width().max(1.0);
    let h = die.height() * scale;
    let px = |x: f64| (x - die.min().x) * scale;
    // SVG y grows downward; flip so the die reads like a floorplan.
    let py = |y: f64| h - (y - die.min().y) * scale;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"##,
        options.width_px, h, options.width_px, h
    );
    let _ = writeln!(
        s,
        r##"<rect x="0" y="0" width="{:.0}" height="{:.0}" fill="#fbfbf8" stroke="#888"/>"##,
        options.width_px, h
    );

    // Enable star wires first (underneath everything).
    if options.draw_control {
        for (id, _) in tree.devices() {
            if let Some(c) = &options.controlled {
                if !c[id.index()] {
                    continue;
                }
            }
            let g = tree.gate_location(id);
            let cp = controller.controller_for(g);
            let _ = writeln!(
                s,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#b9a" stroke-width="0.5" opacity="0.5"/>"##,
                px(cp.x),
                py(cp.y),
                px(g.x),
                py(g.y)
            );
        }
        // Controllers as diamonds.
        let mut controllers: Vec<gcr_geometry::Point> = Vec::new();
        for (id, _) in tree.devices() {
            let cp = controller.controller_for(tree.gate_location(id));
            if !controllers.iter().any(|p| p.manhattan(cp) < 1e-9) {
                controllers.push(cp);
            }
        }
        for cp in controllers {
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="8" height="8" transform="rotate(45 {:.1} {:.1})" fill="#94d"/>"##,
                px(cp.x) - 4.0,
                py(cp.y) - 4.0,
                px(cp.x),
                py(cp.y)
            );
        }
    }

    // Clock wires: the realized rectilinear routes, trombone detours
    // included.
    for route in gcr_cts::realize_routes(tree) {
        let mut d = String::new();
        for (k, p) in route.points.iter().enumerate() {
            let _ = write!(
                d,
                "{}{:.1} {:.1}",
                if k == 0 { "M " } else { " L " },
                px(p.x),
                py(p.y)
            );
        }
        let _ = writeln!(
            s,
            r##"<path d="{d}" fill="none" stroke="#345" stroke-width="1.2"/>"##
        );
    }

    // Gates at edge tops.
    for (id, _) in tree.devices() {
        let g = tree.gate_location(id);
        let controlled = options.controlled.as_ref().is_none_or(|c| c[id.index()]);
        let fill = match (&options.node_stats, controlled) {
            (_, false) => "none".to_owned(),
            (Some(stats), true) => {
                let p = stats[id.index()].signal.clamp(0.0, 1.0);
                format!(
                    "rgb({},{},60)",
                    (255.0 * p) as u32,
                    (200.0 * (1.0 - p)) as u32
                )
            }
            (None, true) => "#777".to_owned(),
        };
        let _ = writeln!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="5" height="5" fill="{fill}" stroke="#333" stroke-width="0.6"/>"##,
            px(g.x) - 2.5,
            py(g.y) - 2.5
        );
    }

    // Sinks.
    for i in 0..tree.num_sinks() {
        let p = tree.node(tree.sink_id(i)).location();
        let _ = writeln!(
            s,
            r##"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="#067"/>"##,
            px(p.x),
            py(p.y)
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_activity::{ActivityTables, CpuModel};
    use gcr_core::{route_gated, RouterConfig};
    use gcr_cts::Sink;
    use gcr_geometry::Point;
    use gcr_rctree::Technology;

    fn fixture() -> (gcr_core::GatedRouting, RouterConfig) {
        let sinks: Vec<Sink> = (0..8)
            .map(|i| {
                Sink::new(
                    Point::new(
                        500.0 + f64::from(i % 4) * 2_000.0,
                        500.0 + f64::from(i / 4) * 4_000.0,
                    ),
                    0.04,
                )
            })
            .collect();
        let model = CpuModel::builder(8)
            .instructions(6)
            .seed(4)
            .build()
            .unwrap();
        let tables = ActivityTables::scan(model.rtl(), &model.generate_stream(1_000));
        let die = BBox::new(Point::new(0.0, 0.0), Point::new(8_000.0, 6_000.0));
        let config = RouterConfig::new(Technology::default(), die);
        (route_gated(&sinks, &tables, &config).unwrap(), config)
    }

    #[test]
    fn renders_complete_document() {
        let (routing, config) = fixture();
        let svg = render_svg(
            &routing.tree,
            config.die(),
            config.controller(),
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 8 sinks, 15 wires... at least the sinks are all present.
        assert_eq!(svg.matches("<circle").count(), 8);
        // All 15 nodes carry gates.
        assert_eq!(svg.matches("<rect").count(), 15 + 1 + 1); // gates + die + controller
        assert!(svg.contains("<line"), "control stars missing");
    }

    #[test]
    fn stats_color_gates_and_mask_hides_stars() {
        let (routing, config) = fixture();
        let n = routing.tree.len();
        let options = SvgOptions {
            node_stats: Some(routing.node_stats.clone()),
            controlled: Some(vec![false; n]),
            ..SvgOptions::default()
        };
        let svg = render_svg(&routing.tree, config.die(), config.controller(), &options);
        // No controlled gates -> no star wires, hollow gate squares.
        assert!(!svg.contains("<line"));
        assert!(svg.contains(r##"fill="none""##));
    }

    #[test]
    fn deterministic() {
        let (routing, config) = fixture();
        let a = render_svg(
            &routing.tree,
            config.die(),
            config.controller(),
            &SvgOptions::default(),
        );
        let b = render_svg(
            &routing.tree,
            config.die(),
            config.controller(),
            &SvgOptions::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "stats must cover")]
    fn stats_length_checked() {
        let (routing, config) = fixture();
        let options = SvgOptions {
            node_stats: Some(vec![]),
            ..SvgOptions::default()
        };
        let _ = render_svg(&routing.tree, config.die(), config.controller(), &options);
    }
}
