use std::fmt;

/// A minimal right-aligned ASCII table for experiment output.
///
/// ```
/// use gcr_report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench", "sinks"]);
/// t.row(vec!["r1".into(), "267".into()]);
/// let s = t.to_string();
/// assert!(s.contains("r1") && s.contains("267"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "longheader"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
