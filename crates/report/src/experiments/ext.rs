//! The extension experiments as tested library functions: corner analysis,
//! cross-seed variance, technology scaling, the bounded-skew trade-off,
//! and the DP-vs-heuristic reduction comparison. The binaries of the same
//! names are thin wrappers over these.

use gcr_core::{
    corner_analysis, evaluate, evaluate_buffered, evaluate_with_mask, reduce_gates_optimal,
    reduce_gates_untied, route_gated, DeviceRole, PowerReport, ReductionParams, RouteError,
    RouterConfig,
};
use gcr_cts::{build_buffered_tree, embed_bounded_skew};
use gcr_rctree::Technology;
use gcr_workloads::{Workload, WorkloadParams};

use crate::experiments::pipeline::{run_pipeline, DEFAULT_STRENGTHS};

fn workload_err(e: gcr_activity::ActivityError) -> RouteError {
    RouteError::Cts(gcr_cts::CtsError::InvalidTopology {
        reason: format!("workload generation failed: {e}"),
    })
}

/// Summary statistics of one scalar metric across seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct Stats1d {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Stats1d {
    /// Computes the summary of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    #[must_use]
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "statistics over an empty sample");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        Self {
            mean,
            std: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Result of [`variance_study`]: the Figure-3 ratios across seeds.
#[derive(Clone, Debug)]
pub struct VarianceSummary {
    /// Fully gated / buffered total switched capacitance.
    pub gated_ratio: Stats1d,
    /// Best reduced / buffered total switched capacitance.
    pub reduced_ratio: Stats1d,
    /// Percent of gate controls removed at the chosen point.
    pub reduction_pct: Stats1d,
    /// Seeds on which the reduced tree beat the buffered baseline.
    pub wins: usize,
    /// Seeds evaluated.
    pub seeds: usize,
}

/// Runs the §5 pipeline across `n_seeds` independent workload draws of the
/// same benchmark and summarizes the headline ratios.
///
/// # Errors
///
/// Returns [`RouteError`] when any draw fails to route.
///
/// # Panics
///
/// Panics if `n_seeds` is zero.
pub fn variance_study(
    make_workload: impl Fn(u64) -> Result<Workload, gcr_activity::ActivityError>,
    n_seeds: usize,
    tech: &Technology,
) -> Result<VarianceSummary, RouteError> {
    assert!(n_seeds > 0, "variance study needs at least one seed");
    let mut gated = Vec::with_capacity(n_seeds);
    let mut reduced = Vec::with_capacity(n_seeds);
    let mut pct = Vec::with_capacity(n_seeds);
    for seed in 0..n_seeds as u64 {
        let w = make_workload(seed).map_err(workload_err)?;
        let r = run_pipeline(&w, tech, DEFAULT_STRENGTHS)?;
        gated.push(r.gated.total_switched_cap / r.buffered.total_switched_cap);
        reduced.push(r.reduced.total_switched_cap / r.buffered.total_switched_cap);
        pct.push(100.0 * r.reduction_fraction);
    }
    Ok(VarianceSummary {
        wins: reduced.iter().filter(|&&r| r < 1.0).count(),
        seeds: n_seeds,
        gated_ratio: Stats1d::from_samples(&gated),
        reduced_ratio: Stats1d::from_samples(&reduced),
        reduction_pct: Stats1d::from_samples(&pct),
    })
}

/// One corner of [`corner_study`], buffered vs gated side by side.
#[derive(Clone, Debug)]
pub struct CornerRow {
    /// Corner label.
    pub corner: String,
    /// Buffered-tree skew (ps).
    pub buffered_skew: f64,
    /// Buffered-tree insertion delay (ps).
    pub buffered_delay: f64,
    /// Gated-tree skew (ps).
    pub gated_skew: f64,
    /// Gated-tree insertion delay (ps).
    pub gated_delay: f64,
}

/// Wire process corners (±`spread` on unit R and C, devices fixed) for the
/// buffered baseline and the gated tree of one workload.
///
/// # Errors
///
/// Returns [`RouteError`] when routing fails or the spread is invalid.
pub fn corner_study(
    workload: &Workload,
    tech: &Technology,
    spread: f64,
) -> Result<Vec<CornerRow>, RouteError> {
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let buffered = build_buffered_tree(tech, &workload.benchmark.sinks, config.source())?;
    let gated = route_gated(&workload.benchmark.sinks, &workload.tables, &config)?.tree;
    let to_cts = |e: gcr_rctree::TechnologyError| {
        RouteError::Cts(gcr_cts::CtsError::InvalidTopology {
            reason: format!("corner technology invalid: {e}"),
        })
    };
    let b = corner_analysis(&buffered, tech, spread).map_err(to_cts)?;
    let g = corner_analysis(&gated, tech, spread).map_err(to_cts)?;
    Ok(b.into_iter()
        .zip(g)
        .map(|(cb, cg)| CornerRow {
            corner: cb.name,
            buffered_skew: cb.skew,
            buffered_delay: cb.delay,
            gated_skew: cg.skew,
            gated_delay: cg.delay,
        })
        .collect())
}

/// One technology node of [`tech_scaling_study`].
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Node label.
    pub node: String,
    /// Buffered baseline report.
    pub buffered: PowerReport,
    /// Best reduced report.
    pub reduced: PowerReport,
}

/// Re-runs the §5 pipeline for one workload under several technologies.
///
/// # Errors
///
/// Returns [`RouteError`] when any run fails to route.
pub fn tech_scaling_study(
    workload: &Workload,
    techs: &[(&str, Technology)],
) -> Result<Vec<ScalingRow>, RouteError> {
    techs
        .iter()
        .map(|(name, tech)| {
            let r = run_pipeline(workload, tech, DEFAULT_STRENGTHS)?;
            Ok(ScalingRow {
                node: (*name).to_owned(),
                buffered: r.buffered,
                reduced: r.reduced,
            })
        })
        .collect()
}

/// One skew budget of [`skew_tradeoff_study`].
#[derive(Clone, Debug)]
pub struct SkewTradeoffRow {
    /// Requested budget (ps).
    pub bound: f64,
    /// Measured Elmore skew (ps), always ≤ bound.
    pub measured_skew: f64,
    /// Total electrical wirelength (layout units).
    pub wire_length: f64,
    /// Clock-tree switched capacitance (pF).
    pub clock_switched_cap: f64,
    /// Total switched capacitance (pF).
    pub total_switched_cap: f64,
}

/// Bounded-skew embeddings of the gated topology across skew budgets.
///
/// # Errors
///
/// Returns [`RouteError`] when routing fails.
pub fn skew_tradeoff_study(
    workload: &Workload,
    tech: &Technology,
    bounds: &[f64],
) -> Result<Vec<SkewTradeoffRow>, RouteError> {
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let routing = route_gated(&workload.benchmark.sinks, &workload.tables, &config)?;
    bounds
        .iter()
        .map(|&bound| {
            let tree = embed_bounded_skew(
                &routing.topology,
                &workload.benchmark.sinks,
                tech,
                &routing.assignment,
                config.source(),
                bound,
            )?;
            let report = evaluate(
                &tree,
                &routing.node_stats,
                config.controller(),
                tech,
                DeviceRole::Gate,
            );
            Ok(SkewTradeoffRow {
                bound,
                measured_skew: report.skew,
                wire_length: tree.total_wire_length(),
                clock_switched_cap: report.clock_switched_cap,
                total_switched_cap: report.total_switched_cap,
            })
        })
        .collect()
}

/// One benchmark of [`optimal_vs_heuristic`].
#[derive(Clone, Debug)]
pub struct OptimalRow {
    /// Benchmark name.
    pub bench: String,
    /// Buffered baseline total (pF).
    pub buffered: f64,
    /// Best §4.3-heuristic total (pF) and its controlled-gate count.
    pub heuristic: (f64, usize),
    /// DP-optimal total (pF) and its controlled-gate count.
    pub optimal: (f64, usize),
}

/// The exact DP control optimum vs the best §4.3 heuristic point for one
/// workload.
///
/// # Errors
///
/// Returns [`RouteError`] when routing fails.
#[expect(
    clippy::expect_used,
    reason = "the strength grid scanned below is a non-empty literal"
)]
pub fn optimal_vs_heuristic(
    workload: &Workload,
    tech: &Technology,
) -> Result<OptimalRow, RouteError> {
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let buffered = evaluate_buffered(
        &build_buffered_tree(tech, &workload.benchmark.sinks, config.source())?,
        tech,
    );
    let routing = route_gated(&workload.benchmark.sinks, &workload.tables, &config)?;
    let eval = |mask: &[bool]| {
        evaluate_with_mask(
            &routing.tree,
            &routing.node_stats,
            config.controller(),
            tech,
            mask,
        )
        .total_switched_cap
    };
    let star = workload.benchmark.die.half_perimeter() / 8.0;
    let heuristic = DEFAULT_STRENGTHS
        .iter()
        .map(|&s| {
            let mask = reduce_gates_untied(
                &routing,
                tech,
                &ReductionParams::from_strength_scaled(s, tech, star),
            );
            (eval(&mask), mask.iter().filter(|&&k| k).count())
        })
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty strength grid");
    let dp_mask = reduce_gates_optimal(&routing, tech, config.controller());
    let optimal = (eval(&dp_mask), dp_mask.iter().filter(|&&k| k).count());
    Ok(OptimalRow {
        bench: workload.benchmark.name.clone(),
        buffered: buffered.total_switched_cap,
        heuristic,
        optimal,
    })
}

/// Convenience: the default workload of a benchmark with `seed` folded in.
///
/// # Errors
///
/// Returns [`gcr_activity::ActivityError`] for invalid parameters.
pub fn seeded_workload(
    bench: gcr_workloads::TsayBenchmark,
    base: &WorkloadParams,
    seed: u64,
) -> Result<Workload, gcr_activity::ActivityError> {
    Workload::generate(bench, &base.with_seed(base.seed.wrapping_add(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_workloads::Benchmark;

    fn quick_workload(seed: u64) -> Workload {
        let params = WorkloadParams {
            instructions: 10,
            stream_len: 2_000,
            seed,
            ..WorkloadParams::default()
        };
        Workload::for_benchmark(Benchmark::uniform(24, 18_000.0, seed), &params).unwrap()
    }

    #[test]
    fn stats1d_basics() {
        let s = Stats1d::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn stats1d_rejects_empty() {
        let _ = Stats1d::from_samples(&[]);
    }

    #[test]
    fn variance_study_runs_and_counts_wins() {
        let tech = Technology::default();
        let v = variance_study(|seed| Ok(quick_workload(seed)), 3, &tech).unwrap();
        assert_eq!(v.seeds, 3);
        assert!(v.wins <= 3);
        assert!(v.reduced_ratio.mean <= v.gated_ratio.mean + 1e-9);
        assert!(v.reduction_pct.min >= 0.0 && v.reduction_pct.max <= 100.0);
    }

    #[test]
    fn corner_study_nominal_is_balanced() {
        let tech = Technology::default();
        let rows = corner_study(&quick_workload(5), &tech, 0.2).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows[0].buffered_skew <= 1e-6 * rows[0].buffered_delay.max(1.0));
        assert!(rows[0].gated_skew <= 1e-6 * rows[0].gated_delay.max(1.0));
        // Extremes move delay.
        assert!(rows[1].buffered_delay > rows[0].buffered_delay);
    }

    #[test]
    fn skew_tradeoff_respects_bounds() {
        let tech = Technology::default();
        let rows = skew_tradeoff_study(&quick_workload(6), &tech, &[0.0, 10.0, 100.0]).unwrap();
        for r in &rows {
            assert!(r.measured_skew <= r.bound + 1e-6, "bound {}", r.bound);
        }
        assert!(rows[2].wire_length <= rows[0].wire_length + 1e-6);
    }

    #[test]
    fn optimal_never_loses_to_heuristic() {
        let tech = Technology::default();
        let row = optimal_vs_heuristic(&quick_workload(7), &tech).unwrap();
        assert!(row.optimal.0 <= row.heuristic.0 + 1e-9);
        assert!(row.buffered > 0.0);
    }

    #[test]
    fn tech_scaling_produces_a_row_per_node() {
        let w = quick_workload(8);
        let rows = tech_scaling_study(
            &w,
            &[
                ("a", Technology::half_micron()),
                ("b", Technology::default()),
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.reduced.total_switched_cap <= r.buffered.total_switched_cap * 1.6);
        }
    }
}
