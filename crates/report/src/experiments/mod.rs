pub mod ext;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod pipeline;
pub mod table4;
