use gcr_core::RouteError;
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

use crate::experiments::pipeline::{run_pipeline, DEFAULT_STRENGTHS};
use crate::TextTable;

/// One point of Figure 4: average module activity vs switched capacitance
/// for the buffered baseline and the gate-reduced tree.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// The usage-fraction knob requested.
    pub requested_activity: f64,
    /// The measured average module activity of the generated stream.
    pub measured_activity: f64,
    /// Buffered baseline total switched capacitance (pF) — flat in
    /// activity.
    pub buffered: f64,
    /// Gate-reduced total switched capacitance (pF) — grows with activity.
    pub gate_reduced: f64,
}

/// Regenerates Figure 4 ("Average module activity vs switched capacitance
/// for benchmark r1"): sweeps the CPU model's usage fraction and reports
/// both routing methods at each point.
///
/// # Errors
///
/// Returns [`RouteError`] when a workload cannot be generated or routed.
pub fn fig4(
    activities: &[f64],
    bench: TsayBenchmark,
    params: &WorkloadParams,
    tech: &Technology,
) -> Result<Vec<Fig4Row>, RouteError> {
    activities
        .iter()
        .map(|&a| {
            let w = Workload::generate(bench, &params.with_usage_fraction(a)).map_err(|e| {
                RouteError::Cts(gcr_cts::CtsError::InvalidTopology {
                    reason: format!("workload generation failed: {e}"),
                })
            })?;
            let r = run_pipeline(&w, tech, DEFAULT_STRENGTHS)?;
            Ok(Fig4Row {
                requested_activity: a,
                measured_activity: w.stats.avg_module_activity,
                buffered: r.buffered.total_switched_cap,
                gate_reduced: r.reduced.total_switched_cap,
            })
        })
        .collect()
}

/// Renders the Figure-4 series.
#[must_use]
pub fn render(rows: &[Fig4Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "activity",
        "measured",
        "Buffered (pF)",
        "Gate Red. (pF)",
        "Red./Buf.",
    ]);
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.requested_activity),
            format!("{:.2}", r.measured_activity),
            format!("{:.2}", r.buffered),
            format!("{:.2}", r.gate_reduced),
            format!("{:.2}", r.gate_reduced / r.buffered),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 4's shape: the gated advantage shrinks as average activity
    /// rises — gated SC grows with activity while buffered stays flat.
    #[test]
    fn gated_advantage_shrinks_with_activity() {
        let params = WorkloadParams {
            stream_len: 4_000,
            ..WorkloadParams::default()
        };
        let tech = Technology::default();
        let rows = fig4(&[0.15, 0.75], TsayBenchmark::R1, &params, &tech).unwrap();
        let gap_low = rows[0].buffered - rows[0].gate_reduced;
        let gap_high = rows[1].buffered - rows[1].gate_reduced;
        assert!(
            gap_low > gap_high,
            "low-activity gap {gap_low} must exceed high-activity gap {gap_high}"
        );
        assert!(rows[0].gate_reduced < rows[1].gate_reduced);
        assert!(render(&rows).to_string().contains("0.15"));
    }
}
