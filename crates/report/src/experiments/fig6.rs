use gcr_core::{evaluate, route_gated, ControllerPlan, DeviceRole, RouteError, RouterConfig};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

use crate::TextTable;

/// One point of the §6 / Figure 6 distributed-controller study.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// Number of controllers `k = 4^levels`.
    pub k: usize,
    /// Total enable star wire length (layout units).
    pub control_wire_length: f64,
    /// §6's analytic estimate `G·D/(4·√k)` for `G` gates on a die of side
    /// `D`.
    pub analytic_estimate: f64,
    /// Controller wiring area (λ²).
    pub control_area: f64,
    /// Controller-tree switched capacitance W(S) (pF).
    pub control_switched_cap: f64,
    /// Total switched capacitance (pF).
    pub total_switched_cap: f64,
}

/// Regenerates the §6 distributed-controller comparison (Figure 6):
/// routes each benchmark once, then re-evaluates the same gated tree under
/// `k = 4^level` controllers for each requested level.
///
/// The analytic column is the paper's own estimate: with the average star
/// edge at `D/4`, total star routing is `G·D/4`, and `k` partitions divide
/// it by `√k`.
///
/// # Errors
///
/// Returns [`RouteError`] when the workload cannot be generated or routed.
pub fn fig6(
    levels: &[u32],
    benches: &[TsayBenchmark],
    params: &WorkloadParams,
    tech: &Technology,
) -> Result<Vec<Fig6Row>, RouteError> {
    let mut rows = Vec::new();
    for &b in benches {
        let w = Workload::generate(b, params).map_err(|e| {
            RouteError::Cts(gcr_cts::CtsError::InvalidTopology {
                reason: format!("workload generation failed: {e}"),
            })
        })?;
        let config = RouterConfig::new(tech.clone(), w.benchmark.die);
        let routing = route_gated(&w.benchmark.sinks, &w.tables, &config)?;
        let gates = routing.tree.device_count() as f64;
        let die_side = w.benchmark.die.width();
        for &level in levels {
            let plan = if level == 0 {
                ControllerPlan::centralized(&w.benchmark.die)
            } else {
                ControllerPlan::distributed(w.benchmark.die, level)
            };
            let report = evaluate(
                &routing.tree,
                &routing.node_stats,
                &plan,
                tech,
                DeviceRole::Gate,
            );
            let k = plan.num_controllers() as f64;
            rows.push(Fig6Row {
                bench: b.name().to_owned(),
                k: plan.num_controllers(),
                control_wire_length: report.control_wire_length,
                analytic_estimate: gates * die_side / (4.0 * k.sqrt()),
                control_area: report.control_wire_area,
                control_switched_cap: report.control_switched_cap,
                total_switched_cap: report.total_switched_cap,
            });
        }
    }
    Ok(rows)
}

/// Renders the Figure-6 series.
#[must_use]
pub fn render(rows: &[Fig6Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Bench",
        "k",
        "star wire (Mλ)",
        "analytic GD/(4√k) (Mλ)",
        "ctl area Mλ²",
        "W(S) pF",
        "W pF",
    ]);
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.k.to_string(),
            format!("{:.2}", r.control_wire_length / 1e6),
            format!("{:.2}", r.analytic_estimate / 1e6),
            format!("{:.2}", r.control_area / 1e6),
            format!("{:.2}", r.control_switched_cap),
            format!("{:.2}", r.total_switched_cap),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §6's claim: k controllers divide the star routing area by ≈ √k.
    #[test]
    fn distributed_controllers_follow_sqrt_k() {
        let params = WorkloadParams {
            stream_len: 3_000,
            ..WorkloadParams::default()
        };
        let tech = Technology::default();
        let rows = fig6(&[0, 1, 2], &[TsayBenchmark::R1], &params, &tech).unwrap();
        assert_eq!(rows.len(), 3);
        let (l0, l1, l2) = (
            rows[0].control_wire_length,
            rows[1].control_wire_length,
            rows[2].control_wire_length,
        );
        assert!(l1 < l0 && l2 < l1, "{l0} -> {l1} -> {l2}");
        // §6 predicts 1/√k in aggregate (2× at k=4, 4× at k=16) for a
        // uniform gate field; clustered floorplans redistribute the gain
        // between levels, so assert the cumulative trend.
        assert!(l0 / l1 > 1.5, "l0/l1 = {}", l0 / l1);
        assert!(l0 / l2 > 2.8, "l0/l2 = {}", l0 / l2);
        // The analytic uniform-field estimate tracks the measurement to
        // within a small geometry-dependent factor.
        for r in &rows {
            let ratio = r.control_wire_length / r.analytic_estimate;
            assert!((0.2..3.0).contains(&ratio), "{}: ratio {ratio}", r.k);
        }
        assert!(render(&rows).to_string().contains("√k"));
    }
}
