use gcr_activity::ActivityError;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

use crate::TextTable;

/// One row of Table 4: benchmark characteristics for gated clock routing.
#[derive(Clone, Debug, PartialEq)]
pub struct Table4Row {
    /// Benchmark name (`r1` … `r5`).
    pub bench: String,
    /// Number of sinks (= modules).
    pub num_sinks: usize,
    /// Number of instructions in the synthetic ISA.
    pub num_instructions: usize,
    /// Instruction stream length.
    pub stream_len: usize,
    /// Average fraction of modules used per instruction (`Ave(M(I))`).
    pub avg_usage: f64,
}

/// Regenerates Table 4 ("Benchmark characteristics for gated clock
/// routing") for the given benchmarks.
///
/// # Errors
///
/// Returns [`ActivityError`] if `params` is out of range.
pub fn table4(
    benches: &[TsayBenchmark],
    params: &WorkloadParams,
) -> Result<Vec<Table4Row>, ActivityError> {
    benches
        .iter()
        .map(|&b| {
            let w = Workload::generate(b, params)?;
            Ok(Table4Row {
                bench: b.name().to_owned(),
                num_sinks: w.benchmark.sinks.len(),
                num_instructions: w.stats.num_instructions,
                stream_len: w.stats.num_cycles,
                avg_usage: w.stats.avg_module_activity,
            })
        })
        .collect()
}

/// Renders Table-4 rows in the paper's column layout.
#[must_use]
pub fn render(rows: &[Table4Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Bench",
        "No. of sinks",
        "No. of instr",
        "Stream len",
        "Ave(M(I))",
    ]);
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.num_sinks.to_string(),
            r.num_instructions.to_string(),
            r.stream_len.to_string(),
            format!("{:.1}%", 100.0 * r.avg_usage),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_published_sink_counts() {
        let params = WorkloadParams {
            stream_len: 1_000,
            ..WorkloadParams::default()
        };
        let rows = table4(&[TsayBenchmark::R1, TsayBenchmark::R2], &params).unwrap();
        assert_eq!(rows[0].num_sinks, 267);
        assert_eq!(rows[1].num_sinks, 598);
        // The headline statistic: ~40% average module usage (§5, Table 4).
        // The grouped usage sampler targets the knob only in expectation
        // (≈ 0.383 = 0.4·0.95 + 0.6·0.005) with a per-workload sampling
        // std of ≈ 0.045, so the tolerance must cover ±2–3σ around the
        // knob — a ±0.05 band fails for many RNG seeds.
        for r in &rows {
            assert!(
                (r.avg_usage - 0.4).abs() < 0.12,
                "{}: {}",
                r.bench,
                r.avg_usage
            );
        }
        let rendered = render(&rows).to_string();
        assert!(rendered.contains("r1") && rendered.contains("267"));
    }
}
