use gcr_core::{
    evaluate, evaluate_buffered, evaluate_with_mask, reduce_gates_untied, route_gated, DeviceRole,
    PowerReport, ReductionParams, RouteError, RouterConfig,
};
use gcr_cts::build_buffered_tree;
use gcr_rctree::Technology;
use gcr_workloads::Workload;

/// The three design points compared throughout §5 for one workload:
/// buffered baseline, fully gated tree, and gated tree after gate
/// reduction (at the best strength found on a small sweep — the designer's
/// pick from Fig. 5).
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// §5.1's "Buffered" column: nearest-neighbor topology, a buffer on
    /// every edge, no control routing.
    pub buffered: PowerReport,
    /// "Gated": Equation-3 topology, a masking gate on every edge.
    pub gated: PowerReport,
    /// "Gate Red.": the same topology re-embedded after §4.3 reduction.
    pub reduced: PowerReport,
    /// The reduction strength the sweep selected.
    pub reduction_strength: f64,
    /// The fraction of gates removed at that strength.
    pub reduction_fraction: f64,
}

/// Runs the full §5 comparison pipeline on one workload.
///
/// `strengths` is the grid of reduction strengths to try; the reduced
/// design point is the one with minimum total switched capacitance
/// (`&[0.6]` pins a fixed strength; an empty slice reports the fully gated
/// tree as "reduced").
///
/// # Errors
///
/// Returns [`RouteError`] when routing fails (mismatched workload) —
/// never for well-formed [`Workload`]s.
pub fn run_pipeline(
    workload: &Workload,
    tech: &Technology,
    strengths: &[f64],
) -> Result<PipelineResult, RouteError> {
    let bench = &workload.benchmark;
    let config = RouterConfig::new(tech.clone(), bench.die);

    let buffered_tree = build_buffered_tree(tech, &bench.sinks, config.source())?;
    let buffered = evaluate_buffered(&buffered_tree, tech);

    let routing = route_gated(&bench.sinks, &workload.tables, &config)?;
    let gated = evaluate(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        tech,
        DeviceRole::Gate,
    );

    let total_gates = routing.assignment.device_count();
    // The unreduced tree is always a candidate: the sweep can only improve
    // on it, mirroring a designer reading Fig. 5 and keeping every gate
    // when no reduction point wins. Reduction runs in untie mode (§4.3):
    // reduced gates keep buffering the tree but lose their enable wires,
    // so the embedding and zero skew are untouched.
    let mut best: Option<(f64, f64, PowerReport)> = Some((0.0, 0.0, gated.clone()));
    let star_len = bench.die.half_perimeter() / 8.0;
    for &s in strengths {
        let mask = reduce_gates_untied(
            &routing,
            tech,
            &ReductionParams::from_strength_scaled(s, tech, star_len),
        );
        let kept = mask.iter().filter(|&&k| k).count();
        let report = evaluate_with_mask(
            &routing.tree,
            &routing.node_stats,
            config.controller(),
            tech,
            &mask,
        );
        let fraction = 1.0 - kept as f64 / total_gates as f64;
        let better = best
            .as_ref()
            .is_none_or(|(_, _, b)| report.total_switched_cap < b.total_switched_cap);
        if better {
            best = Some((s, fraction, report));
        }
    }
    let (reduction_strength, reduction_fraction, reduced) =
        best.unwrap_or((0.0, 0.0, gated.clone()));

    Ok(PipelineResult {
        buffered,
        gated,
        reduced,
        reduction_strength,
        reduction_fraction,
    })
}

/// The default reduction-strength grid swept by the figure binaries.
pub const DEFAULT_STRENGTHS: &[f64] = &[0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9];

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_workloads::{Benchmark, Workload, WorkloadParams};

    fn quick_workload(n: usize) -> Workload {
        let params = WorkloadParams {
            instructions: 12,
            stream_len: 2_000,
            ..WorkloadParams::default()
        };
        Workload::for_benchmark(Benchmark::uniform(n, 20_000.0, 5), &params).unwrap()
    }

    #[test]
    fn pipeline_produces_three_design_points() {
        let tech = Technology::default();
        let w = quick_workload(24);
        let r = run_pipeline(&w, &tech, &[0.3, 0.6]).unwrap();
        assert!(r.buffered.total_switched_cap > 0.0);
        assert!(r.gated.total_switched_cap > 0.0);
        assert!(r.reduced.total_switched_cap <= r.gated.total_switched_cap);
        assert!(r.reduction_fraction >= 0.0 && r.reduction_fraction <= 1.0);
        assert!(r.buffered.control_wire_length == 0.0);
        assert!(r.gated.control_wire_length > 0.0);
        // All three trees are zero-skew.
        for rep in [&r.buffered, &r.gated, &r.reduced] {
            assert!(rep.skew <= 1e-9 * rep.delay.max(1.0), "skew {}", rep.skew);
        }
    }

    #[test]
    fn empty_strength_grid_reports_gated_twice() {
        let tech = Technology::default();
        let w = quick_workload(12);
        let r = run_pipeline(&w, &tech, &[]).unwrap();
        assert_eq!(r.reduced.total_switched_cap, r.gated.total_switched_cap);
        assert_eq!(r.reduction_fraction, 0.0);
    }
}
