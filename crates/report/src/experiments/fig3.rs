use gcr_core::RouteError;
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

use crate::experiments::pipeline::{run_pipeline, DEFAULT_STRENGTHS};
use crate::{PipelineResult, TextTable};

/// One bar group of Figure 3: switched capacitance and area for the three
/// routing methods on one benchmark.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Benchmark name.
    pub bench: String,
    /// The three evaluated design points.
    pub result: PipelineResult,
}

/// Regenerates Figure 3 ("Comparison among different clock routing
/// methods: switched capacitance in pF, area in 10⁶λ²") over the given
/// benchmarks.
///
/// # Errors
///
/// Returns [`RouteError`] when a workload cannot be generated or routed.
pub fn fig3(
    benches: &[TsayBenchmark],
    params: &WorkloadParams,
    tech: &Technology,
) -> Result<Vec<Fig3Row>, RouteError> {
    benches
        .iter()
        .map(|&b| {
            let w = Workload::generate(b, params).map_err(|e| {
                gcr_core::RouteError::Cts(gcr_cts::CtsError::InvalidTopology {
                    reason: format!("workload generation failed: {e}"),
                })
            })?;
            let result = run_pipeline(&w, tech, DEFAULT_STRENGTHS)?;
            Ok(Fig3Row {
                bench: b.name().to_owned(),
                result,
            })
        })
        .collect()
}

/// Renders the switched-capacitance panel of Figure 3.
#[must_use]
pub fn render_switched_cap(rows: &[Fig3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Bench",
        "Buffered (pF)",
        "Gated (pF)",
        "Gate Red. (pF)",
        "Red./Buf.",
        "gates removed",
    ]);
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            format!("{:.2}", r.result.buffered.total_switched_cap),
            format!("{:.2}", r.result.gated.total_switched_cap),
            format!("{:.2}", r.result.reduced.total_switched_cap),
            format!(
                "{:.2}",
                r.result.reduced.total_switched_cap / r.result.buffered.total_switched_cap
            ),
            format!("{:.0}%", 100.0 * r.result.reduction_fraction),
        ]);
    }
    t
}

/// Renders the area panel of Figure 3.
#[must_use]
pub fn render_area(rows: &[Fig3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Bench",
        "Buffered (Mλ²)",
        "Gated (Mλ²)",
        "Gate Red. (Mλ²)",
    ]);
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            format!("{:.2}", r.result.buffered.total_area / 1e6),
            format!("{:.2}", r.result.gated.total_area / 1e6),
            format!("{:.2}", r.result.reduced.total_area / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure-3 shape on r1: ungated-with-gates-everywhere is
    /// *worse* than buffered (star routing overhead), and reduction brings
    /// the gated tree below the buffered baseline.
    #[test]
    fn fig3_shape_holds_on_r1() {
        let params = WorkloadParams {
            stream_len: 5_000,
            ..WorkloadParams::default()
        };
        let tech = Technology::default();
        let rows = fig3(&[TsayBenchmark::R1], &params, &tech).unwrap();
        let r = &rows[0].result;
        assert!(
            r.gated.total_switched_cap > r.buffered.total_switched_cap,
            "full gating should lose to buffered: {} vs {}",
            r.gated.total_switched_cap,
            r.buffered.total_switched_cap
        );
        assert!(
            r.reduced.total_switched_cap < r.buffered.total_switched_cap,
            "gate reduction should beat buffered: {} vs {}",
            r.reduced.total_switched_cap,
            r.buffered.total_switched_cap
        );
        // Area overhead remains for the gated designs.
        assert!(r.reduced.total_area > r.buffered.total_area);
        let cap = render_switched_cap(&rows).to_string();
        let area = render_area(&rows).to_string();
        assert!(cap.contains("r1") && area.contains("r1"));
    }
}
