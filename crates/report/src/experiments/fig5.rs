use gcr_core::{
    evaluate_with_mask, reduce_gates_untied, route_gated, ReductionParams, RouteError, RouterConfig,
};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

use crate::TextTable;

/// One point of Figure 5: gate reduction vs switched capacitance and area,
/// split into the controller-tree and clock-tree components.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// The reduction strength knob (`f64::INFINITY` for the appended
    /// fully-untied end point).
    pub strength: f64,
    /// Fraction of gates whose control was removed (the paper's x-axis).
    pub reduction_fraction: f64,
    /// Controlled gates kept.
    pub gates: usize,
    /// Clock-tree switched capacitance W(T) (pF).
    pub clock_switched_cap: f64,
    /// Controller-tree switched capacitance W(S) (pF).
    pub control_switched_cap: f64,
    /// Total W (pF).
    pub total_switched_cap: f64,
    /// Clock wiring + device area (λ²).
    pub clock_area: f64,
    /// Controller wiring area (λ²).
    pub control_area: f64,
    /// Total area (λ²).
    pub total_area: f64,
}

/// Regenerates Figure 5 ("Gate reduction vs switched capacitance and area
/// for benchmark r1"): routes once, then sweeps the §4.3 reduction
/// strength in untie mode — reduced gates keep buffering the tree but
/// lose their enable wires — re-evaluating at each point. A final
/// fully-untied row (100 % reduction, no control tree at all) is appended
/// so the right end of the paper's x-axis is covered.
///
/// # Errors
///
/// Returns [`RouteError`] when the workload cannot be generated or routed.
pub fn fig5(
    strengths: &[f64],
    bench: TsayBenchmark,
    params: &WorkloadParams,
    tech: &Technology,
) -> Result<Vec<Fig5Row>, RouteError> {
    let w = Workload::generate(bench, params).map_err(|e| {
        RouteError::Cts(gcr_cts::CtsError::InvalidTopology {
            reason: format!("workload generation failed: {e}"),
        })
    })?;
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config)?;
    let total_gates = routing.assignment.device_count();

    let star_len = w.benchmark.die.half_perimeter() / 8.0;
    let mut masks: Vec<(f64, Vec<bool>)> = strengths
        .iter()
        .map(|&s| {
            (
                s,
                reduce_gates_untied(
                    &routing,
                    tech,
                    &ReductionParams::from_strength_scaled(s, tech, star_len),
                ),
            )
        })
        .collect();
    masks.push((f64::INFINITY, vec![false; routing.topology.len()]));

    Ok(masks
        .into_iter()
        .map(|(s, mask)| {
            let gates = mask.iter().filter(|&&k| k).count();
            let report = evaluate_with_mask(
                &routing.tree,
                &routing.node_stats,
                config.controller(),
                tech,
                &mask,
            );
            Fig5Row {
                strength: s,
                reduction_fraction: 1.0 - gates as f64 / total_gates as f64,
                gates,
                clock_switched_cap: report.clock_switched_cap,
                control_switched_cap: report.control_switched_cap,
                total_switched_cap: report.total_switched_cap,
                clock_area: report.clock_wire_area + report.device_area,
                control_area: report.control_wire_area,
                total_area: report.total_area,
            }
        })
        .collect())
}

/// Renders the Figure-5 series (both panels).
#[must_use]
pub fn render(rows: &[Fig5Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "reduction",
        "ctl gates",
        "W(T) pF",
        "W(S) pF",
        "W pF",
        "clk area Mλ²",
        "ctl area Mλ²",
        "total Mλ²",
    ]);
    for r in rows {
        t.row(vec![
            format!("{:.0}%", 100.0 * r.reduction_fraction),
            r.gates.to_string(),
            format!("{:.2}", r.clock_switched_cap),
            format!("{:.2}", r.control_switched_cap),
            format!("{:.2}", r.total_switched_cap),
            format!("{:.2}", r.clock_area / 1e6),
            format!("{:.2}", r.control_area / 1e6),
            format!("{:.2}", r.total_area / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5's shape: as gate controls are removed, W(S) falls and W(T)
    /// rises, producing an interior optimum of the total.
    #[test]
    fn reduction_trades_control_for_clock_cap() {
        let params = WorkloadParams {
            stream_len: 4_000,
            ..WorkloadParams::default()
        };
        let tech = Technology::default();
        let rows = fig5(&[0.0, 0.5], TsayBenchmark::R1, &params, &tech).unwrap();
        assert_eq!(rows.len(), 3); // two strengths + the fully-untied point
        let (full, mid, none) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(full.reduction_fraction, 0.0);
        assert_eq!(none.reduction_fraction, 1.0);
        assert_eq!(none.control_switched_cap, 0.0);
        assert_eq!(none.control_area, 0.0);
        // Monotone component trends…
        assert!(mid.control_switched_cap < full.control_switched_cap);
        assert!(mid.clock_switched_cap >= full.clock_switched_cap);
        assert!(none.clock_switched_cap > mid.clock_switched_cap);
        // …and the interior optimum: the mid point beats both ends.
        assert!(
            mid.total_switched_cap < full.total_switched_cap,
            "mid {} vs full {}",
            mid.total_switched_cap,
            full.total_switched_cap
        );
        assert!(
            mid.total_switched_cap < none.total_switched_cap,
            "mid {} vs none {}",
            mid.total_switched_cap,
            none.total_switched_cap
        );
        // Control area shrinks with controlled-gate count.
        assert!(mid.control_area < full.control_area);
        assert!(render(&rows).to_string().contains("W(T)"));
    }
}
