//! Regenerates **Figure 6 / §6**: centralized vs distributed gate
//! controllers — star routing length shrinks by ≈ √k for k controllers.
//!
//! Usage: `cargo run --release -p gcr-report --bin fig6 [--quick]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{fig6, render_fig6};
use gcr_workloads::{TsayBenchmark, WorkloadParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..1]
    } else {
        &TsayBenchmark::ALL[..3]
    };
    let params = WorkloadParams::default();
    let tech = Technology::default();
    match fig6(&[0, 1, 2], benches, &params, &tech) {
        Ok(rows) => {
            println!("Figure 6 / §6: centralized vs distributed controllers");
            println!("{}", render_fig6(&rows));
        }
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
