//! Quality ablations of the design choices called out in DESIGN.md:
//!
//! 1. **Merge objective** — the Equation-3 min-switched-capacitance greedy
//!    vs the geometry-only nearest-neighbor topology, both fully gated and
//!    after their best reduction.
//! 2. **Reduction rules** — R1 / R2 / R3 enabled individually vs together.
//! 3. **Reduction mode** — untying enables (gates stay as buffers) vs
//!    physically removing gates and re-balancing the tree.
//!
//! Usage: `cargo run --release -p gcr-report --bin ablations`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{
    evaluate, evaluate_with_mask, gated_routing_for_topology, reduce_gates, reduce_gates_optimal,
    reduce_gates_untied, route_activity_driven, route_gated, DeviceRole, GatedRouting,
    ReductionParams, RouterConfig,
};
use gcr_rctree::Technology;
use gcr_workloads::{Benchmark, TsayBenchmark, Workload, WorkloadParams};

fn best_untied(
    routing: &GatedRouting,
    config: &RouterConfig,
    tech: &Technology,
    star: f64,
) -> (f64, gcr_core::PowerReport) {
    [0.0, 0.05, 0.1, 0.2, 0.3, 0.5]
        .iter()
        .map(|&s| {
            let mask = reduce_gates_untied(
                routing,
                tech,
                &ReductionParams::from_strength_scaled(s, tech, star),
            );
            (
                s,
                evaluate_with_mask(
                    &routing.tree,
                    &routing.node_stats,
                    config.controller(),
                    tech,
                    &mask,
                ),
            )
        })
        .min_by(|a, b| a.1.total_switched_cap.total_cmp(&b.1.total_switched_cap))
        .expect("non-empty")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default();
    let params = WorkloadParams {
        stream_len: 10_000,
        ..WorkloadParams::default()
    };
    let w = Workload::generate(TsayBenchmark::R1, &params)?;
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let star = w.benchmark.die.half_perimeter() / 8.0;

    // --- Ablation 1: merge objective -----------------------------------
    println!("== ablation 1: merge objective (r1, best untied reduction) ==");
    let sc_routing = route_gated(&w.benchmark.sinks, &w.tables, &config)?;
    let (s_sc, sc_best) = best_untied(&sc_routing, &config, &tech, star);

    // Nearest-neighbor topology with the same gating machinery.
    let nn_topo =
        gcr_cts::nearest_neighbor_topology(&tech, &w.benchmark.sinks, Some(tech.and_gate()))?;
    let nn_routing = gated_routing_for_topology(nn_topo, &w.benchmark.sinks, &w.tables, &config)?;
    let (s_nn, nn_best) = best_untied(&nn_routing, &config, &tech, star);
    // Top-down means-and-medians topology.
    let mmm_topo = gcr_cts::mmm_topology(&w.benchmark.sinks)?;
    let mmm_routing = gated_routing_for_topology(mmm_topo, &w.benchmark.sinks, &w.tables, &config)?;
    let (s_mmm, mmm_best) = best_untied(&mmm_routing, &config, &tech, star);
    // The activity-driven ordering of Tellez et al. [5], the prior work
    // the paper extends (geometry only as a tie-break).
    let act_routing = route_activity_driven(&w.benchmark.sinks, &w.tables, &config)?;
    let (s_act, act_best) = best_untied(&act_routing, &config, &tech, star);
    println!("  min-SC objective : {sc_best} (strength {s_sc:.2})");
    println!("  nearest-neighbor : {nn_best} (strength {s_nn:.2})");
    println!("  means-&-medians  : {mmm_best} (strength {s_mmm:.2})");
    println!("  activity-driven  : {act_best} (strength {s_act:.2})");
    println!(
        "  -> Equation-3 ordering saves {:.1}% over geometric ordering",
        100.0 * (1.0 - sc_best.total_switched_cap / nn_best.total_switched_cap)
    );

    // Same CPU model, but *uniform* placement: activity clusters are no
    // longer co-located, so geometry and activity disagree — the regime
    // the Equation-3 objective is built for.
    let scrambled =
        Workload::for_benchmark(Benchmark::tsay(TsayBenchmark::R1, params.seed), &params)?;
    let s_config = RouterConfig::new(tech.clone(), scrambled.benchmark.die);
    let s_star = scrambled.benchmark.die.half_perimeter() / 8.0;
    let s_routing = route_gated(&scrambled.benchmark.sinks, &scrambled.tables, &s_config)?;
    let (_, s_sc_best) = best_untied(&s_routing, &s_config, &tech, s_star);
    let s_nn_topo = gcr_cts::nearest_neighbor_topology(
        &tech,
        &scrambled.benchmark.sinks,
        Some(tech.and_gate()),
    )?;
    let s_nn_routing = gated_routing_for_topology(
        s_nn_topo,
        &scrambled.benchmark.sinks,
        &scrambled.tables,
        &s_config,
    )?;
    let (_, s_nn_best) = best_untied(&s_nn_routing, &s_config, &tech, s_star);
    println!(
        "  (uniform placement) min-SC {:.2} pF vs NN {:.2} pF -> {:.1}% saved\n",
        s_sc_best.total_switched_cap,
        s_nn_best.total_switched_cap,
        100.0 * (1.0 - s_sc_best.total_switched_cap / s_nn_best.total_switched_cap)
    );

    // --- Ablation 2: reduction rules individually -----------------------
    println!("== ablation 2: reduction rules (r1, strength 0.2 scale) ==");
    let full = ReductionParams::from_strength_scaled(0.2, &tech, star);
    let variants = [
        (
            "R1 only (activity)",
            ReductionParams {
                cap_threshold: 0.0,
                similarity_threshold: 0.0,
                ..full
            },
        ),
        (
            "R2 only (subtree cap)",
            ReductionParams {
                activity_threshold: 0.0,
                similarity_threshold: 0.0,
                ..full
            },
        ),
        (
            "R3 only (similarity)",
            ReductionParams {
                activity_threshold: 0.0,
                cap_threshold: 0.0,
                ..full
            },
        ),
        ("R1+R2+R3", full),
    ];
    for (name, p) in variants {
        let mask = reduce_gates_untied(&sc_routing, &tech, &p);
        let kept = mask.iter().filter(|&&k| k).count();
        let r = evaluate_with_mask(
            &sc_routing.tree,
            &sc_routing.node_stats,
            config.controller(),
            &tech,
            &mask,
        );
        println!(
            "  {name:24} kept {kept:4} controls, W = {:7.2} pF",
            r.total_switched_cap
        );
    }
    // Extension: the exact tree-DP optimum over all control subsets.
    let dp_mask = reduce_gates_optimal(&sc_routing, &tech, config.controller());
    let dp_kept = dp_mask.iter().filter(|&&k| k).count();
    let dp = evaluate_with_mask(
        &sc_routing.tree,
        &sc_routing.node_stats,
        config.controller(),
        &tech,
        &dp_mask,
    );
    println!(
        "  {:24} kept {dp_kept:4} controls, W = {:7.2} pF",
        "DP optimum (extension)", dp.total_switched_cap
    );
    println!();

    // --- Ablation 3: untie vs physical removal --------------------------
    println!("== ablation 3: reduction mode (r1, strength 0.2 scale) ==");
    let mask = reduce_gates_untied(&sc_routing, &tech, &full);
    let untied = evaluate_with_mask(
        &sc_routing.tree,
        &sc_routing.node_stats,
        config.controller(),
        &tech,
        &mask,
    );
    let removal_assignment = reduce_gates(&sc_routing, &tech, &full);
    let removed = sc_routing.reembed(&w.benchmark.sinks, removal_assignment, &config)?;
    let removed_report = evaluate(
        &removed.tree,
        &removed.node_stats,
        config.controller(),
        &tech,
        DeviceRole::Gate,
    );
    println!("  untie enables    : {untied}");
    println!(
        "  physical removal : {removed_report} (+{:.0}kλ re-balance wire)",
        (removed.tree.total_wire_length() - sc_routing.tree.total_wire_length()) / 1e3
    );
    println!(
        "  -> untying avoids the re-balancing wire entirely; removal pays\n\
         \u{20}    it back only when gate area dominates."
    );
    Ok(())
}
