//! Statistical robustness of the headline result: the Figure-3 ratios
//! across many benchmark/workload seeds. The synthetic r1 is a *random*
//! instance; this shows the conclusions do not hinge on one draw.
//!
//! Usage: `cargo run --release -p gcr-report --bin variance [n_seeds]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{seeded_workload, variance_study, Stats1d, TextTable};
use gcr_workloads::{TsayBenchmark, WorkloadParams};

fn main() {
    let n_seeds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let tech = Technology::default();
    let base = WorkloadParams::default();
    let v = variance_study(
        |seed| seeded_workload(TsayBenchmark::R1, &base, seed),
        n_seeds,
        &tech,
    )
    .expect("variance study");

    let mut t = TextTable::new(vec!["metric", "mean", "std", "min", "max"]);
    let row = |t: &mut TextTable, name: &str, s: &Stats1d| {
        t.row(vec![
            name.to_owned(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.std),
            format!("{:.3}", s.min),
            format!("{:.3}", s.max),
        ]);
    };
    row(&mut t, "gated / buffered", &v.gated_ratio);
    row(&mut t, "reduced / buffered", &v.reduced_ratio);
    row(&mut t, "% controls removed", &v.reduction_pct);
    println!("Figure-3 ratios on r1 across {n_seeds} seeds:");
    println!("{t}");
    println!(
        "gate reduction beats buffered on {}/{} seeds",
        v.wins, v.seeds
    );
}
