//! Extension experiment: bounded-skew embedding of the gated topology —
//! how much wire (and switched capacitance) a skew budget buys back.
//!
//! Usage: `cargo run --release -p gcr-report --bin skew_tradeoff [bench]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{skew_tradeoff_study, TextTable};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let which = match std::env::args().nth(1).as_deref() {
        Some("r2") => TsayBenchmark::R2,
        Some("r3") => TsayBenchmark::R3,
        _ => TsayBenchmark::R1,
    };
    let tech = Technology::default();
    let w = Workload::generate(which, &WorkloadParams::default()).expect("workload");
    let rows = skew_tradeoff_study(&w, &tech, &[0.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0])
        .expect("trade-off study");

    let mut t = TextTable::new(vec![
        "skew bound (ps)",
        "measured skew (ps)",
        "wire (kλ)",
        "W(T) pF",
        "total W pF",
    ]);
    for r in rows {
        t.row(vec![
            format!("{:.0}", r.bound),
            format!("{:.2}", r.measured_skew),
            format!("{:.0}", r.wire_length / 1e3),
            format!("{:.2}", r.clock_switched_cap),
            format!("{:.2}", r.total_switched_cap),
        ]);
    }
    println!(
        "Bounded-skew trade-off on {} (gated topology):",
        which.name()
    );
    println!("{t}");
}
