//! Extension experiment: how the gated-vs-buffered trade-off moves across
//! technology generations (0.5 µm → 0.35 µm → 0.25 µm presets).
//!
//! Usage: `cargo run --release -p gcr-report --bin tech_scaling`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{tech_scaling_study, TextTable};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let w = Workload::generate(TsayBenchmark::R1, &WorkloadParams::default()).expect("workload");
    let rows = tech_scaling_study(
        &w,
        &[
            ("0.5um/5V/100MHz", Technology::half_micron()),
            ("0.35um/3.3V/200MHz", Technology::three_fifty_nm()),
            ("0.25um/2.5V/400MHz", Technology::quarter_micron()),
        ],
    )
    .expect("scaling study");

    let techs = [
        Technology::half_micron(),
        Technology::three_fifty_nm(),
        Technology::quarter_micron(),
    ];
    let mut t = TextTable::new(vec![
        "node",
        "buffered pF",
        "reduced pF",
        "ratio",
        "buffered mW",
        "reduced mW",
    ]);
    for (r, tech) in rows.iter().zip(&techs) {
        t.row(vec![
            r.node.clone(),
            format!("{:.1}", r.buffered.total_switched_cap),
            format!("{:.1}", r.reduced.total_switched_cap),
            format!(
                "{:.2}",
                r.reduced.total_switched_cap / r.buffered.total_switched_cap
            ),
            format!("{:.1}", r.buffered.power_uw(tech) / 1e3),
            format!("{:.1}", r.reduced.power_uw(tech) / 1e3),
        ]);
    }
    println!("Technology scaling of the gated clock advantage (r1):");
    println!("{t}");
}
