//! Runs every experiment of the paper's evaluation in sequence — the
//! one-shot reproduction of §5 and §6.
//!
//! Usage:
//! `cargo run --release -p gcr-report --bin all_experiments [--quick] [--html out.html]`
//! (`--quick` trims each experiment to its smallest benchmarks; `--html`
//! additionally writes a self-contained report with an embedded SVG
//! floorplan of the gated r1 tree).
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{reduce_gates_untied, route_gated, ReductionParams, RouterConfig};
use gcr_rctree::Technology;
use gcr_report::{
    fig3, fig4, fig5, fig6, render_fig3_area, render_fig3_switched_cap, render_fig4, render_fig5,
    render_fig6, render_svg, render_table4, table4, SvgOptions,
};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

/// Captures every section for both stdout and the optional HTML report.
struct Report {
    sections: Vec<(String, String)>,
}

impl Report {
    fn add(&mut self, title: &str, body: String) {
        println!("== {title} ==");
        println!("{body}");
        self.sections.push((title.to_owned(), body));
    }

    fn to_html(&self, svg: Option<&str>) -> String {
        let mut h = String::from(
            "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
             <title>gated-clock-routing — experiments</title>\
             <style>body{font-family:sans-serif;max-width:70em;margin:2em auto}\
             pre{background:#f6f6f2;padding:1em;overflow-x:auto}</style>\
             </head><body><h1>Gated Clock Routing — reproduced experiments</h1>",
        );
        for (title, body) in &self.sections {
            h.push_str(&format!("<h2>{title}</h2><pre>{body}</pre>"));
        }
        if let Some(svg) = svg {
            h.push_str("<h2>Gated r1 floorplan</h2>");
            h.push_str(svg);
        }
        h.push_str("</body></html>");
        h
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let html_out = args
        .iter()
        .position(|a| a == "--html")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let params = WorkloadParams::default();
    let tech = Technology::default();
    let mut report = Report {
        sections: Vec::new(),
    };

    let table4_benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..3]
    } else {
        &TsayBenchmark::ALL
    };
    let fig3_benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..2]
    } else {
        &TsayBenchmark::ALL
    };
    let fig6_benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..1]
    } else {
        &TsayBenchmark::ALL[..3]
    };

    match table4(table4_benches, &params) {
        Ok(rows) => report.add(
            "Table 4: benchmark characteristics",
            render_table4(&rows).to_string(),
        ),
        Err(e) => eprintln!("table4 failed: {e}"),
    }

    match fig3(fig3_benches, &params, &tech) {
        Ok(rows) => report.add(
            "Figure 3: buffered vs gated vs gate-reduced",
            format!(
                "Switched capacitance (pF):\n{}\nArea (10^6 λ²):\n{}",
                render_fig3_switched_cap(&rows),
                render_fig3_area(&rows)
            ),
        ),
        Err(e) => eprintln!("fig3 failed: {e}"),
    }

    let activities = [0.1, 0.3, 0.5, 0.7, 0.9];
    match fig4(&activities, TsayBenchmark::R1, &params, &tech) {
        Ok(rows) => report.add(
            "Figure 4: module activity vs switched capacitance (r1)",
            render_fig4(&rows).to_string(),
        ),
        Err(e) => eprintln!("fig4 failed: {e}"),
    }

    let strengths = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8];
    match fig5(&strengths, TsayBenchmark::R1, &params, &tech) {
        Ok(rows) => report.add(
            "Figure 5: gate reduction sweep (r1)",
            render_fig5(&rows).to_string(),
        ),
        Err(e) => eprintln!("fig5 failed: {e}"),
    }

    match fig6(&[0, 1, 2], fig6_benches, &params, &tech) {
        Ok(rows) => report.add(
            "Figure 6 / §6: distributed controllers",
            render_fig6(&rows).to_string(),
        ),
        Err(e) => eprintln!("fig6 failed: {e}"),
    }

    if let Some(path) = html_out {
        // Embed a floorplan of the gated r1 tree.
        let svg = Workload::generate(TsayBenchmark::R1, &params)
            .ok()
            .and_then(|w| {
                let config = RouterConfig::new(tech.clone(), w.benchmark.die);
                let routing = route_gated(&w.benchmark.sinks, &w.tables, &config).ok()?;
                let mask = reduce_gates_untied(
                    &routing,
                    &tech,
                    &ReductionParams::from_strength_scaled(
                        0.2,
                        &tech,
                        w.benchmark.die.half_perimeter() / 8.0,
                    ),
                );
                Some(render_svg(
                    &routing.tree,
                    w.benchmark.die,
                    config.controller(),
                    &SvgOptions {
                        node_stats: Some(routing.node_stats.clone()),
                        controlled: Some(mask),
                        ..SvgOptions::default()
                    },
                ))
            });
        match std::fs::write(&path, report.to_html(svg.as_deref())) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}
