//! Regenerates **Figure 3**: switched capacitance and area comparison
//! among buffered, gated, and gate-reduced clock routing on r1–r5.
//!
//! Usage: `cargo run --release -p gcr-report --bin fig3 [--quick]`
//! (`--quick` limits the run to r1–r2; the full suite routes up to 3101
//! sinks and takes a few minutes).
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{fig3, render_fig3_area, render_fig3_switched_cap};
use gcr_workloads::{TsayBenchmark, WorkloadParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..2]
    } else {
        &TsayBenchmark::ALL
    };
    let params = WorkloadParams::default();
    let tech = Technology::default();
    match fig3(benches, &params, &tech) {
        Ok(rows) => {
            println!("Figure 3: Comparison among different clock routing methods");
            println!();
            println!("Switched capacitance (pF):");
            println!("{}", render_fig3_switched_cap(&rows));
            println!("Area (10^6 λ²):");
            println!("{}", render_fig3_area(&rows));
        }
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            std::process::exit(1);
        }
    }
}
