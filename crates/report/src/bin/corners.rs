//! Extension experiment: wire process corners (±20 % unit R and C, fixed
//! devices) for the buffered baseline vs the gated tree — the robustness
//! cost of device-heavy clock paths.
//!
//! Usage: `cargo run --release -p gcr-report --bin corners [bench]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{corner_study, TextTable};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let which = match std::env::args().nth(1).as_deref() {
        Some("r2") => TsayBenchmark::R2,
        Some("r3") => TsayBenchmark::R3,
        _ => TsayBenchmark::R1,
    };
    let tech = Technology::default();
    let w = Workload::generate(which, &WorkloadParams::default()).expect("workload");
    let rows = corner_study(&w, &tech, 0.2).expect("corner study");

    let mut t = TextTable::new(vec![
        "corner",
        "buffered skew (ps)",
        "buffered delay (ps)",
        "gated skew (ps)",
        "gated delay (ps)",
    ]);
    for r in rows {
        t.row(vec![
            r.corner,
            format!("{:.2}", r.buffered_skew),
            format!("{:.0}", r.buffered_delay),
            format!("{:.2}", r.gated_skew),
            format!("{:.0}", r.gated_delay),
        ]);
    }
    println!("Wire corners (devices fixed) on {}:", which.name());
    println!("{t}");
}
