//! Regenerates **Table 4**: benchmark characteristics for gated clock
//! routing.
//!
//! Usage: `cargo run --release -p gcr-report --bin table4 [--quick]`
//! (`--quick` limits the run to r1–r3).
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_report::{render_table4, table4};
use gcr_workloads::{TsayBenchmark, WorkloadParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..3]
    } else {
        &TsayBenchmark::ALL
    };
    let params = WorkloadParams::default();
    match table4(benches, &params) {
        Ok(rows) => {
            println!("Table 4: Benchmark characteristics for gated clock routing");
            println!("{}", render_table4(&rows));
        }
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    }
}
