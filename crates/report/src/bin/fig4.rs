//! Regenerates **Figure 4**: average module activity vs switched
//! capacitance (buffered vs gate-reduced) on benchmark r1.
//!
//! Usage: `cargo run --release -p gcr-report --bin fig4`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{fig4, render_fig4};
use gcr_workloads::{TsayBenchmark, WorkloadParams};

fn main() {
    let activities = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let params = WorkloadParams::default();
    let tech = Technology::default();
    match fig4(&activities, TsayBenchmark::R1, &params, &tech) {
        Ok(rows) => {
            println!("Figure 4: Average module activity vs switched capacitance (r1)");
            println!("{}", render_fig4(&rows));
        }
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
