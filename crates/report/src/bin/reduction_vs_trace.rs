//! §4.3 gate-reduction decisions vs. trace length.
//!
//! The paper drives every benchmark with one 20k-cycle stream. This study
//! asks how much trace that decision actually needs: on a **fixed** gated
//! r1 topology, the optimal control subset (`reduce_gates_optimal`) is
//! recomputed from activity tables built over growing prefixes of the
//! same instruction stream — 2k to 20M cycles, each streamed through
//! `gcr_activity::scan_source` without materializing the trace — and
//! every short-trace mask is judged under the *converged* (20M-cycle)
//! statistics: how many keep/untie decisions flip, and how much switched
//! capacitance the flipped decisions cost.
//!
//! Keeping the topology fixed isolates the reduction decision from the
//! routing decision (both consume the tables; re-routing per length would
//! conflate them and make masks incomparable across runs).
//!
//! Run with: `cargo run --release -p gcr-report --bin reduction_vs_trace`
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_activity::{ActivityTables, CpuModel, EnableStats, ScanParams, ScanScratch};
use gcr_core::{evaluate_with_mask, reduce_gates_optimal, route_gated, RouterConfig};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

/// Trace-length axis; the last entry is the converged reference.
const LENGTHS: [u64; 5] = [2_000, 20_000, 200_000, 2_000_000, 20_000_000];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // r1 geometry (267 sinks, one activity-model module per sink) and the
    // paper's activity-model knobs, seed 1998 — the same model every
    // other experiment runs; only the trace length varies here.
    let params = WorkloadParams::default();
    let workload = Workload::generate(TsayBenchmark::R1, &WorkloadParams::smoke())?;
    let sinks = &workload.benchmark.sinks;
    let model = CpuModel::builder(sinks.len())
        .instructions(params.instructions)
        .usage_fraction(params.usage_fraction)
        .persistence(params.persistence)
        .groups(params.groups)
        .seed(params.seed)
        .build()?;

    // Stream each prefix length through the chunked scan; one scratch
    // serves all lengths. trace_source(L) is the first L cycles of the
    // same deterministic sequence, so longer rows refine, not redraw.
    let mut scratch = ScanScratch::new();
    let scan = |len: u64, scratch: &mut ScanScratch| -> Result<ActivityTables, _> {
        let mut source = model.trace_source(len);
        gcr_activity::scan_source(model.rtl(), &mut source, &ScanParams::default(), scratch)
            .map(|(tables, _)| tables)
    };

    // Fixed topology: routed once under the converged tables.
    let reference_tables = scan(*LENGTHS.last().unwrap(), &mut scratch)?;
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let routing = route_gated(sinks, &reference_tables, &config)?;
    let stats_under = |tables: &ActivityTables| -> Vec<EnableStats> {
        routing
            .node_modules
            .iter()
            .map(|set| tables.enable_stats(set))
            .collect()
    };
    let reference_stats = stats_under(&reference_tables);
    let reference_mask = reduce_gates_optimal(&routing, &tech, config.controller());
    let reference_w = evaluate_with_mask(
        &routing.tree,
        &reference_stats,
        config.controller(),
        &tech,
        &reference_mask,
    )
    .total_switched_cap;

    println!(
        "r1, {} sinks, fixed topology; decisions judged under the \
         {}-cycle reference (W = {reference_w:.1} pF, {} controls kept)\n",
        sinks.len(),
        LENGTHS.last().unwrap(),
        reference_mask.iter().filter(|&&m| m).count(),
    );
    println!(
        "{:>10}  {:>5}  {:>6}  {:>9}  {:>7}",
        "cycles", "kept", "flips", "W(ref) pF", "excess"
    );
    for len in LENGTHS {
        let tables = scan(len, &mut scratch)?;
        // Same tree, short-trace statistics: swap the per-node stats and
        // re-run the exact control-subset DP.
        let mut short = routing.clone();
        short.node_stats = stats_under(&tables);
        let mask = reduce_gates_optimal(&short, &tech, config.controller());
        let kept = mask.iter().filter(|&&m| m).count();
        let flips = mask
            .iter()
            .zip(&reference_mask)
            .filter(|(a, b)| a != b)
            .count();
        // The short-trace decision priced under the converged truth.
        let w = evaluate_with_mask(
            &routing.tree,
            &reference_stats,
            config.controller(),
            &tech,
            &mask,
        )
        .total_switched_cap;
        println!(
            "{len:>10}  {kept:>5}  {flips:>6}  {w:>9.1}  {:>+6.2}%",
            100.0 * (w - reference_w) / reference_w,
        );
    }
    Ok(())
}
