//! Regenerates **Figure 5**: gate reduction vs switched capacitance and
//! area (controller tree / clock tree split) on benchmark r1.
//!
//! Usage: `cargo run --release -p gcr-report --bin fig5`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{fig5, render_fig5};
use gcr_workloads::{TsayBenchmark, WorkloadParams};

fn main() {
    let strengths = [0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8];
    let params = WorkloadParams::default();
    let tech = Technology::default();
    match fig5(&strengths, TsayBenchmark::R1, &params, &tech) {
        Ok(rows) => {
            println!("Figure 5: Gate reduction vs switched capacitance and area (r1)");
            println!("{}", render_fig5(&rows));
            if let Some(best) = rows
                .iter()
                .min_by(|a, b| a.total_switched_cap.total_cmp(&b.total_switched_cap))
            {
                println!(
                    "optimum: {:.0}% gate reduction at W = {:.2} pF",
                    100.0 * best.reduction_fraction,
                    best.total_switched_cap
                );
            }
        }
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}
