//! `gcr` — gated clock routing from plain-text inputs.
//!
//! ```text
//! gcr route --sinks sinks.txt --rtl rtl.txt --trace trace.txt
//!           [--die W H] [--strength 0.2] [--svg out.svg] [--spice out.sp]
//!           [--save out.design] [--controllers k] [--optimal]
//!           [--trace-out flow.json]
//! gcr evaluate --design out.design --rtl rtl.txt --trace trace.txt
//! gcr init-example <dir>     # write a ready-to-run example input set
//! ```
//!
//! File formats:
//! * sinks: one `x y cap_pf` triple per line (`#` comments allowed); sink
//!   `i` is module `i` of the RTL;
//! * rtl / trace: see [`gcr_activity::io`].
//!
//! `--trace` names the *instruction* trace input; `--trace-out` writes a
//! Chrome-trace timeline of the routing flow itself (activity scan,
//! Equation-3 merge, embedding, evaluation) for `chrome://tracing`.
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use gcr_activity::{io as aio, ActivityTables};
use gcr_core::{
    evaluate, evaluate_buffered, evaluate_traced, evaluate_with_mask_traced, reduce_gates_untied,
    route_gated_traced, ControllerPlan, DeviceRole, ReductionParams, RouterConfig,
};
use gcr_cts::{build_buffered_tree, Sink};
use gcr_geometry::{BBox, Point};
use gcr_rctree::{to_spice, Technology};
use gcr_report::{render_svg, SvgOptions};
use gcr_trace::{ChromeTraceSink, EchoWarnSink, TraceSink, Tracer};
use gcr_workloads::io::parse_sinks;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("route") => route_command(&args[1..]),
        Some("evaluate") => evaluate_command(&args[1..]),
        Some("init-example") => init_example(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  gcr route --sinks F --rtl F --trace F \
                 [--die W H] [--strength S] [--svg OUT] [--controllers K] \
                 [--trace-out OUT]\n  \
                 gcr init-example DIR"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn route_command(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut sinks_path = None;
    let mut rtl_path = None;
    let mut trace_path = None;
    let mut die: Option<(f64, f64)> = None;
    let mut strength = 0.2f64;
    let mut svg_out: Option<String> = None;
    let mut spice_out: Option<String> = None;
    let mut save_out: Option<String> = None;
    let mut optimal = false;
    let mut controllers = 1usize;
    let mut trace_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value after {a}"))
        };
        match a.as_str() {
            "--sinks" => sinks_path = Some(val()?.to_owned()),
            "--rtl" => rtl_path = Some(val()?.to_owned()),
            "--trace" => trace_path = Some(val()?.to_owned()),
            "--strength" => strength = val()?.parse()?,
            "--svg" => svg_out = Some(val()?.to_owned()),
            "--spice" => spice_out = Some(val()?.to_owned()),
            "--save" => save_out = Some(val()?.to_owned()),
            "--optimal" => optimal = true,
            "--controllers" => controllers = val()?.parse()?,
            "--trace-out" => trace_out = Some(val()?.to_owned()),
            "--die" => {
                let w: f64 = val()?.parse()?;
                let h: f64 = val()?.parse()?;
                die = Some((w, h));
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let sinks_path = sinks_path.ok_or("--sinks is required")?;
    let rtl_path = rtl_path.ok_or("--rtl is required")?;
    let trace_path = trace_path.ok_or("--trace is required")?;

    let chrome = trace_out.as_ref().map(|_| Arc::new(ChromeTraceSink::new()));
    let tracer = match &chrome {
        Some(sink) => Tracer::new(Arc::new(EchoWarnSink::new(
            Arc::clone(sink) as Arc<dyn TraceSink>
        ))),
        None => Tracer::disabled(),
    };

    let sinks = parse_sinks(&fs::read_to_string(&sinks_path)?)?;
    let rtl = aio::parse_rtl(&fs::read_to_string(&rtl_path)?, Some(sinks.len()))?;
    let stream = aio::parse_trace(&rtl, &fs::read_to_string(&trace_path)?)?;
    let tables = ActivityTables::scan_traced(&rtl, &stream, &tracer);

    let die = match die {
        Some((w, h)) => BBox::new(Point::ORIGIN, Point::new(w, h)),
        None => BBox::of_points(sinks.iter().map(Sink::location)).ok_or("no sinks")?,
    };
    let tech = Technology::default();
    let mut config = RouterConfig::new(tech.clone(), die);
    if controllers > 1 {
        let levels = (controllers as f64).log(4.0).round() as u32;
        config = config.with_controller(ControllerPlan::distributed(die, levels.max(1)));
    }

    let buffered = evaluate_buffered(&build_buffered_tree(&tech, &sinks, config.source())?, &tech);
    let routing = route_gated_traced(&sinks, &tables, &config, &tracer)?;
    let gated = evaluate_traced(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        DeviceRole::Gate,
        &tracer,
    );
    let mask = if optimal {
        gcr_core::reduce_gates_optimal(&routing, &tech, config.controller())
    } else {
        reduce_gates_untied(
            &routing,
            &tech,
            &ReductionParams::from_strength_scaled(strength, &tech, die.half_perimeter() / 8.0),
        )
    };
    let reduced = evaluate_with_mask_traced(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &mask,
        &tracer,
    );

    println!("sinks      : {}", sinks.len());
    println!(
        "instructions/trace: {} / {} cycles",
        rtl.num_instructions(),
        stream.len()
    );
    println!("buffered   : {buffered}");
    println!("gated      : {gated}");
    println!(
        "reduced    : {reduced} ({} of {} gates controlled)",
        mask.iter().filter(|&&k| k).count(),
        routing.tree.device_count()
    );
    println!(
        "power      : reduced = {:.0}% of buffered; skew = {:.2e} ps",
        100.0 * reduced.total_switched_cap / buffered.total_switched_cap,
        reduced.skew
    );

    // Cycle-accurate cross-check against the trace that produced the
    // probabilities — exact by construction; printed as evidence.
    let sim = gcr_core::simulate_stream(
        &routing.tree,
        &routing.node_modules,
        &mask,
        &rtl,
        &stream,
        config.controller(),
        &tech,
    );
    println!(
        "simulated  : {:.3} pF/cycle over {} cycles (Δ vs analytic {:.1e})",
        sim.total_switched_cap,
        sim.cycles,
        (sim.total_switched_cap - reduced.total_switched_cap).abs()
    );

    if let Some(path) = save_out {
        fs::write(
            &path,
            gcr_cts::save_design(&routing.topology, &sinks, &routing.tree, config.source()),
        )?;
        println!("design     : wrote {path}");
    }
    if let Some(path) = spice_out {
        let (rc, sinks_rc) = routing.tree.to_rc_tree(&tech);
        fs::write(&path, to_spice(&rc, &sinks_rc, "gcr gated clock tree"))?;
        println!("spice      : wrote {path}");
    }
    if let Some(path) = svg_out {
        let options = SvgOptions {
            node_stats: Some(routing.node_stats.clone()),
            controlled: Some(mask),
            ..SvgOptions::default()
        };
        fs::write(
            &path,
            render_svg(&routing.tree, die, config.controller(), &options),
        )?;
        println!("svg        : wrote {path}");
    }
    if let (Some(path), Some(sink)) = (&trace_out, &chrome) {
        sink.write_to(path)?;
        println!("flow trace : wrote {path}");
    }
    Ok(())
}

/// `gcr evaluate`: reload a saved design, rebuild the activity statistics
/// from the given RTL/trace, and report its switched capacitance.
fn evaluate_command(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut design_path = None;
    let mut rtl_path = None;
    let mut trace_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value after {a}"))
        };
        match a.as_str() {
            "--design" => design_path = Some(val()?.to_owned()),
            "--rtl" => rtl_path = Some(val()?.to_owned()),
            "--trace" => trace_path = Some(val()?.to_owned()),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let design_path = design_path.ok_or("--design is required")?;
    let rtl_path = rtl_path.ok_or("--rtl is required")?;
    let trace_path = trace_path.ok_or("--trace is required")?;

    let loaded = gcr_cts::load_design(&fs::read_to_string(&design_path)?)?;
    let rtl = aio::parse_rtl(&fs::read_to_string(&rtl_path)?, Some(loaded.sinks.len()))?;
    let stream = aio::parse_trace(&rtl, &fs::read_to_string(&trace_path)?)?;
    let tables = ActivityTables::scan(&rtl, &stream);

    let tech = Technology::default();
    let tree = gcr_cts::embed(
        &loaded.topology,
        &loaded.sinks,
        &tech,
        &loaded.assignment,
        loaded.source,
    )?;
    // Per-node stats from the topology's module sets (sink i = module i).
    let n_modules = rtl.num_modules();
    let mut sets: Vec<gcr_activity::ModuleSet> = Vec::with_capacity(loaded.topology.len());
    let mut stats = Vec::with_capacity(loaded.topology.len());
    for (_, node) in loaded.topology.bottom_up() {
        let set = match node {
            gcr_cts::TopoNode::Leaf { sink } => {
                gcr_activity::ModuleSet::with_modules(n_modules, [sink])
            }
            gcr_cts::TopoNode::Internal { left, right } => sets[left].union(&sets[right]),
        };
        stats.push(tables.enable_stats(&set));
        sets.push(set);
    }
    let die = BBox::of_points(loaded.sinks.iter().map(Sink::location)).ok_or("no sinks")?;
    let plan = ControllerPlan::centralized(&die);
    let report = evaluate(&tree, &stats, &plan, &tech, DeviceRole::Gate);
    println!(
        "reloaded   : {} sinks, {} devices",
        tree.num_sinks(),
        tree.device_count()
    );
    println!("evaluation : {report}");
    println!("skew       : {:.2e} ps", report.skew);
    Ok(())
}

fn init_example(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.first().ok_or("init-example needs a directory")?;
    fs::create_dir_all(dir)?;
    let d = Path::new(dir);
    fs::write(
        d.join("sinks.txt"),
        "\
# x y cap_pf — sink i is module i
1000 1000 0.05
5000 1200 0.04
1500 5000 0.06
5200 5100 0.05
3000 3000 0.03
5500 3000 0.04
",
    )?;
    fs::write(
        d.join("rtl.txt"),
        "\
# Table 1 of Oh & Pedram, DATE 1998
I1: M1 M2 M3 M5
I2: M1 M4
I3: M2 M5 M6
I4: M3 M4
",
    )?;
    fs::write(
        d.join("trace.txt"),
        "I1 I2 I4 I1 I3 I2 I1 I1 I2 I1 I3 I1 I2 I3 I1 I1 I2 I2 I4 I2\n",
    )?;
    println!(
        "wrote {dir}/{{sinks,rtl,trace}}.txt — try:\n  \
         gcr route --sinks {dir}/sinks.txt --rtl {dir}/rtl.txt --trace {dir}/trace.txt"
    );
    Ok(())
}
