//! Extension experiment: the exact tree-DP control-subset optimum
//! (`reduce_gates_optimal`) vs the paper's §4.3 heuristic, across
//! benchmarks.
//!
//! Usage: `cargo run --release -p gcr-report --bin optimal_reduction [--quick]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_rctree::Technology;
use gcr_report::{optimal_vs_heuristic, TextTable};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let benches: &[TsayBenchmark] = if quick {
        &TsayBenchmark::ALL[..2]
    } else {
        &TsayBenchmark::ALL
    };
    let tech = Technology::default();
    let params = WorkloadParams::default();

    let mut t = TextTable::new(vec![
        "Bench",
        "Buffered pF",
        "Heuristic pF",
        "heur. gates",
        "DP optimum pF",
        "DP gates",
        "DP vs heur.",
    ]);
    for &b in benches {
        let w = Workload::generate(b, &params).expect("workload");
        let row = optimal_vs_heuristic(&w, &tech).expect("study");
        t.row(vec![
            row.bench.clone(),
            format!("{:.1}", row.buffered),
            format!("{:.1}", row.heuristic.0),
            row.heuristic.1.to_string(),
            format!("{:.1}", row.optimal.0),
            row.optimal.1.to_string(),
            format!("-{:.1}%", 100.0 * (1.0 - row.optimal.0 / row.heuristic.0)),
        ]);
    }
    println!("Exact control-subset optimum vs the paper's reduction rules:");
    println!("{t}");
}
