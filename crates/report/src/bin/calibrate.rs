//! Internal calibration probe: prints per-strength totals for one
//! benchmark so the reduction sweep's shape can be inspected.
//!
//! Usage: `cargo run --release -p gcr-report --bin calibrate [bench]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{
    evaluate_buffered, evaluate_with_mask, reduce_gates_untied, route_gated, ReductionParams,
    RouterConfig,
};
use gcr_cts::build_buffered_tree;
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let tech = Technology::default();
    let which = match std::env::args().nth(1).as_deref() {
        Some("r2") => TsayBenchmark::R2,
        Some("r3") => TsayBenchmark::R3,
        Some("r4") => TsayBenchmark::R4,
        Some("r5") => TsayBenchmark::R5,
        _ => TsayBenchmark::R1,
    };
    let params = WorkloadParams::default();
    let w = Workload::generate(which, &params).unwrap();
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let buffered = build_buffered_tree(&tech, &w.benchmark.sinks, config.source()).unwrap();
    let buf = evaluate_buffered(&buffered, &tech);
    println!(
        "{}: buffered total {:.1} pF (wire {:.1}, area {:.2}Mλ²)",
        which.name(),
        buf.total_switched_cap,
        tech.wire_cap(buf.clock_wire_length),
        buf.total_area / 1e6
    );
    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config).unwrap();
    let full = routing.assignment.device_count();
    for s in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let mask = reduce_gates_untied(
            &routing,
            &tech,
            &ReductionParams::from_strength_scaled(
                s,
                &tech,
                w.benchmark.die.half_perimeter() / 8.0,
            ),
        );
        let kept = mask.iter().filter(|&&k| k).count();
        let r = evaluate_with_mask(
            &routing.tree,
            &routing.node_stats,
            config.controller(),
            &tech,
            &mask,
        );
        println!(
            "s={s:.1} ctl {kept:4}/{full} ({:3.0}% rm) | W(T) {:6.1} W(S) {:6.1} total {:6.1} | ratio {:.2}",
            100.0 * (1.0 - kept as f64 / full as f64),
            r.clock_switched_cap,
            r.control_switched_cap,
            r.total_switched_cap,
            r.total_switched_cap / buf.total_switched_cap
        );
    }
}

#[allow(dead_code)]
fn unused() {}
