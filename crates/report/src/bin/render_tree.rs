//! Renders a gated routing of a benchmark as an SVG floorplan: clock
//! wires, sinks, gates colored by enable probability, and the controller
//! star routing.
//!
//! Usage: `cargo run --release -p gcr-report --bin render_tree [bench] [out.svg]`
//! (defaults: r1, `gated_tree.svg` in the current directory).
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{reduce_gates_untied, route_gated, ReductionParams, RouterConfig};
use gcr_rctree::Technology;
use gcr_report::{render_svg, SvgOptions};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let which = match args.next().as_deref() {
        Some("r2") => TsayBenchmark::R2,
        Some("r3") => TsayBenchmark::R3,
        Some("r4") => TsayBenchmark::R4,
        Some("r5") => TsayBenchmark::R5,
        _ => TsayBenchmark::R1,
    };
    let out = args.next().unwrap_or_else(|| "gated_tree.svg".to_owned());

    let tech = Technology::default();
    let params = WorkloadParams::default();
    let w = match Workload::generate(which, &params) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("workload generation failed: {e}");
            std::process::exit(1);
        }
    };
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let routing = match route_gated(&w.benchmark.sinks, &w.tables, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("routing failed: {e}");
            std::process::exit(1);
        }
    };
    let mask = reduce_gates_untied(
        &routing,
        &tech,
        &ReductionParams::from_strength_scaled(0.2, &tech, w.benchmark.die.half_perimeter() / 8.0),
    );
    let options = SvgOptions {
        width_px: 1200.0,
        node_stats: Some(routing.node_stats.clone()),
        controlled: Some(mask),
        ..SvgOptions::default()
    };
    let svg = render_svg(&routing.tree, config.die(), config.controller(), &options);
    if let Err(e) = std::fs::write(&out, svg) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: {} sinks, {} gates ({} controlled)",
        routing.tree.num_sinks(),
        routing.tree.device_count(),
        options_controlled_count(&options)
    );
}

fn options_controlled_count(o: &SvgOptions) -> usize {
    o.controlled
        .as_ref()
        .map_or(0, |c| c.iter().filter(|&&k| k).count())
}
