//! Extension experiment: where the power goes — switched capacitance by
//! tree depth, before and after gate reduction.
//!
//! Usage: `cargo run --release -p gcr-report --bin breakdown [bench]`
// CLI entry point: aborting with the expect message is the intended
// failure mode for bad inputs or a broken terminal.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gcr_core::{
    evaluate_breakdown, reduce_gates_untied, route_gated, ReductionParams, RouterConfig,
};
use gcr_rctree::Technology;
use gcr_report::TextTable;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

fn main() {
    let which = match std::env::args().nth(1).as_deref() {
        Some("r2") => TsayBenchmark::R2,
        Some("r3") => TsayBenchmark::R3,
        _ => TsayBenchmark::R1,
    };
    let tech = Technology::default();
    let w = Workload::generate(which, &WorkloadParams::default()).expect("workload");
    let config = RouterConfig::new(tech.clone(), w.benchmark.die);
    let routing = route_gated(&w.benchmark.sinks, &w.tables, &config).expect("routing");

    let full = vec![true; routing.tree.len()];
    let reduced = reduce_gates_untied(
        &routing,
        &tech,
        &ReductionParams::from_strength_scaled(0.2, &tech, w.benchmark.die.half_perimeter() / 8.0),
    );
    let rows_full = evaluate_breakdown(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &full,
    );
    let rows_red = evaluate_breakdown(
        &routing.tree,
        &routing.node_stats,
        config.controller(),
        &tech,
        &reduced,
    );

    let mut t = TextTable::new(vec![
        "depth",
        "edges",
        "full: W(T) pF",
        "full: W(S) pF",
        "reduced: W(T) pF",
        "reduced: W(S) pF",
    ]);
    for (f, r) in rows_full.iter().zip(&rows_red) {
        t.row(vec![
            f.depth.to_string(),
            f.nodes.to_string(),
            format!("{:.2}", f.clock_switched_cap),
            format!("{:.2}", f.control_switched_cap),
            format!("{:.2}", r.clock_switched_cap),
            format!("{:.2}", r.control_switched_cap),
        ]);
    }
    println!(
        "Switched capacitance by tree depth on {} (fully gated vs reduced):",
        which.name()
    );
    println!("{t}");
}
