//! The daemon's routing engine: cacheable design/routing entries and
//! the compute paths that produce them.
//!
//! A [`DesignEntry`] is everything derivable from a design key —
//! generated benchmark, scanned [`ActivityTables`](gcr_activity::ActivityTables),
//! sink-to-module map, router configuration. A [`RoutingEntry`] is a
//! completed gated routing plus its canonical decision log, the FNV-1a
//! digest of that log, and the Equation-3 power evaluation — the full
//! payload of a cache-hit response, so a hit is a pure replay that
//! touches no engine code at all.
//!
//! [`route_design`] mirrors the single-shot CLI flow (`gcr-verify`'s
//! audit path, [`gcr_core::route_gated_mapped_traced`]) exactly — same
//! objective construction, same greedy engine, same embedding — so a
//! daemon
//! response is bit-identical to what the CLI produces for the same key.
//! The one difference is mechanical: the daemon runs the greedy engine
//! through a per-worker reusable [`GreedyScratch`] and *copies* the
//! decision log out with [`GreedyScratch::decisions`] instead of
//! stealing the buffer, which keeps the warm merge loop at
//! `loop_allocs == 0`.

use std::sync::Arc;

use gcr_core::{
    evaluate_traced, gated_region_factory, route_gated_eco_with_params, DeviceRole, GatedObjective,
    GatedRouting, PowerReport, RouterConfig,
};
use gcr_cts::{
    canonical_decision_log, embed_sized_traced, run_greedy_coarsened_traced,
    run_greedy_with_scratch_traced, CoarsenParams, CoarsenScratch, DeviceAssignment, EcoEdit,
    EcoOutcome, EcoScratch, GreedyParams, GreedyScratch, MergeDecision, SizingLimits,
};
use gcr_rctree::Technology;
use gcr_trace::Tracer;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

use crate::cache::fnv1a;

/// Above this sink count the daemon routes through the hierarchical
/// coarsening engine, matching the `gcr-verify` audit threshold — the
/// flat pruned engine stays exact and economical below it.
pub const COARSEN_LIMIT: usize = 10_000;

/// The identity of a cacheable design: everything that determines the
/// generated benchmark and activity tables bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DesignKey {
    /// Which Tsay benchmark.
    pub benchmark: TsayBenchmark,
    /// Activity-stream length.
    pub stream_len: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl DesignKey {
    /// The canonical cache-key string; hashed with [`fnv1a`] for the
    /// LRU key and stored alongside the entry for collision detection.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "{}:{}:{}",
            self.benchmark.name(),
            self.stream_len,
            self.seed
        )
    }

    /// FNV-1a hash of [`Self::canonical`].
    #[must_use]
    pub fn hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// Looks up a benchmark by its wire name (`"r1"` … `"r8"`).
#[must_use]
pub fn benchmark_by_name(name: &str) -> Option<TsayBenchmark> {
    TsayBenchmark::ALL
        .into_iter()
        .chain(TsayBenchmark::SCALED)
        .find(|b| b.name() == name)
}

/// A parsed, scanned, route-ready design (cache value).
#[derive(Debug)]
pub struct DesignEntry {
    /// The key this entry was built from.
    pub key: DesignKey,
    /// Generated benchmark + scanned activity tables.
    pub workload: Workload,
    /// Sink-to-module map (identity on r1–r5, clamped on r6–r8).
    pub module_of: Vec<usize>,
    /// Router configuration: technology, die, source, controller plan —
    /// the same defaults as the CLI (`RouterConfig::new`).
    pub config: RouterConfig,
}

/// A completed routing plus its full response payload (cache value).
#[derive(Debug)]
pub struct RoutingEntry {
    /// The routed, embedded gated clock tree.
    pub routing: GatedRouting,
    /// The committed merge decisions, in order.
    pub decisions: Vec<MergeDecision>,
    /// `canonical_decision_log(&decisions)`.
    pub log: String,
    /// FNV-1a digest of the canonical log — the wire `log_hash`.
    pub log_hash: u64,
    /// Equation-3 power evaluation of the routing.
    pub report: PowerReport,
    /// Merge-loop heap allocations of the run that produced this entry
    /// (0 once the producing worker's scratch is warm).
    pub loop_allocs: u64,
}

/// Per-worker reusable engine buffers. Each worker owns one; a warm
/// scratch makes every subsequent flat-engine route allocation-free in
/// its merge loop.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Flat pruned-engine arena + decision log buffer.
    pub greedy: GreedyScratch,
    /// Incremental-ECO frontier/replay buffers.
    pub eco: EcoScratch,
    /// Hierarchical-coarsening buffers (scale benchmarks only).
    pub coarsen: CoarsenScratch,
}

impl WorkerScratch {
    /// Fresh (cold) buffers.
    #[must_use]
    pub fn new() -> Self {
        WorkerScratch::default()
    }
}

/// Generates and scans the design for `key`. This is the expensive,
/// once-per-design path a design-cache hit skips.
///
/// # Errors
///
/// Returns a message for an invalid workload parameterization.
pub fn build_design(key: DesignKey, tracer: &Tracer) -> Result<DesignEntry, String> {
    let params = WorkloadParams::smoke()
        .with_stream_len(key.stream_len)
        .with_seed(key.seed);
    let workload = Workload::generate_traced(key.benchmark, &params, tracer)
        .map_err(|e| format!("workload generation failed: {e}"))?;
    let module_of = workload.module_of();
    let config = RouterConfig::new(Technology::default(), workload.benchmark.die);
    Ok(DesignEntry {
        key,
        workload,
        module_of,
        config,
    })
}

/// Routes `design` from scratch through the per-worker `scratch`,
/// producing the full cacheable entry. Bit-identical to the CLI
/// single-shot flow at any thread count and tracing state; the decision
/// log is **copied** out of the scratch (not stolen), so a warm
/// scratch's next run stays allocation-free.
///
/// # Errors
///
/// Returns a message for an engine failure (empty sink set, embedding
/// failure — none occur for generated benchmarks).
pub fn route_design(
    design: &DesignEntry,
    threads: usize,
    scratch: &mut WorkerScratch,
    tracer: &Tracer,
) -> Result<RoutingEntry, String> {
    let sinks = &design.workload.benchmark.sinks;
    let tables = &design.workload.tables;
    let config = &design.config;
    let mut objective = GatedObjective::new(
        config.tech(),
        config.controller(),
        tables,
        sinks,
        &design.module_of,
    );
    let params = GreedyParams {
        threads: Some(threads),
        log_decisions: true,
    };
    let (topology, profile, decisions) = if sinks.len() > COARSEN_LIMIT {
        let coarsen = CoarsenParams {
            greedy: params,
            target_region_size: 0,
        };
        let factory = gated_region_factory(
            config.tech(),
            config.controller(),
            tables,
            sinks,
            &design.module_of,
        );
        let (topology, _, profile) = run_greedy_coarsened_traced(
            sinks.len(),
            &mut objective,
            factory,
            &coarsen,
            &mut scratch.coarsen,
            tracer,
        )
        .map_err(|e| format!("coarsened route failed: {e}"))?;
        let decisions = scratch.coarsen.decisions().to_vec();
        (topology, profile, decisions)
    } else {
        let (topology, _, profile) = run_greedy_with_scratch_traced(
            sinks.len(),
            &mut objective,
            &params,
            &mut scratch.greedy,
            tracer,
        )
        .map_err(|e| format!("route failed: {e}"))?;
        // Copy, don't steal: `take_decisions` would leave the scratch's
        // log buffer empty and the next warm run would regrow it,
        // breaking the `loop_allocs == 0` steady state.
        let decisions = scratch.greedy.decisions().to_vec();
        (topology, profile, decisions)
    };
    let assignment = DeviceAssignment::everywhere(&topology, config.tech().and_gate());
    let tree = embed_sized_traced(
        &topology,
        sinks,
        config.tech(),
        &assignment,
        config.source(),
        SizingLimits::default(),
        tracer,
    )
    .map_err(|e| format!("embedding failed: {e}"))?;
    let node_stats = objective.node_stats();
    let node_modules = objective.node_modules();
    let report = evaluate_traced(
        &tree,
        &node_stats,
        config.controller(),
        config.tech(),
        DeviceRole::Gate,
        tracer,
    );
    let log = canonical_decision_log(&decisions);
    let log_hash = fnv1a(log.as_bytes());
    Ok(RoutingEntry {
        routing: GatedRouting {
            topology,
            assignment,
            tree,
            node_stats,
            node_modules,
        },
        decisions,
        log,
        log_hash,
        report,
        loop_allocs: profile.loop_allocs,
    })
}

/// The result of one incremental re-route served by the daemon.
#[derive(Debug)]
pub struct EcoAnswer {
    /// Power evaluation of the re-routed tree.
    pub report: PowerReport,
    /// What the incremental engine did.
    pub outcome: EcoOutcome,
}

/// Incrementally re-routes a cached routing under `edits` via the
/// dirty-frontier engine — the 21–39× path for small edits — with the
/// daemon's pinned thread count threaded through to the splice search.
///
/// # Errors
///
/// Returns a message for an invalid edit batch (out-of-range index,
/// unknown module).
pub fn eco_design(
    design: &DesignEntry,
    routing: &RoutingEntry,
    edits: &[EcoEdit],
    threads: usize,
    scratch: &mut WorkerScratch,
    tracer: &Tracer,
) -> Result<EcoAnswer, String> {
    let params = GreedyParams {
        threads: Some(threads),
        log_decisions: false,
    };
    let result = route_gated_eco_with_params(
        &routing.routing,
        &design.workload.benchmark.sinks,
        &design.module_of,
        edits,
        &design.workload.tables,
        &design.config,
        &params,
        &mut scratch.eco,
        tracer,
    )
    .map_err(|e| format!("eco failed: {e}"))?;
    let report = evaluate_traced(
        &result.routing.tree,
        &result.routing.node_stats,
        design.config.controller(),
        design.config.tech(),
        DeviceRole::Gate,
        tracer,
    );
    Ok(EcoAnswer {
        report,
        outcome: result.outcome,
    })
}

/// Runs the full verifier lint suite over a routing and returns
/// `(error_count, warn_count)`.
#[must_use]
pub fn verify_routing(design: &DesignEntry, routing: &RoutingEntry) -> (u64, u64) {
    let verifier = gcr_verify::Verifier::with_default_lints();
    let input = gcr_verify::VerifyInput::new(&routing.routing.tree, design.config.tech())
        .with_die(design.workload.benchmark.die)
        .with_controller(design.config.controller())
        .with_tables(&design.workload.tables)
        .with_node_stats(&routing.routing.node_stats)
        .with_decision_log(&routing.decisions);
    let report = verifier.run(&input);
    let errors = report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == gcr_verify::Severity::Error)
        .count();
    let warns = report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == gcr_verify::Severity::Warn)
        .count();
    (errors as u64, warns as u64)
}

/// The single-shot CLI-equivalent reference: fresh (cold) scratch,
/// single-threaded, untraced. Integration tests and the CI smoke
/// compare daemon responses against this bit for bit.
///
/// # Errors
///
/// As [`build_design`] / [`route_design`].
pub fn single_shot_reference(key: DesignKey) -> Result<(Arc<DesignEntry>, RoutingEntry), String> {
    let tracer = Tracer::disabled();
    let design = Arc::new(build_design(key, &tracer)?);
    let routing = route_design(&design, 1, &mut WorkerScratch::new(), &tracer)?;
    Ok((design, routing))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_lookup_covers_suite_and_scaled() {
        assert_eq!(benchmark_by_name("r1"), Some(TsayBenchmark::R1));
        assert_eq!(benchmark_by_name("r5"), Some(TsayBenchmark::R5));
        assert_eq!(benchmark_by_name("r8"), Some(TsayBenchmark::R8));
        assert_eq!(benchmark_by_name("r9"), None);
    }

    #[test]
    fn design_key_canonical_is_stable() {
        let key = DesignKey {
            benchmark: TsayBenchmark::R1,
            stream_len: 500,
            seed: 1998,
        };
        assert_eq!(key.canonical(), "r1:500:1998");
        assert_eq!(key.hash(), fnv1a(b"r1:500:1998"));
    }

    /// A warm-scratch re-route reproduces the cold route bit for bit
    /// (same canonical log, same hash) and the ECO fast path over a
    /// no-op edit batch is a pure replay — the daemon's cache-hit and
    /// incremental contracts, exercised without any networking.
    #[test]
    fn warm_reroute_and_pure_replay_match_cold_reference() {
        let key = DesignKey {
            benchmark: TsayBenchmark::R1,
            stream_len: 500,
            seed: 1998,
        };
        let tracer = Tracer::disabled();
        let design = build_design(key, &tracer).unwrap();
        let mut scratch = WorkerScratch::new();
        let cold = route_design(&design, 1, &mut scratch, &tracer).unwrap();
        let warm = route_design(&design, 1, &mut scratch, &tracer).unwrap();
        assert_eq!(cold.log, warm.log);
        assert_eq!(cold.log_hash, warm.log_hash);
        assert_eq!(cold.routing.topology, warm.routing.topology);

        let eco = eco_design(
            &design,
            &warm,
            &[EcoEdit::SwapActivity { module: 0 }],
            1,
            &mut scratch,
            &tracer,
        )
        .unwrap();
        assert!(eco.outcome.pure_replay);
        assert_eq!(eco.outcome.topology, cold.routing.topology);

        let (errors, _) = verify_routing(&design, &warm);
        assert_eq!(errors, 0);
    }
}
