//! The daemon itself: TCP acceptor, bounded work queue, blocking worker
//! pool, caches, counters, and graceful shutdown.
//!
//! ## Concurrency model
//!
//! One nonblocking acceptor loop (the thread that called
//! [`Service::run`]) spawns a thread per connection; connection threads
//! parse request lines and either answer inline (`ping` / `stats` /
//! `shutdown`) or enqueue a [`Job`] on the bounded queue. `workers`
//! threads pop jobs and compute through per-worker reusable engine
//! scratch ([`WorkerScratch`]) — so a warm worker's flat-engine merge
//! loop allocates nothing. Responses go back through a per-connection
//! writer mutex, so concurrent workers never interleave bytes on one
//! socket.
//!
//! ## Backpressure and deadlines
//!
//! A full queue answers immediately with `status: "rejected"` and a
//! `retry_after_ms` hint — the daemon never blocks an enqueue on a slow
//! pool (the NDJSON analogue of HTTP 429 + Retry-After). A request may
//! carry `deadline_ms`; if it spends longer than that *queued*, the
//! worker answers with an error instead of doing stale work.
//!
//! ## Worker panics
//!
//! A panicking request is caught with [`std::panic::catch_unwind`]; the
//! worker answers that request with an error, discards its (possibly
//! inconsistent) scratch for a fresh one, bumps the `gcrd.panics`
//! counter, and keeps serving. A bug in one request's input never
//! wedges the daemon. The shared caches are never locked across engine
//! calls, and every shared lock is poison-tolerant
//! ([`PoisonError::into_inner`]), so even a panic at an unlucky point
//! cannot poison another worker's path.
//!
//! ## Graceful shutdown
//!
//! `shutdown` flips the service into draining: new work is rejected
//! (`"draining"`), queued and in-flight requests finish and are
//! answered, then the shutdown request itself is answered with the
//! lifetime `drained` count and the acceptor and workers exit.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use gcr_trace::Tracer;

use crate::cache::LruCache;
use crate::engine::{
    benchmark_by_name, build_design, eco_design, route_design, verify_routing, DesignEntry,
    DesignKey, RoutingEntry, WorkerScratch,
};
use crate::protocol::{parse_request, Command, Request, Response, StatsSnapshot, MAX_LINE_BYTES};

/// Service deployment knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads computing routings.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with a retry hint.
    pub queue_capacity: usize,
    /// Design-cache entries (parsed workload + scanned tables).
    pub design_cache: usize,
    /// Routing-cache entries (completed routings; a hit is pure replay).
    pub routing_cache: usize,
    /// Engine worker-thread count; `None` resolves once at startup via
    /// [`gcr_trace::threads::resolve`] and is pinned from then on —
    /// request handling never re-reads `GCR_THREADS`.
    pub threads: Option<usize>,
    /// `retry_after_ms` hint sent with backpressure rejections.
    pub retry_after_ms: u64,
    /// Default activity-stream length when a request omits `stream_len`.
    pub default_stream_len: usize,
    /// Default workload seed when a request omits `seed`.
    pub default_seed: u64,
    /// Enable the `sleep` / `panic` test commands. Never on by default.
    pub debug_commands: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            design_cache: 16,
            routing_cache: 32,
            threads: None,
            retry_after_ms: 100,
            default_stream_len: 2_000,
            default_seed: 1_998,
            debug_commands: false,
        }
    }
}

/// Locks `m` tolerating poison: the daemon's shared state is counters
/// and caches whose invariants hold between operations, so a panicking
/// holder leaves them usable.
fn lock_tolerant<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, line: &str) {
        let mut guard = lock_tolerant(&self.stream);
        // A vanished client is its own problem; the daemon drops the
        // bytes and keeps serving everyone else.
        let _ = guard.write_all(line.as_bytes());
        let _ = guard.write_all(b"\n");
        let _ = guard.flush();
    }
}

struct Job {
    request: Request,
    enqueued: Instant,
    writer: Arc<ConnWriter>,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Queue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    cond: Condvar,
}

enum PushError {
    Full,
    Closed,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                open: true,
            }),
            cond: Condvar::new(),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut inner = lock_tolerant(&self.inner);
        if !inner.open {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// drained (the worker-exit signal).
    fn pop(&self) -> Option<Job> {
        let mut inner = lock_tolerant(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock_tolerant(&self.inner).open = false;
        self.cond.notify_all();
    }

    fn depth(&self) -> usize {
        lock_tolerant(&self.inner).jobs.len()
    }
}

struct Shared {
    config: ServiceConfig,
    /// Engine thread count, resolved exactly once at startup.
    threads: usize,
    tracer: Tracer,
    queue: Queue,
    designs: Mutex<LruCache<Arc<DesignEntry>>>,
    routings: Mutex<LruCache<Arc<RoutingEntry>>>,
    /// Work requests accepted (enqueued) but not yet answered. Bumped
    /// *before* the queue push, so `draining && outstanding == 0` means
    /// truly idle.
    outstanding: AtomicU64,
    draining: AtomicBool,
    stopped: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    panics: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            inflight: self.outstanding.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
        }
    }
}

/// A bound, not-yet-running daemon. [`Service::run`] blocks until a
/// `shutdown` request completes; tests spawn it on a thread and talk to
/// [`Service::local_addr`] over real TCP.
pub struct Service {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Service {
    /// Binds `addr` (e.g. `"127.0.0.1:4517"` or `"127.0.0.1:0"`) and
    /// resolves the engine thread count once — the only environment
    /// read the daemon ever performs for threading.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
        tracer: Tracer,
    ) -> std::io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let threads = gcr_trace::threads::resolve(config.threads, "gcrd.threads", &tracer);
        let shared = Arc::new(Shared {
            threads,
            queue: Queue::new(config.queue_capacity),
            designs: Mutex::new(LruCache::new(config.design_cache)),
            routings: Mutex::new(LruCache::new(config.routing_cache)),
            outstanding: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            tracer,
            config,
        });
        Ok(Service { listener, shared })
    }

    /// The bound address (read the ephemeral port back after `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon: spawns the worker pool, accepts connections,
    /// and returns after a `shutdown` request has drained all in-flight
    /// work and every worker has exited.
    pub fn run(self) {
        let Service { listener, shared } = self;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .filter_map(|i| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gcrd-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .ok()
            })
            .collect();
        if listener.set_nonblocking(true).is_err() {
            shared.stopped.store(true, Ordering::SeqCst);
        }
        while !shared.stopped.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let s = Arc::clone(&shared);
                    let _ = thread::Builder::new()
                        .name("gcrd-conn".to_owned())
                        .spawn(move || connection_loop(&s, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Consumes buffered input up to and including the next newline.
/// Returns `false` on EOF or a read error.
fn skip_to_newline(reader: &mut impl BufRead) -> bool {
    loop {
        let (found, used) = {
            let Ok(buf) = reader.fill_buf() else {
                return false;
            };
            if buf.is_empty() {
                return false;
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => (true, i + 1),
                None => (false, buf.len()),
            }
        };
        reader.consume(used);
        if found {
            return true;
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(write_half),
    });
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        let mut limited = std::io::Read::take(&mut reader, MAX_LINE_BYTES as u64 + 1);
        match limited.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        if line.len() > MAX_LINE_BYTES {
            writer.send(
                &Response::error("", format!("request line exceeds {MAX_LINE_BYTES} bytes"))
                    .render(),
            );
            if !skip_to_newline(&mut reader) {
                return;
            }
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        handle_line(shared, trimmed, &writer);
        if shared.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str, writer: &Arc<ConnWriter>) {
    let parse_start = shared.tracer.now_ns();
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            writer.send(&Response::error("", msg).render());
            return;
        }
    };
    shared.tracer.complete_span(
        "gcrd.parse",
        parse_start,
        shared.tracer.now_ns() - parse_start,
    );
    match request.cmd {
        Command::Ping => {
            let mut resp = Response::ok(&request.id);
            resp.cmd = Some("ping");
            writer.send(&resp.render());
        }
        Command::Stats => {
            let mut resp = Response::ok(&request.id);
            resp.cmd = Some("stats");
            resp.stats = Some(shared.snapshot());
            writer.send(&resp.render());
        }
        Command::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            while shared.outstanding.load(Ordering::SeqCst) != 0 {
                thread::sleep(Duration::from_millis(2));
            }
            let mut resp = Response::ok(&request.id);
            resp.cmd = Some("shutdown");
            resp.drained = Some(shared.completed.load(Ordering::Relaxed));
            writer.send(&resp.render());
            shared.stopped.store(true, Ordering::SeqCst);
            shared.queue.close();
        }
        _ => enqueue_work(shared, request, writer),
    }
}

fn enqueue_work(shared: &Arc<Shared>, request: Request, writer: &Arc<ConnWriter>) {
    if matches!(request.cmd, Command::Sleep | Command::Panic) && !shared.config.debug_commands {
        writer.send(
            &Response::error(
                &request.id,
                format!("{:?} requires debug_commands", request.cmd.name()),
            )
            .render(),
        );
        return;
    }
    if shared.draining.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        shared.tracer.counter(
            "gcrd.rejected",
            shared.rejected.load(Ordering::Relaxed) as f64,
        );
        writer.send(
            &Response::rejected(&request.id, "draining", shared.config.retry_after_ms).render(),
        );
        return;
    }
    let id = request.id.clone();
    shared.outstanding.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        request,
        enqueued: Instant::now(),
        writer: Arc::clone(writer),
    };
    if let Err(err) = shared.queue.try_push(job) {
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        shared.tracer.counter(
            "gcrd.rejected",
            shared.rejected.load(Ordering::Relaxed) as f64,
        );
        let reason = match err {
            PushError::Full => "queue full",
            PushError::Closed => "draining",
        };
        writer.send(&Response::rejected(&id, reason, shared.config.retry_after_ms).render());
    } else {
        shared.tracer.counter(
            "gcrd.inflight",
            shared.outstanding.load(Ordering::Relaxed) as f64,
        );
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut scratch = WorkerScratch::new();
    while let Some(job) = shared.queue.pop() {
        let id = job.request.id.clone();
        let start = shared.tracer.now_ns();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_job(shared, &job.request, job.enqueued, &mut scratch)
        }));
        let response = match outcome {
            Ok(resp) => resp,
            Err(_) => {
                // The scratch may be mid-mutation; replace it rather
                // than risk a poisoned arena on the next request.
                scratch = WorkerScratch::new();
                shared.panics.fetch_add(1, Ordering::Relaxed);
                shared
                    .tracer
                    .counter("gcrd.panics", shared.panics.load(Ordering::Relaxed) as f64);
                Response::error(&id, "worker panicked while handling request")
            }
        };
        let respond_start = shared.tracer.now_ns();
        job.writer.send(&response.render());
        let end = shared.tracer.now_ns();
        shared
            .tracer
            .complete_span("gcrd.respond", respond_start, end - respond_start);
        shared
            .tracer
            .complete_span("gcrd.request", start, end - start);
        shared.outstanding.fetch_sub(1, Ordering::SeqCst);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        shared.tracer.counter(
            "gcrd.completed",
            shared.completed.load(Ordering::Relaxed) as f64,
        );
        shared.tracer.counter(
            "gcrd.inflight",
            shared.outstanding.load(Ordering::Relaxed) as f64,
        );
    }
}

fn design_key(shared: &Shared, request: &Request) -> Result<DesignKey, String> {
    let name = request
        .benchmark
        .as_deref()
        .ok_or("missing \"benchmark\"")?;
    let benchmark = benchmark_by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    Ok(DesignKey {
        benchmark,
        stream_len: request
            .stream_len
            .unwrap_or(shared.config.default_stream_len),
        seed: request.seed.unwrap_or(shared.config.default_seed),
    })
}

/// Fetches (or builds and caches) the design for `key`. The cache lock
/// is never held across the build, so a slow workload generation stalls
/// only requests for that same design's first arrival — at worst two
/// workers build it concurrently and the second insert wins.
fn design_for(shared: &Shared, key: DesignKey) -> Result<Arc<DesignEntry>, String> {
    let canonical = key.canonical();
    let hash = key.hash();
    if let Some(entry) = lock_tolerant(&shared.designs).get(hash, &canonical) {
        return Ok(entry);
    }
    let entry = Arc::new(build_design(key, &shared.tracer)?);
    lock_tolerant(&shared.designs).insert(hash, &canonical, Arc::clone(&entry));
    Ok(entry)
}

/// Fetches (or computes and caches) the routing for `key`. Returns the
/// entry plus whether it was a cache hit. `force` bypasses the cache
/// *read* but still refreshes the entry.
fn routing_for(
    shared: &Shared,
    key: DesignKey,
    force: bool,
    scratch: &mut WorkerScratch,
) -> Result<(Arc<RoutingEntry>, bool), String> {
    let canonical = key.canonical();
    let hash = key.hash();
    let cache_start = shared.tracer.now_ns();
    if !force {
        if let Some(entry) = lock_tolerant(&shared.routings).get(hash, &canonical) {
            shared.hits.fetch_add(1, Ordering::Relaxed);
            shared
                .tracer
                .counter("gcrd.hits", shared.hits.load(Ordering::Relaxed) as f64);
            shared.tracer.complete_span(
                "gcrd.cache",
                cache_start,
                shared.tracer.now_ns() - cache_start,
            );
            return Ok((entry, true));
        }
    }
    shared.tracer.complete_span(
        "gcrd.cache",
        cache_start,
        shared.tracer.now_ns() - cache_start,
    );
    let design = design_for(shared, key)?;
    let route_start = shared.tracer.now_ns();
    let entry = Arc::new(route_design(
        &design,
        shared.threads,
        scratch,
        &shared.tracer,
    )?);
    shared.tracer.complete_span(
        "gcrd.route",
        route_start,
        shared.tracer.now_ns() - route_start,
    );
    shared.misses.fetch_add(1, Ordering::Relaxed);
    shared
        .tracer
        .counter("gcrd.misses", shared.misses.load(Ordering::Relaxed) as f64);
    lock_tolerant(&shared.routings).insert(hash, &canonical, Arc::clone(&entry));
    Ok((entry, false))
}

fn routing_response(
    request: &Request,
    key: DesignKey,
    entry: &RoutingEntry,
    hit: bool,
) -> Response {
    let mut resp = Response::ok(&request.id);
    resp.cmd = Some(request.cmd.name());
    resp.cache = Some(if hit { "hit" } else { "miss" });
    resp.benchmark = Some(key.benchmark.name().to_owned());
    resp.sinks = Some(key.benchmark.num_sinks() as u64);
    resp.merges = Some(entry.decisions.len() as u64);
    resp.loop_allocs = Some(entry.loop_allocs);
    resp.log_hash = Some(entry.log_hash);
    if request.want_log {
        resp.decision_log = Some(entry.log.clone());
    }
    resp.total_switched_cap = Some(entry.report.total_switched_cap);
    resp.clock_switched_cap = Some(entry.report.clock_switched_cap);
    resp.control_switched_cap = Some(entry.report.control_switched_cap);
    resp
}

fn handle_job(
    shared: &Shared,
    request: &Request,
    enqueued: Instant,
    scratch: &mut WorkerScratch,
) -> Response {
    if let Some(deadline) = request.deadline_ms {
        if enqueued.elapsed() > Duration::from_millis(deadline) {
            return Response::error(
                &request.id,
                format!("deadline of {deadline}ms exceeded while queued"),
            );
        }
    }
    match request.cmd {
        Command::Sleep => {
            thread::sleep(Duration::from_millis(request.sleep_ms));
            let mut resp = Response::ok(&request.id);
            resp.cmd = Some("sleep");
            resp
        }
        Command::Panic => panic!("injected test panic"),
        Command::Route | Command::Evaluate | Command::Verify => {
            let key = match design_key(shared, request) {
                Ok(k) => k,
                Err(msg) => return Response::error(&request.id, msg),
            };
            let (entry, hit) = match routing_for(shared, key, request.force, scratch) {
                Ok(pair) => pair,
                Err(msg) => return Response::error(&request.id, msg),
            };
            let mut resp = routing_response(request, key, &entry, hit);
            if request.cmd == Command::Evaluate {
                resp.total_area = Some(entry.report.total_area);
                resp.num_devices = Some(entry.report.num_devices as u64);
            }
            if request.cmd == Command::Verify {
                let design = match design_for(shared, key) {
                    Ok(d) => d,
                    Err(msg) => return Response::error(&request.id, msg),
                };
                let (errors, warns) = verify_routing(&design, &entry);
                resp.verify_errors = Some(errors);
                resp.verify_warnings = Some(warns);
            }
            resp
        }
        Command::Eco => {
            let key = match design_key(shared, request) {
                Ok(k) => k,
                Err(msg) => return Response::error(&request.id, msg),
            };
            let (entry, hit) = match routing_for(shared, key, false, scratch) {
                Ok(pair) => pair,
                Err(msg) => return Response::error(&request.id, msg),
            };
            let design = match design_for(shared, key) {
                Ok(d) => d,
                Err(msg) => return Response::error(&request.id, msg),
            };
            match eco_design(
                &design,
                &entry,
                &request.edits,
                shared.threads,
                scratch,
                &shared.tracer,
            ) {
                Ok(answer) => {
                    let mut resp = Response::ok(&request.id);
                    resp.cmd = Some("eco");
                    resp.cache = Some(if hit { "hit" } else { "miss" });
                    resp.benchmark = Some(key.benchmark.name().to_owned());
                    resp.pure_replay = Some(answer.outcome.pure_replay);
                    resp.replayed = Some(answer.outcome.replayed as u64);
                    resp.spliced = Some(answer.outcome.spliced as u64);
                    resp.dirty_nodes = Some(answer.outcome.dirty_nodes.len() as u64);
                    resp.loop_allocs = Some(answer.outcome.profile.loop_allocs);
                    resp.total_switched_cap = Some(answer.report.total_switched_cap);
                    resp.clock_switched_cap = Some(answer.report.clock_switched_cap);
                    resp.control_switched_cap = Some(answer.report.control_switched_cap);
                    resp
                }
                Err(msg) => Response::error(&request.id, msg),
            }
        }
        // Inline commands never reach the queue.
        Command::Ping | Command::Stats | Command::Shutdown => {
            Response::error(&request.id, "control command on worker path")
        }
    }
}
