//! Dependency-free keyed LRU cache and the FNV-1a hash that keys it.
//!
//! The daemon keys parsed designs and completed routings by the 64-bit
//! FNV-1a hash of a canonical description string (benchmark name,
//! stream length, seed — everything that determines the input bit for
//! bit). Hash collisions are a theoretical concern at daemon cache
//! sizes (tens of entries); the canonical string itself is stored with
//! the entry and compared on lookup, so a collision degrades to a miss,
//! never to a wrong answer.

use std::collections::HashMap;

/// 64-bit FNV-1a over `bytes` — stable across platforms and runs, which
/// is what a cache key and a response-visible decision-log digest need
/// (`DefaultHasher` makes no such promise).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A least-recently-used cache with `u64` keys and exact-key
/// verification.
///
/// Entries carry the canonical string they were keyed from; a lookup
/// whose canonical string differs (an FNV collision) is treated as a
/// miss and the colliding entry is left in place. Recency is a
/// monotonic stamp bumped on every hit; eviction scans for the minimum
/// stamp — O(capacity), which is fine at the daemon's cache sizes and
/// keeps the structure a single `HashMap`.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, Entry<V>>,
    capacity: usize,
    tick: u64,
}

#[derive(Debug)]
struct Entry<V> {
    canonical: String,
    stamp: u64,
    value: V,
}

impl<V: Clone> LruCache<V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Looks up `key`, verifying the entry was produced from the same
    /// `canonical` string; bumps recency on a hit.
    pub fn get(&mut self, key: u64, canonical: &str) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&key)?;
        if entry.canonical != canonical {
            return None;
        }
        entry.stamp = tick;
        Some(entry.value.clone())
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert(&mut self, key: u64, canonical: &str, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(
            key,
            Entry {
                canonical: canonical.to_owned(),
                stamp: self.tick,
                value,
            },
        );
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "one", 10);
        cache.insert(2, "two", 20);
        assert_eq!(cache.get(1, "one"), Some(10)); // bump 1
        cache.insert(3, "three", 30); // evicts 2
        assert_eq!(cache.get(2, "two"), None);
        assert_eq!(cache.get(1, "one"), Some(10));
        assert_eq!(cache.get(3, "three"), Some(30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn collision_is_a_miss_not_a_wrong_answer() {
        let mut cache = LruCache::new(4);
        cache.insert(7, "design-a", 1);
        assert_eq!(cache.get(7, "design-b"), None);
        assert_eq!(cache.get(7, "design-a"), Some(1));
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert(1, "one", 10);
        cache.insert(2, "two", 20);
        cache.insert(1, "one", 11);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1, "one"), Some(11));
        assert_eq!(cache.get(2, "two"), Some(20));
    }
}
