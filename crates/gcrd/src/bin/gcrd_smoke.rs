//! `gcrd-smoke` — the service acceptance gate CI runs in release mode.
//!
//! 1. Computes a single-shot, cold-scratch, single-threaded reference
//!    routing for every published benchmark (r1–r5) — the CLI-
//!    equivalent flow.
//! 2. Starts an in-process daemon on an ephemeral port and fires a
//!    mixed batch (`route` with decision logs, `evaluate`, `eco`,
//!    `verify`) from 10 concurrent client connections.
//! 3. Asserts every response is `ok`, every decision log and
//!    Equation-3 total is **bit-identical** to the reference, every
//!    ECO replay is pure, and the cache actually served hits.
//! 4. Runs a second tiny daemon (one worker, queue of one) and asserts
//!    backpressure rejects with a `retry_after_ms` hint, then that
//!    `shutdown` drains in-flight work before answering.
//!
//! Exits nonzero on any mismatch — wire this binary directly into CI.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::thread;
use std::time::Duration;

use gcr_bench::json::{self, Json};
use gcr_trace::Tracer;
use gcr_workloads::TsayBenchmark;
use gcrd::engine::{single_shot_reference, RoutingEntry};
use gcrd::{DesignKey, Service, ServiceConfig};

const STREAM_LEN: usize = 2_000;
const SEED: u64 = 1_998;
const CLIENTS: usize = 10;

fn fail(msg: &str) -> ExitCode {
    eprintln!("gcrd-smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

/// Sends `requests` on one connection and returns one parsed response
/// per request (completion order).
fn send_batch(addr: &str, requests: &[String]) -> Result<Vec<Json>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    for r in requests {
        stream
            .write_all(format!("{r}\n").as_bytes())
            .map_err(|e| format!("send failed: {e}"))?;
    }
    stream.flush().map_err(|e| format!("flush failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    for _ in 0..requests.len() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("connection closed early".to_owned()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        responses.push(json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?);
    }
    Ok(responses)
}

fn str_field(j: &Json, key: &str) -> String {
    j.get(key)
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_owned()
}

fn check_client(
    addr: &str,
    idx: usize,
    refs: &[(TsayBenchmark, RoutingEntry)],
) -> Result<(), String> {
    let mut requests = Vec::new();
    for (bench, _) in refs {
        let name = bench.name();
        requests.push(format!(
            "{{\"id\":\"c{idx}-route-{name}\",\"cmd\":\"route\",\"benchmark\":\"{name}\",\
             \"stream_len\":{STREAM_LEN},\"seed\":{SEED},\"log\":true}}"
        ));
        requests.push(format!(
            "{{\"id\":\"c{idx}-eval-{name}\",\"cmd\":\"evaluate\",\"benchmark\":\"{name}\",\
             \"stream_len\":{STREAM_LEN},\"seed\":{SEED}}}"
        ));
        if idx == 0 {
            requests.push(format!(
                "{{\"id\":\"c{idx}-verify-{name}\",\"cmd\":\"verify\",\"benchmark\":\"{name}\",\
                 \"stream_len\":{STREAM_LEN},\"seed\":{SEED}}}"
            ));
        }
    }
    requests.push(format!(
        "{{\"id\":\"c{idx}-eco-r1\",\"cmd\":\"eco\",\"benchmark\":\"r1\",\
         \"stream_len\":{STREAM_LEN},\"seed\":{SEED},\
         \"edits\":[{{\"op\":\"swap_activity\",\"module\":0}}]}}"
    ));
    let responses = send_batch(addr, &requests)?;
    for resp in &responses {
        let id = str_field(resp, "id");
        let status = str_field(resp, "status");
        if status != "ok" {
            return Err(format!(
                "{id}: status {status:?} ({})",
                str_field(resp, "error")
            ));
        }
        if id.contains("-route-") || id.contains("-eval-") {
            let name = id.rsplit('-').next().unwrap_or_default();
            let Some((_, reference)) = refs.iter().find(|(b, _)| b.name() == name) else {
                return Err(format!("{id}: unknown benchmark in id"));
            };
            let expect_hash = format!("{:016x}", reference.log_hash);
            if str_field(resp, "log_hash") != expect_hash {
                return Err(format!("{id}: log_hash differs from single-shot reference"));
            }
            let total = resp.get("total_switched_cap").and_then(Json::as_f64);
            if total != Some(reference.report.total_switched_cap) {
                return Err(format!(
                    "{id}: total_switched_cap {total:?} != reference {} (bit-exact required)",
                    reference.report.total_switched_cap
                ));
            }
            if id.contains("-route-") && str_field(resp, "decision_log") != reference.log {
                return Err(format!("{id}: decision log differs from reference"));
            }
        }
        if id.contains("-verify-") {
            let errors = resp.get("verify_errors").and_then(Json::as_f64);
            if errors != Some(0.0) {
                return Err(format!("{id}: verifier reported {errors:?} errors"));
            }
        }
        if id.contains("-eco-") && resp.get("pure_replay").and_then(Json::as_bool) != Some(true) {
            return Err(format!("{id}: activity-swap ECO was not a pure replay"));
        }
    }
    Ok(())
}

fn backpressure_and_drain_check() -> Result<(), String> {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        debug_commands: true,
        ..ServiceConfig::default()
    };
    let service = Service::bind("127.0.0.1:0", config, Tracer::disabled())
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = service
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?
        .to_string();
    let daemon = thread::spawn(move || service.run());

    // Six instant sleeps at a one-slot queue: some must be rejected
    // with the backpressure hint.
    let requests: Vec<String> = (0..6)
        .map(|i| format!("{{\"id\":\"bp{i}\",\"cmd\":\"sleep\",\"sleep_ms\":200}}"))
        .collect();
    let responses = send_batch(&addr, &requests)?;
    let rejected = responses
        .iter()
        .filter(|r| str_field(r, "status") == "rejected")
        .count();
    if rejected == 0 {
        return Err("no backpressure rejection at workers=1, queue=1".to_owned());
    }
    if !responses.iter().any(|r| {
        str_field(r, "status") == "rejected"
            && r.get("retry_after_ms").and_then(Json::as_f64).is_some()
    }) {
        return Err("rejected response missing retry_after_ms hint".to_owned());
    }
    let bp_shutdown = send_batch(&addr, &[r#"{"id":"sd0","cmd":"shutdown"}"#.to_owned()])?;
    if str_field(&bp_shutdown[0], "status") != "ok" {
        return Err("backpressure daemon shutdown not acknowledged".to_owned());
    }
    daemon
        .join()
        .map_err(|_| "backpressure daemon thread panicked".to_owned())?;

    // Drain, on a fresh daemon whose queue holds the burst: put one
    // sleep in flight and one in queue, then shut down from a second
    // connection. Both sleeps must be answered `ok` before the
    // shutdown response arrives.
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        debug_commands: true,
        ..ServiceConfig::default()
    };
    let service = Service::bind("127.0.0.1:0", config, Tracer::disabled())
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = service
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?
        .to_string();
    let daemon = thread::spawn(move || service.run());
    let mut busy = TcpStream::connect(&addr).map_err(|e| format!("connect failed: {e}"))?;
    busy.write_all(
        b"{\"id\":\"d0\",\"cmd\":\"sleep\",\"sleep_ms\":300}\n\
          {\"id\":\"d1\",\"cmd\":\"sleep\",\"sleep_ms\":300}\n",
    )
    .map_err(|e| format!("send failed: {e}"))?;
    busy.flush().map_err(|e| format!("flush failed: {e}"))?;
    thread::sleep(Duration::from_millis(50));
    let shutdown = send_batch(&addr, &[r#"{"id":"sd","cmd":"shutdown"}"#.to_owned()])?;
    if str_field(&shutdown[0], "status") != "ok" {
        return Err("shutdown not acknowledged".to_owned());
    }
    let mut reader = BufReader::new(busy);
    for _ in 0..2 {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        let resp = json::parse(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
        if str_field(&resp, "status") != "ok" {
            return Err(format!(
                "in-flight request {} not drained before shutdown",
                str_field(&resp, "id")
            ));
        }
    }
    daemon
        .join()
        .map_err(|_| "daemon thread panicked".to_owned())?;
    Ok(())
}

fn main() -> ExitCode {
    // Phase 1: single-shot references (the CLI-equivalent flow).
    let mut refs = Vec::new();
    for bench in TsayBenchmark::ALL {
        let key = DesignKey {
            benchmark: bench,
            stream_len: STREAM_LEN,
            seed: SEED,
        };
        match single_shot_reference(key) {
            Ok((_, routing)) => refs.push((bench, routing)),
            Err(e) => return fail(&format!("reference {} failed: {e}", bench.name())),
        }
    }
    println!("gcrd-smoke: {} single-shot references computed", refs.len());

    // Phase 2: concurrent mixed batch against a live daemon. The queue
    // must hold the whole burst (10 clients × ~11 requests) — the
    // backpressure path is phase 4's deliberately tiny daemon.
    let config = ServiceConfig {
        queue_capacity: 256,
        ..ServiceConfig::default()
    };
    let service = match Service::bind("127.0.0.1:0", config, Tracer::disabled()) {
        Ok(s) => s,
        Err(e) => return fail(&format!("bind failed: {e}")),
    };
    let addr = match service.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => return fail(&format!("local_addr failed: {e}")),
    };
    let daemon = thread::spawn(move || service.run());
    let results: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|idx| {
                let addr = addr.clone();
                let refs = &refs;
                scope.spawn(move || check_client(&addr, idx, refs))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client panicked".to_owned()))
            })
            .collect()
    });
    for (idx, result) in results.iter().enumerate() {
        if let Err(e) = result {
            return fail(&format!("client {idx}: {e}"));
        }
    }

    // Phase 3: the cache must have served real hits, then a clean
    // shutdown must drain and stop the daemon.
    let control = send_batch(
        &addr,
        &[
            r#"{"id":"st","cmd":"stats"}"#.to_owned(),
            r#"{"id":"sd","cmd":"shutdown"}"#.to_owned(),
        ],
    );
    match control {
        Ok(responses) => {
            let stats = &responses[0];
            let hits = stats
                .get("stats")
                .and_then(|s| s.get("hits"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let misses = stats
                .get("stats")
                .and_then(|s| s.get("misses"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if misses < 5.0 {
                return fail(&format!(
                    "expected ≥5 cache misses (one per design), saw {misses}"
                ));
            }
            if hits < 10.0 {
                return fail(&format!(
                    "expected ≥10 cache hits across clients, saw {hits}"
                ));
            }
            if str_field(&responses[1], "status") != "ok" {
                return fail("shutdown not acknowledged");
            }
            println!("gcrd-smoke: cache hits={hits} misses={misses}");
        }
        Err(e) => return fail(&format!("stats/shutdown failed: {e}")),
    }
    if daemon.join().is_err() {
        return fail("daemon thread panicked");
    }

    // Phase 4: backpressure + drain on a deliberately tiny daemon.
    if let Err(e) = backpressure_and_drain_check() {
        return fail(&e);
    }
    println!("gcrd-smoke: PASS (bit-identity, cache, backpressure, drain)");
    ExitCode::SUCCESS
}
