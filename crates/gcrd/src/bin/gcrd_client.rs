//! `gcrd-client` — batch driver and control client for a running
//! `gcrd` daemon.
//!
//! ```text
//! gcrd-client [--addr 127.0.0.1:4517] send requests.jsonl
//! gcrd-client [--addr ...] ping | stats | shutdown
//! ```
//!
//! `send` streams every non-empty line of the file to the daemon on one
//! connection, then reads exactly one response line per request and
//! prints them to stdout (completion order; correlate by `id`). The
//! exit code is nonzero if any response has `status` other than `ok` —
//! so a requests file doubles as a batch acceptance check.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use gcr_bench::json::{self, Json};

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:4517".to_owned();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--addr" {
            match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("gcrd-client: --addr needs a value");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            rest.push(arg);
        }
    }
    match rest.first().map(String::as_str) {
        Some("send") => {
            let Some(path) = rest.get(1) else {
                eprintln!("gcrd-client: send needs a .jsonl file");
                return ExitCode::FAILURE;
            };
            send_file(&addr, path)
        }
        Some(cmd @ ("ping" | "stats" | "shutdown")) => {
            one_shot(&addr, &format!("{{\"id\":\"cli\",\"cmd\":\"{cmd}\"}}"))
        }
        _ => {
            eprintln!("usage: gcrd-client [--addr HOST:PORT] send FILE | ping | stats | shutdown");
            ExitCode::FAILURE
        }
    }
}

fn connect(addr: &str) -> Result<TcpStream, ExitCode> {
    TcpStream::connect(addr).map_err(|e| {
        eprintln!("gcrd-client: connect {addr} failed: {e}");
        ExitCode::FAILURE
    })
}

fn send_file(addr: &str, path: &str) -> ExitCode {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gcrd-client: reading {path:?} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let requests: Vec<&str> = content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut stream = match connect(addr) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for line in &requests {
        if stream
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| stream.flush())
            .is_err()
        {
            eprintln!("gcrd-client: send failed");
            return ExitCode::FAILURE;
        }
    }
    let mut reader = BufReader::new(stream);
    let mut failures = 0_usize;
    for _ in 0..requests.len() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                eprintln!("gcrd-client: connection closed before all responses arrived");
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
        }
        let line = line.trim();
        println!("{line}");
        let ok = json::parse(line)
            .ok()
            .and_then(|j| j.get("status").and_then(Json::as_str).map(str::to_owned))
            .is_some_and(|s| s == "ok");
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("gcrd-client: {failures}/{} requests not ok", requests.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn one_shot(addr: &str, request: &str) -> ExitCode {
    let mut stream = match connect(addr) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if stream
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| stream.flush())
        .is_err()
    {
        eprintln!("gcrd-client: send failed");
        return ExitCode::FAILURE;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => {
            println!("{}", line.trim());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("gcrd-client: no response");
            ExitCode::FAILURE
        }
    }
}
