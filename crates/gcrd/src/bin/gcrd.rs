//! The `gcrd` daemon binary.
//!
//! ```text
//! gcrd [--addr 127.0.0.1:4517] [--workers N] [--queue N]
//!      [--threads N] [--design-cache N] [--routing-cache N]
//!      [--stream-len N] [--seed N] [--retry-after-ms N]
//!      [--trace PATH] [--debug-commands]
//! ```
//!
//! Binds the address, prints `listening on <addr>` to stdout (so a
//! supervisor or test harness can scrape the ephemeral port from
//! `--addr 127.0.0.1:0`), and serves until a `shutdown` request drains.
//! With `--trace PATH` a Chrome-trace timeline of every request span
//! and counter is written on exit; warnings (e.g. an unparsable
//! `GCR_THREADS` at startup) are echoed to stderr either way.
//!
//! The engine thread count is resolved once at startup — `--threads`
//! wins, then `GCR_THREADS`, then available parallelism — and pinned
//! for the daemon's lifetime.

use std::process::ExitCode;
use std::sync::Arc;

use gcr_trace::{ChromeTraceSink, EchoWarnSink, NullSink, Tracer};
use gcrd::{Service, ServiceConfig};

struct Cli {
    addr: String,
    config: ServiceConfig,
    trace_path: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:4517".to_owned(),
        config: ServiceConfig::default(),
        trace_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr")?,
            "--workers" => cli.config.workers = parse_num(&value("--workers")?)?,
            "--queue" => cli.config.queue_capacity = parse_num(&value("--queue")?)?,
            "--threads" => cli.config.threads = Some(parse_num(&value("--threads")?)?),
            "--design-cache" => cli.config.design_cache = parse_num(&value("--design-cache")?)?,
            "--routing-cache" => cli.config.routing_cache = parse_num(&value("--routing-cache")?)?,
            "--stream-len" => cli.config.default_stream_len = parse_num(&value("--stream-len")?)?,
            "--seed" => cli.config.default_seed = parse_num::<u64>(&value("--seed")?)?,
            "--retry-after-ms" => {
                cli.config.retry_after_ms = parse_num::<u64>(&value("--retry-after-ms")?)?;
            }
            "--trace" => cli.trace_path = Some(value("--trace")?),
            "--debug-commands" => cli.config.debug_commands = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("gcrd: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let chrome = cli
        .trace_path
        .as_ref()
        .map(|_| Arc::new(ChromeTraceSink::new()));
    let tracer = match &chrome {
        Some(sink) => Tracer::new(Arc::new(EchoWarnSink::new(Arc::clone(sink) as _))),
        None => Tracer::new(Arc::new(EchoWarnSink::new(Arc::new(NullSink)))),
    };
    let service = match Service::bind(cli.addr.as_str(), cli.config, tracer) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gcrd: bind {} failed: {e}", cli.addr);
            return ExitCode::FAILURE;
        }
    };
    match service.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("gcrd: local_addr failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    service.run();
    if let (Some(path), Some(sink)) = (cli.trace_path, chrome) {
        if let Err(e) = sink.write_to(&path) {
            eprintln!("gcrd: writing trace {path:?} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace written to {path}");
    }
    ExitCode::SUCCESS
}
