//! `gcrd` — the long-running gated-clock-routing daemon.
//!
//! Everything below `gcrd` in this workspace is batch: generate a
//! design, route it, evaluate it, exit. This crate turns that pipeline
//! into a service. A daemon process binds a TCP port and serves
//! `route` / `evaluate` / `verify` / `eco` requests for many designs
//! concurrently over a newline-delimited JSON protocol
//! ([`protocol`]), with:
//!
//! - **Keyed caches** ([`cache`]): parsed designs (generated benchmark
//!   and scanned activity tables) and completed routings are cached
//!   under the FNV-1a hash of their canonical key. A routing-cache hit is a
//!   pure replay — the response (decision-log digest included) is
//!   byte-identical to the miss that populated it, and bit-identical to
//!   a single-shot CLI run of the same design.
//! - **Per-worker reusable scratch** ([`engine::WorkerScratch`]): each
//!   worker owns the engine arenas, so a warm worker's flat merge loop
//!   performs zero heap allocations, daemon or no daemon.
//! - **Bounded queue with backpressure** ([`service`]): a full queue
//!   answers `rejected` with a `retry_after_ms` hint instead of
//!   blocking; requests may carry a queue deadline.
//! - **Incremental ECO**: `eco` requests against a cached design take
//!   the dirty-frontier path ([`gcr_core::route_gated_eco_with_params`])
//!   — the 21–39× shortcut over re-routing from scratch.
//! - **Graceful shutdown**: `shutdown` drains queued and in-flight work,
//!   answers everything, then stops.
//! - **Observability**: every request emits a `gcrd.request` complete
//!   span (with `gcrd.parse` / `gcrd.cache` / `gcrd.route` /
//!   `gcrd.respond` phases) and the `gcrd.{hits,misses,rejected,
//!   inflight,completed,panics}` counters through [`gcr_trace`].
//!
//! The engine thread count is resolved **once** at startup
//! ([`gcr_trace::threads::resolve`]) and pinned through explicit params
//! on every engine call — the daemon never re-reads `GCR_THREADS` per
//! request.
//!
//! Binaries: `gcrd` (the daemon), `gcrd-client` (batch driver: send a
//! `.jsonl` file, print responses), `gcrd-smoke` (the CI smoke gate:
//! concurrent clients, bit-identity against a single-shot reference,
//! backpressure, clean shutdown).

#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod service;

pub use engine::{DesignKey, WorkerScratch, COARSEN_LIMIT};
pub use protocol::{Command, Request, Response, MAX_LINE_BYTES};
pub use service::{Service, ServiceConfig};
