//! The daemon's newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order per
//! connection. Requests parse with the workspace's dependency-free JSON
//! parser ([`gcr_bench::json`]); responses are rendered by hand so the
//! daemon controls exactly what a byte-for-byte replay of a cached
//! routing looks like. Floats render with Rust's shortest-roundtrip
//! `Display`, so a client parsing with the same `json` module recovers
//! the exact `f64`.
//!
//! ## Requests
//!
//! ```json
//! {"id": "r1-cold", "cmd": "route", "benchmark": "r1",
//!  "stream_len": 2000, "seed": 1998, "log": true}
//! {"id": "e1", "cmd": "eco", "benchmark": "r1",
//!  "edits": [{"op": "move_sink", "index": 7, "x": 1200.0, "y": 800.0}]}
//! {"id": "s", "cmd": "shutdown"}
//! ```
//!
//! `cmd` is one of `route`, `evaluate`, `verify`, `eco`, `ping`,
//! `stats`, `shutdown` (plus `sleep`/`panic` when the service runs with
//! debug commands enabled — test hooks, never on by default).
//!
//! ## Responses
//!
//! Every response carries the request's `id` and a `status` of `ok`,
//! `error`, or `rejected`; `rejected` responses add `retry_after_ms`
//! (the backpressure hint). Routing responses add `cache` (`hit` /
//! `miss`), `merges`, `loop_allocs`, the Equation-3 capacitance split,
//! and a stable `log_hash` digest of the canonical decision log
//! (`decision_log` itself only when the request asked with
//! `"log": true` — it is O(sinks) text).

use gcr_bench::json::{self, Json};
use gcr_cts::EcoEdit;
use gcr_cts::Sink;
use gcr_geometry::Point;

/// Hard cap on one request line. Longer lines are answered with an
/// `error` response and skipped; the connection stays up.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What a request asks the daemon to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Route the design (cache-aware) and report the routing summary.
    Route,
    /// Route (cache-aware) and report the Equation-3 power evaluation.
    Evaluate,
    /// Route (cache-aware) and run the full verifier lint suite.
    Verify,
    /// Incrementally re-route a cached design under an edit batch.
    Eco,
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Counter snapshot; answered inline, never queued.
    Stats,
    /// Drain in-flight work, answer, then stop the daemon.
    Shutdown,
    /// Debug-only: hold a worker for `sleep_ms` (backpressure tests).
    Sleep,
    /// Debug-only: panic inside the worker (isolation tests).
    Panic,
}

impl Command {
    /// The wire name (`"route"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Command::Route => "route",
            Command::Evaluate => "evaluate",
            Command::Verify => "verify",
            Command::Eco => "eco",
            Command::Ping => "ping",
            Command::Stats => "stats",
            Command::Shutdown => "shutdown",
            Command::Sleep => "sleep",
            Command::Panic => "panic",
        }
    }

    /// Whether this command runs on the worker pool (and is therefore
    /// subject to queueing, backpressure, and deadlines) as opposed to
    /// being answered inline on the connection thread.
    #[must_use]
    pub fn is_work(self) -> bool {
        !matches!(self, Command::Ping | Command::Stats | Command::Shutdown)
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// What to do.
    pub cmd: Command,
    /// Benchmark name (`"r1"` … `"r8"`); required for work commands.
    pub benchmark: Option<String>,
    /// Activity-stream length override (`None` = service default).
    pub stream_len: Option<usize>,
    /// Workload seed override (`None` = service default).
    pub seed: Option<u64>,
    /// Bypass the routing-cache *read* (still populates it): forces a
    /// recompute, which is how the warm-scratch zero-allocation path is
    /// exercised.
    pub force: bool,
    /// Include the canonical decision log text in the response.
    pub want_log: bool,
    /// Per-request deadline in milliseconds, measured from enqueue; an
    /// expired request is answered with an error, not silently dropped.
    pub deadline_ms: Option<u64>,
    /// Debug `sleep` duration.
    pub sleep_ms: u64,
    /// ECO edit batch (only meaningful for `cmd: "eco"`).
    pub edits: Vec<EcoEdit>,
}

fn field_str(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let f = v
                .as_f64()
                .ok_or_else(|| format!("{key} must be a number"))?;
            if f < 0.0 || f.fract() != 0.0 {
                return Err(format!("{key} must be a non-negative integer"));
            }
            #[expect(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                reason = "checked non-negative integral above"
            )]
            Ok(Some(f as u64))
        }
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn field_bool(obj: &Json, key: &str) -> bool {
    obj.get(key).and_then(Json::as_bool).unwrap_or(false)
}

fn parse_edit(e: &Json) -> Result<EcoEdit, String> {
    let op = field_str(e, "op").ok_or("edit missing \"op\"")?;
    match op.as_str() {
        "add_sink" => {
            let x = field_f64(e, "x")?;
            let y = field_f64(e, "y")?;
            let load = field_f64(e, "load")?;
            let module = field_u64(e, "module")?.ok_or("add_sink missing \"module\"")?;
            #[expect(clippy::cast_possible_truncation, reason = "module counts fit usize")]
            Ok(EcoEdit::AddSink {
                sink: Sink::new(Point::new(x, y), load),
                module: module as usize,
            })
        }
        "move_sink" => {
            let index = field_u64(e, "index")?.ok_or("move_sink missing \"index\"")?;
            let x = field_f64(e, "x")?;
            let y = field_f64(e, "y")?;
            #[expect(clippy::cast_possible_truncation, reason = "sink counts fit usize")]
            Ok(EcoEdit::MoveSink {
                index: index as usize,
                to: Point::new(x, y),
            })
        }
        "remove_sink" => {
            let index = field_u64(e, "index")?.ok_or("remove_sink missing \"index\"")?;
            #[expect(clippy::cast_possible_truncation, reason = "sink counts fit usize")]
            Ok(EcoEdit::RemoveSink {
                index: index as usize,
            })
        }
        "swap_activity" => {
            let module = field_u64(e, "module")?.ok_or("swap_activity missing \"module\"")?;
            #[expect(clippy::cast_possible_truncation, reason = "module counts fit usize")]
            Ok(EcoEdit::SwapActivity {
                module: module as usize,
            })
        }
        other => Err(format!("unknown edit op {other:?}")),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// unknown `cmd`, or ill-typed fields. The caller wraps the message in
/// an `error` response; a parse failure never tears down the
/// connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let id = field_str(&obj, "id").unwrap_or_default();
    let cmd_name = field_str(&obj, "cmd").ok_or("missing \"cmd\"")?;
    let cmd = match cmd_name.as_str() {
        "route" => Command::Route,
        "evaluate" => Command::Evaluate,
        "verify" => Command::Verify,
        "eco" => Command::Eco,
        "ping" => Command::Ping,
        "stats" => Command::Stats,
        "shutdown" => Command::Shutdown,
        "sleep" => Command::Sleep,
        "panic" => Command::Panic,
        other => return Err(format!("unknown cmd {other:?}")),
    };
    let mut edits = Vec::new();
    if let Some(arr) = obj.get("edits").and_then(Json::as_array) {
        for e in arr {
            edits.push(parse_edit(e)?);
        }
    }
    #[expect(clippy::cast_possible_truncation, reason = "stream lengths fit usize")]
    Ok(Request {
        id,
        cmd,
        benchmark: field_str(&obj, "benchmark"),
        stream_len: field_u64(&obj, "stream_len")?.map(|v| v as usize),
        seed: field_u64(&obj, "seed")?,
        force: field_bool(&obj, "force"),
        want_log: field_bool(&obj, "log"),
        deadline_ms: field_u64(&obj, "deadline_ms")?,
        sleep_ms: field_u64(&obj, "sleep_ms")?.unwrap_or(0),
        edits,
    })
}

/// Escapes `s` for embedding in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A snapshot of the service counters for a `stats` response.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    /// Routing-cache hits served.
    pub hits: u64,
    /// Routing-cache misses (full routes computed).
    pub misses: u64,
    /// Requests rejected by backpressure or drain.
    pub rejected: u64,
    /// Work requests fully processed (including error answers).
    pub completed: u64,
    /// Work requests accepted but not yet answered.
    pub inflight: u64,
    /// Worker panics caught and converted to error responses.
    pub panics: u64,
    /// Current queue depth.
    pub queue_depth: u64,
}

/// One response line under construction. `None` fields are omitted from
/// the rendered JSON.
#[derive(Clone, Debug, Default)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    /// `"ok"`, `"error"`, or `"rejected"`.
    pub status: &'static str,
    /// Echo of the command name.
    pub cmd: Option<&'static str>,
    /// Error message (status `error`).
    pub error: Option<String>,
    /// Backpressure hint (status `rejected`).
    pub retry_after_ms: Option<u64>,
    /// `"hit"` or `"miss"` for cache-aware commands.
    pub cache: Option<&'static str>,
    /// Benchmark the response describes.
    pub benchmark: Option<String>,
    /// Sinks in the routed design.
    pub sinks: Option<u64>,
    /// Committed merges.
    pub merges: Option<u64>,
    /// Merge-loop allocations of the run that produced the routing.
    pub loop_allocs: Option<u64>,
    /// FNV-1a digest of the canonical decision log, rendered in hex.
    pub log_hash: Option<u64>,
    /// Canonical decision log text (on request only).
    pub decision_log: Option<String>,
    /// Equation-3 `W = W(T) + W(S)`.
    pub total_switched_cap: Option<f64>,
    /// Equation-3 `W(T)`.
    pub clock_switched_cap: Option<f64>,
    /// Equation-3 `W(S)`.
    pub control_switched_cap: Option<f64>,
    /// Total area (verify/evaluate).
    pub total_area: Option<f64>,
    /// Device count.
    pub num_devices: Option<u64>,
    /// Verifier error-severity diagnostics.
    pub verify_errors: Option<u64>,
    /// Verifier warn-severity diagnostics.
    pub verify_warnings: Option<u64>,
    /// ECO: whether the batch was a pure replay.
    pub pure_replay: Option<bool>,
    /// ECO: merges replayed without search.
    pub replayed: Option<u64>,
    /// ECO: merges the splice search performed.
    pub spliced: Option<u64>,
    /// ECO: dirty-node count handed to the scoped verifier.
    pub dirty_nodes: Option<u64>,
    /// Stats snapshot (`stats` responses).
    pub stats: Option<StatsSnapshot>,
    /// Work requests completed over the daemon lifetime (`shutdown`).
    pub drained: Option<u64>,
}

impl Response {
    /// An `ok` response for `id`.
    #[must_use]
    pub fn ok(id: &str) -> Self {
        Response {
            id: id.to_owned(),
            status: "ok",
            ..Response::default()
        }
    }

    /// An `error` response for `id`.
    #[must_use]
    pub fn error(id: &str, message: impl Into<String>) -> Self {
        Response {
            id: id.to_owned(),
            status: "error",
            error: Some(message.into()),
            ..Response::default()
        }
    }

    /// A backpressure `rejected` response with a retry hint.
    #[must_use]
    pub fn rejected(id: &str, reason: impl Into<String>, retry_after_ms: u64) -> Self {
        Response {
            id: id.to_owned(),
            status: "rejected",
            error: Some(reason.into()),
            retry_after_ms: Some(retry_after_ms),
            ..Response::default()
        }
    }

    /// Renders the response as one JSON line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        push_str_field(&mut out, "id", &self.id);
        out.push_str(&format!(",\"status\":\"{}\"", self.status));
        if let Some(c) = self.cmd {
            out.push(',');
            push_str_field(&mut out, "cmd", c);
        }
        if let Some(e) = &self.error {
            out.push(',');
            push_str_field(&mut out, "error", e);
        }
        push_u64(&mut out, "retry_after_ms", self.retry_after_ms);
        if let Some(c) = self.cache {
            out.push(',');
            push_str_field(&mut out, "cache", c);
        }
        if let Some(b) = &self.benchmark {
            out.push(',');
            push_str_field(&mut out, "benchmark", b);
        }
        push_u64(&mut out, "sinks", self.sinks);
        push_u64(&mut out, "merges", self.merges);
        push_u64(&mut out, "loop_allocs", self.loop_allocs);
        if let Some(h) = self.log_hash {
            out.push(',');
            push_str_field(&mut out, "log_hash", &format!("{h:016x}"));
        }
        if let Some(l) = &self.decision_log {
            out.push(',');
            push_str_field(&mut out, "decision_log", l);
        }
        push_f64(&mut out, "total_switched_cap", self.total_switched_cap);
        push_f64(&mut out, "clock_switched_cap", self.clock_switched_cap);
        push_f64(&mut out, "control_switched_cap", self.control_switched_cap);
        push_f64(&mut out, "total_area", self.total_area);
        push_u64(&mut out, "num_devices", self.num_devices);
        push_u64(&mut out, "verify_errors", self.verify_errors);
        push_u64(&mut out, "verify_warnings", self.verify_warnings);
        if let Some(p) = self.pure_replay {
            out.push_str(&format!(",\"pure_replay\":{p}"));
        }
        push_u64(&mut out, "replayed", self.replayed);
        push_u64(&mut out, "spliced", self.spliced);
        push_u64(&mut out, "dirty_nodes", self.dirty_nodes);
        if let Some(s) = self.stats {
            out.push_str(&format!(
                ",\"stats\":{{\"hits\":{},\"misses\":{},\"rejected\":{},\
                 \"completed\":{},\"inflight\":{},\"panics\":{},\"queue_depth\":{}}}",
                s.hits, s.misses, s.rejected, s.completed, s.inflight, s.panics, s.queue_depth
            ));
        }
        push_u64(&mut out, "drained", self.drained);
        out.push('}');
        out
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("\"{key}\":\"{}\"", escape_json(value)));
}

fn push_u64(out: &mut String, key: &str, value: Option<u64>) {
    if let Some(v) = value {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
}

fn push_f64(out: &mut String, key: &str, value: Option<f64>) {
    if let Some(v) = value {
        if v.is_finite() {
            // Rust's shortest-roundtrip Display: parses back bit-exact.
            out.push_str(&format!(",\"{key}\":{v}"));
        } else {
            out.push_str(&format!(",\"{key}\":null"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_route_request() {
        let r = parse_request(
            r#"{"id":"a1","cmd":"route","benchmark":"r1","stream_len":500,"seed":7,"log":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, "a1");
        assert_eq!(r.cmd, Command::Route);
        assert_eq!(r.benchmark.as_deref(), Some("r1"));
        assert_eq!(r.stream_len, Some(500));
        assert_eq!(r.seed, Some(7));
        assert!(r.want_log);
        assert!(!r.force);
        assert!(r.cmd.is_work());
    }

    #[test]
    fn parses_eco_edits() {
        let r = parse_request(
            r#"{"id":"e","cmd":"eco","benchmark":"r1","edits":[
                {"op":"move_sink","index":3,"x":10.5,"y":20.0},
                {"op":"remove_sink","index":1},
                {"op":"add_sink","x":1.0,"y":2.0,"load":0.05,"module":4},
                {"op":"swap_activity","module":2}]}"#,
        )
        .unwrap();
        assert_eq!(r.edits.len(), 4);
        assert!(matches!(r.edits[0], EcoEdit::MoveSink { index: 3, .. }));
        assert!(matches!(r.edits[1], EcoEdit::RemoveSink { index: 1 }));
        assert!(matches!(r.edits[2], EcoEdit::AddSink { module: 4, .. }));
        assert!(matches!(r.edits[3], EcoEdit::SwapActivity { module: 2 }));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":"x"}"#).is_err());
        assert!(parse_request(r#"{"id":"x","cmd":"fly"}"#).is_err());
        assert!(parse_request(r#"{"id":"x","cmd":"route","stream_len":-5}"#).is_err());
        assert!(parse_request(r#"{"id":"x","cmd":"eco","edits":[{"op":"warp"}]}"#).is_err());
    }

    #[test]
    fn response_renders_and_parses_back() {
        let mut resp = Response::ok("a1");
        resp.cmd = Some("route");
        resp.cache = Some("hit");
        resp.merges = Some(266);
        resp.loop_allocs = Some(0);
        resp.log_hash = Some(0xdead_beef);
        resp.decision_log = Some("0 1 -> 267\n2 3 -> 268".to_owned());
        resp.total_switched_cap = Some(123.456_789_012_345_67);
        let line = resp.render();
        let parsed = gcr_bench::json::parse(&line).unwrap();
        assert_eq!(parsed.get("id").and_then(Json::as_str), Some("a1"));
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(parsed.get("merges").and_then(Json::as_f64), Some(266.0));
        assert_eq!(
            parsed.get("decision_log").and_then(Json::as_str),
            Some("0 1 -> 267\n2 3 -> 268")
        );
        // Shortest-roundtrip float survives the wire bit-exactly.
        assert_eq!(
            parsed.get("total_switched_cap").and_then(Json::as_f64),
            Some(123.456_789_012_345_67)
        );
        assert_eq!(
            parsed.get("log_hash").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
    }

    #[test]
    fn rejected_response_carries_retry_hint() {
        let line = Response::rejected("b", "queue full", 150).render();
        let parsed = gcr_bench::json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            parsed.get("retry_after_ms").and_then(Json::as_f64),
            Some(150.0)
        );
    }
}
