//! Integration tests of the `gcrd` daemon over real TCP: concurrent
//! clients with bit-identity against single-shot CLI-equivalent runs,
//! malformed/oversized request survival, backpressure rejection, queue
//! deadlines, worker-panic isolation, and graceful-shutdown draining.
//!
//! Each test binds its own in-process service on an ephemeral port.
//! Designs stay small (r1 at short streams) — these run in debug mode
//! under `cargo test`; the full r1–r5 release-mode sweep is the
//! `gcrd-smoke` binary.

// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use gcr_bench::json::{self, Json};
use gcr_trace::Tracer;
use gcr_workloads::TsayBenchmark;
use gcrd::engine::single_shot_reference;
use gcrd::{DesignKey, Service, ServiceConfig};

const STREAM_LEN: usize = 400;

fn start(config: ServiceConfig) -> (String, JoinHandle<()>) {
    let service = Service::bind("127.0.0.1:0", config, Tracer::disabled()).unwrap();
    let addr = service.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || service.run());
    (addr, handle)
}

/// Sends `requests` on one connection, returns one parsed response per
/// request (completion order).
fn send_batch(addr: &str, requests: &[String]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).unwrap();
    for r in requests {
        stream.write_all(format!("{r}\n").as_bytes()).unwrap();
    }
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    (0..requests.len())
        .map(|_| {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "connection closed early"
            );
            json::parse(line.trim()).unwrap()
        })
        .collect()
}

fn status(j: &Json) -> &str {
    j.get("status").and_then(Json::as_str).unwrap_or("")
}

fn str_field<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("")
}

fn shutdown(addr: &str) {
    let resp = send_batch(addr, &[r#"{"id":"sd","cmd":"shutdown"}"#.to_owned()]);
    assert_eq!(status(&resp[0]), "ok");
}

fn r1_key(seed: u64) -> DesignKey {
    DesignKey {
        benchmark: TsayBenchmark::R1,
        stream_len: STREAM_LEN,
        seed,
    }
}

/// Eight concurrent clients route two distinct designs; every response
/// must be `ok` and every decision log bit-identical to the
/// single-shot, cold-scratch, single-threaded reference — cache hits
/// and misses alike.
#[test]
fn concurrent_clients_get_bit_identical_routings() {
    let seeds = [1_998_u64, 7_u64];
    let refs: Vec<_> = seeds
        .iter()
        .map(|&seed| single_shot_reference(r1_key(seed)).unwrap().1)
        .collect();
    let (addr, daemon) = start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let results: Vec<Vec<Json>> = thread::scope(|scope| {
        (0..8)
            .map(|idx| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let requests: Vec<String> = seeds
                        .iter()
                        .map(|&seed| {
                            format!(
                                "{{\"id\":\"c{idx}-s{seed}\",\"cmd\":\"route\",\
                                 \"benchmark\":\"r1\",\"stream_len\":{STREAM_LEN},\
                                 \"seed\":{seed},\"log\":true}}"
                            )
                        })
                        .collect();
                    send_batch(&addr, &requests)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for responses in &results {
        for resp in responses {
            assert_eq!(status(resp), "ok", "error: {}", str_field(resp, "error"));
            let id = str_field(resp, "id");
            let seed: u64 = id.rsplit("-s").next().unwrap().parse().unwrap();
            let reference = &refs[seeds.iter().position(|&s| s == seed).unwrap()];
            assert_eq!(
                str_field(resp, "decision_log"),
                reference.log,
                "{id}: decision log differs from single-shot reference"
            );
            assert_eq!(
                str_field(resp, "log_hash"),
                format!("{:016x}", reference.log_hash)
            );
            // Shortest-roundtrip floats make this a bit-exact check.
            assert_eq!(
                resp.get("total_switched_cap").and_then(Json::as_f64),
                Some(reference.report.total_switched_cap)
            );
        }
    }
    // 16 route requests over 2 designs: the cache must have served the
    // overwhelming majority as pure replays.
    let stats = send_batch(&addr, &[r#"{"id":"st","cmd":"stats"}"#.to_owned()]);
    let hits = stats[0]
        .get("stats")
        .and_then(|s| s.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(hits >= 8.0, "expected ≥8 cache hits, saw {hits}");
    shutdown(&addr);
    daemon.join().unwrap();
}

/// Malformed JSON, oversized lines, unknown commands/benchmarks, and
/// invalid ECO batches all get `error` responses — and the daemon keeps
/// serving the same connection afterwards.
#[test]
fn malformed_requests_get_errors_and_daemon_survives() {
    let (addr, daemon) = start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let oversized = format!(
        "{{\"id\":\"big\",\"cmd\":\"ping\",\"pad\":\"{}\"}}",
        "x".repeat(gcrd::MAX_LINE_BYTES)
    );
    let requests = vec![
        "this is not json".to_owned(),
        oversized,
        r#"{"id":"k1","cmd":"levitate"}"#.to_owned(),
        r#"{"id":"k2","cmd":"route"}"#.to_owned(),
        r#"{"id":"k3","cmd":"route","benchmark":"r99"}"#.to_owned(),
        format!(
            "{{\"id\":\"k4\",\"cmd\":\"eco\",\"benchmark\":\"r1\",\"stream_len\":{STREAM_LEN},\
             \"edits\":[{{\"op\":\"remove_sink\",\"index\":99999}}]}}"
        ),
        r#"{"id":"alive","cmd":"ping"}"#.to_owned(),
    ];
    let responses = send_batch(&addr, &requests);
    // Six failures; the ping must still be answered `ok` on the same
    // connection.
    let ping = responses
        .iter()
        .find(|r| str_field(r, "id") == "alive")
        .expect("ping answered");
    assert_eq!(status(ping), "ok");
    for resp in &responses {
        if str_field(resp, "id") == "alive" {
            continue;
        }
        assert_eq!(status(resp), "error", "line: {resp:?}");
        assert!(!str_field(resp, "error").is_empty());
    }
    shutdown(&addr);
    daemon.join().unwrap();
}

/// A one-slot queue behind one busy worker rejects overflow immediately
/// with `status: "rejected"` and a `retry_after_ms` hint.
#[test]
fn backpressure_rejects_with_retry_hint() {
    let (addr, daemon) = start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 150,
        debug_commands: true,
        ..ServiceConfig::default()
    });
    let requests: Vec<String> = (0..5)
        .map(|i| format!("{{\"id\":\"bp{i}\",\"cmd\":\"sleep\",\"sleep_ms\":200}}"))
        .collect();
    let responses = send_batch(&addr, &requests);
    let rejected: Vec<_> = responses
        .iter()
        .filter(|r| status(r) == "rejected")
        .collect();
    assert!(
        !rejected.is_empty(),
        "no rejection at workers=1, queue=1 under 5 instant requests"
    );
    for r in &rejected {
        assert_eq!(
            r.get("retry_after_ms").and_then(Json::as_f64),
            Some(150.0),
            "rejection must carry the configured retry hint"
        );
    }
    assert!(responses.iter().any(|r| status(r) == "ok"));
    shutdown(&addr);
    daemon.join().unwrap();
}

/// A request whose `deadline_ms` elapses while queued is answered with
/// a deadline error instead of being served stale.
#[test]
fn queue_deadline_expires_into_error() {
    let (addr, daemon) = start(ServiceConfig {
        workers: 1,
        debug_commands: true,
        ..ServiceConfig::default()
    });
    let requests = vec![
        r#"{"id":"busy","cmd":"sleep","sleep_ms":250}"#.to_owned(),
        r#"{"id":"late","cmd":"sleep","sleep_ms":0,"deadline_ms":50}"#.to_owned(),
    ];
    let responses = send_batch(&addr, &requests);
    let late = responses
        .iter()
        .find(|r| str_field(r, "id") == "late")
        .unwrap();
    assert_eq!(status(late), "error");
    assert!(str_field(late, "error").contains("deadline"));
    shutdown(&addr);
    daemon.join().unwrap();
}

/// A panicking request is answered with an error, counted, and the
/// worker keeps serving with fresh scratch — one poisoned request never
/// wedges the daemon.
#[test]
fn worker_panic_is_isolated() {
    let (addr, daemon) = start(ServiceConfig {
        workers: 1,
        debug_commands: true,
        ..ServiceConfig::default()
    });
    let responses = send_batch(
        &addr,
        &[
            r#"{"id":"boom","cmd":"panic"}"#.to_owned(),
            r#"{"id":"after","cmd":"sleep","sleep_ms":0}"#.to_owned(),
        ],
    );
    let boom = responses
        .iter()
        .find(|r| str_field(r, "id") == "boom")
        .unwrap();
    assert_eq!(status(boom), "error");
    assert!(str_field(boom, "error").contains("panicked"));
    let after = responses
        .iter()
        .find(|r| str_field(r, "id") == "after")
        .unwrap();
    assert_eq!(status(after), "ok", "worker must survive the panic");
    // Both work responses are in hand, so the counter is settled.
    let stats = send_batch(&addr, &[r#"{"id":"st","cmd":"stats"}"#.to_owned()]);
    assert_eq!(
        stats[0]
            .get("stats")
            .and_then(|s| s.get("panics"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    shutdown(&addr);
    daemon.join().unwrap();
}

/// `shutdown` drains: queued and in-flight work is answered `ok` before
/// the daemon stops, new work is rejected as draining, and `run()`
/// returns.
#[test]
fn graceful_shutdown_drains_inflight_work() {
    let (addr, daemon) = start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        debug_commands: true,
        ..ServiceConfig::default()
    });
    let mut busy = TcpStream::connect(&addr).unwrap();
    busy.write_all(
        b"{\"id\":\"d0\",\"cmd\":\"sleep\",\"sleep_ms\":200}\n\
          {\"id\":\"d1\",\"cmd\":\"sleep\",\"sleep_ms\":200}\n",
    )
    .unwrap();
    busy.flush().unwrap();
    thread::sleep(Duration::from_millis(50));
    let resp = send_batch(&addr, &[r#"{"id":"sd","cmd":"shutdown"}"#.to_owned()]);
    assert_eq!(status(&resp[0]), "ok");
    assert!(resp[0].get("drained").and_then(Json::as_f64).is_some());
    // Both in-flight sleeps were answered before shutdown returned.
    let mut reader = BufReader::new(busy);
    for _ in 0..2 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let parsed = json::parse(line.trim()).unwrap();
        assert_eq!(status(&parsed), "ok");
    }
    daemon.join().unwrap();
}
