//! The daemon's warm-loop allocation gate: once a worker's reusable
//! scratch is warm, a forced re-route's merge loop performs **zero**
//! heap allocations — decision logging included — because the daemon
//! copies the decision log out of the scratch instead of stealing its
//! buffer.
//!
//! A counting global allocator feeds `gcr_cts::set_alloc_probe`; this
//! file holds exactly one `#[test]` because the counter is
//! process-global and any parallel test would pollute the window. The
//! service runs one worker with the engine pinned single-threaded, and
//! the client waits for each response before sending the next request,
//! so nothing else allocates during the measured merge loops.

// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The counting allocator is the one sanctioned unsafe exception (see
// the CI forbid-unsafe gate: crate roots forbid, test binaries may
// count allocations).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use gcr_bench::json::{self, Json};
use gcr_trace::Tracer;
use gcrd::{Service, ServiceConfig};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_probe() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

#[test]
fn warm_cache_bypass_route_has_zero_loop_allocs() {
    gcr_cts::set_alloc_probe(alloc_probe);
    let service = Service::bind(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            threads: Some(1),
            ..ServiceConfig::default()
        },
        Tracer::disabled(),
    )
    .unwrap();
    let addr = service.local_addr().unwrap().to_string();
    let daemon = thread::spawn(move || service.run());

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut loop_allocs = Vec::new();
    for i in 0..3 {
        // `force` bypasses the routing-cache read: every request runs
        // the full merge loop through the worker's (warming) scratch.
        let request = format!(
            "{{\"id\":\"za{i}\",\"cmd\":\"route\",\"benchmark\":\"r1\",\
             \"stream_len\":400,\"log\":true,\"force\":true}}\n"
        );
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let resp = json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        loop_allocs.push(
            resp.get("loop_allocs")
                .and_then(Json::as_f64)
                .expect("route response carries loop_allocs"),
        );
    }
    assert_eq!(
        loop_allocs[2], 0.0,
        "third forced route on a warm worker scratch must have a \
         zero-allocation merge loop (got {loop_allocs:?})"
    );

    stream
        .write_all(b"{\"id\":\"sd\",\"cmd\":\"shutdown\"}\n")
        .unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    daemon.join().unwrap();
}
