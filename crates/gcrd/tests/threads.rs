//! Regression test for the shared worker-thread resolver
//! (`gcr_trace::threads`): the greedy merge engine and the streaming
//! activity scanner used to carry near-identical private copies of
//! `resolve_threads`, and their warning wording had every opportunity
//! to drift. Both now delegate to the shared resolver; this test drives
//! an unparsable `GCR_THREADS` through **both engines end to end** and
//! asserts they emit the same warn event (same message, their own
//! category names) and both pin to a single worker.
//!
//! One `#[test]` only: the test mutates the process environment, which
//! must not race another test in this binary.

// Test code: unwrap/expect on infallible setup is idiomatic here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gcr_activity::{scan_source_traced, CpuModel, ScanParams, ScanScratch, SliceSource};
use gcr_cts::{
    run_greedy_with_scratch_traced, GreedyParams, GreedyScratch, NearestNeighborObjective, Sink,
};
use gcr_geometry::Point;
use gcr_rctree::Technology;
use gcr_trace::{MemorySink, Tracer};

#[test]
fn greedy_and_activity_emit_identical_threads_warning() {
    std::env::set_var("GCR_THREADS", "not-a-number");

    // Greedy engine path: params.threads = None forces the env read.
    let greedy_sink = Arc::new(MemorySink::new());
    let greedy_tracer = Tracer::new(greedy_sink.clone());
    let tech = Technology::default();
    let sinks: Vec<Sink> = (0..6)
        .map(|i| {
            let offset = f64::from(i) * 100.0;
            Sink::new(Point::new(offset, 50.0 + offset), 0.03)
        })
        .collect();
    let mut objective = NearestNeighborObjective::new(&tech, &sinks, None);
    let params = GreedyParams {
        threads: None,
        log_decisions: false,
    };
    let mut scratch = GreedyScratch::new();
    run_greedy_with_scratch_traced(
        sinks.len(),
        &mut objective,
        &params,
        &mut scratch,
        &greedy_tracer,
    )
    .unwrap();

    // Activity scanner path: same env, same `threads: None`.
    let activity_sink = Arc::new(MemorySink::new());
    let activity_tracer = Tracer::new(activity_sink.clone());
    let model = CpuModel::builder(6)
        .instructions(4)
        .usage_fraction(0.5)
        .seed(7)
        .build()
        .unwrap();
    let stream = model.generate_stream(64);
    let mut source = SliceSource::new(&stream);
    let scan_params = ScanParams {
        threads: None,
        ..ScanParams::default()
    };
    let mut scan_scratch = ScanScratch::new();
    scan_source_traced(
        model.rtl(),
        &mut source,
        &scan_params,
        &mut scan_scratch,
        &activity_tracer,
    )
    .unwrap();

    std::env::remove_var("GCR_THREADS");

    let greedy_warnings = greedy_sink.warnings("greedy.threads");
    let activity_warnings = activity_sink.warnings("activity.threads");
    assert_eq!(
        greedy_warnings.len(),
        1,
        "greedy engine must warn exactly once on unparsable GCR_THREADS"
    );
    assert_eq!(
        activity_warnings.len(),
        1,
        "activity scanner must warn exactly once on unparsable GCR_THREADS"
    );
    // The regression: both engines route through the shared resolver,
    // so the message text is identical — only the category differs.
    assert_eq!(greedy_warnings[0], activity_warnings[0]);
    assert!(greedy_warnings[0].contains("\"not-a-number\""));
    assert!(greedy_warnings[0].contains("single-threaded"));
}
