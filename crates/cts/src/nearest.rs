use gcr_geometry::Point;
use gcr_rctree::{Device, Technology};

use crate::{
    embed, run_greedy, ClockTree, CtsError, DeviceAssignment, MergeArena, MergeObjective, Sink,
    Topology,
};

/// A uniform bucket grid over a fixed point set, in the spirit of
/// Edahiro's nearest-neighbor decomposition \[3\]: cells of side
/// [`cell_size`](Self::cell_size) hold point indices and are queried in
/// concentric Chebyshev *rings* of cells around a query point.
///
/// The geometric guarantee the pruned greedy engine builds on: once rings
/// `0..=r` of a query point have been visited, every unvisited point sits
/// in a cell whose Chebyshev cell-distance is at least `r + 1`, so some
/// coordinate differs by more than `r` whole cells — its Manhattan
/// distance from the query point exceeds `r * cell_size()`.
/// Cell membership is stored in CSR form — one flat `items` array of
/// point indices plus per-cell `starts` offsets — so a ring sweep is a
/// series of contiguous `memcpy`-style slice reads instead of a walk over
/// per-cell heap vectors.
#[derive(Clone, Debug)]
pub struct BucketGrid {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    /// `starts[c]..starts[c + 1]` indexes `items` for cell `c = cy*nx+cx`.
    starts: Vec<u32>,
    /// Point indices, grouped by cell, ascending within each cell.
    items: Vec<u32>,
    /// One occupancy bit per cell (row-major, `words_per_row` words per
    /// row), set while the cell still holds at least one live point.
    /// Ring sweeps walk set bits instead of visiting every perimeter
    /// cell, so sweeps over dead regions cost a few word reads.
    occupied: Vec<u64>,
    words_per_row: usize,
    /// Live points remaining per cell ([`Self::mark_dead`] decrements).
    cell_live: Vec<u32>,
    /// Cell index of each point, for O(1) removal.
    point_cell: Vec<u32>,
}

/// Smallest admissible cell side. A *tiny but nonzero* extent (think a
/// coarsened region whose sinks sit within a few nanometers, or subnormal
/// coordinate spreads) would otherwise produce `cell = extent / √n`
/// rounding to `0.0` — and a zero cell turns [`BucketGrid::dimension`]
/// into `extent / 0 = inf`, saturating the cell counts. Any positive cell
/// keeps the ring distance guarantee valid (members of ring `r` are
/// farther than `(r − 1) · cell`), so clamping only trades pruning
/// sharpness, never correctness.
const MIN_CELL: f64 = 1e-9;

impl BucketGrid {
    /// Builds a grid over `points`, sized at roughly one point per cell
    /// (`cell ≈ extent / √n`, clamped below by a positive minimum).
    /// Degenerate inputs (coincident points, non-finite coordinates)
    /// collapse to a single bucket, which keeps every query correct —
    /// just unpruned.
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty.
    #[must_use]
    pub fn build(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "bucket grid needs at least one point");
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min = Point::new(min.x.min(p.x), min.y.min(p.y));
            max = Point::new(max.x.max(p.x), max.y.max(p.y));
        }
        let (w, h) = (max.x - min.x, max.y - min.y);
        let extent = w.max(h);
        let cell = if extent.is_finite() && extent > 0.0 {
            (extent / (points.len() as f64).sqrt()).max(MIN_CELL)
        } else {
            1.0
        };
        let nx = Self::dimension(w, cell);
        let ny = Self::dimension(h, cell);
        let origin = if min.x.is_finite() && min.y.is_finite() {
            min
        } else {
            Point::ORIGIN
        };
        let words_per_row = nx.div_ceil(64);
        let mut grid = Self {
            origin,
            cell,
            nx,
            ny,
            starts: vec![0; nx * ny + 1],
            items: vec![0; points.len()],
            occupied: vec![0; words_per_row * ny],
            words_per_row,
            cell_live: vec![0; nx * ny],
            point_cell: vec![0; points.len()],
        };
        // Counting sort into CSR: per-cell counts, prefix sums, then a
        // second pass placing each point. Scanning `points` in order both
        // times keeps indices ascending within every cell — the iteration
        // order the deterministic ring sweeps rely on.
        for &p in points {
            let (cx, cy) = grid.cell_of(p);
            grid.starts[cy * nx + cx + 1] += 1;
        }
        for c in 0..nx * ny {
            grid.starts[c + 1] += grid.starts[c];
        }
        let mut cursor: Vec<u32> = grid.starts[..nx * ny].to_vec();
        for (i, &p) in points.iter().enumerate() {
            let (cx, cy) = grid.cell_of(p);
            let c = cy * nx + cx;
            let slot = &mut cursor[c];
            grid.items[*slot as usize] = i as u32;
            *slot += 1;
            grid.point_cell[i] = c as u32;
            grid.cell_live[c] += 1;
            grid.occupied[cy * words_per_row + cx / 64] |= 1_u64 << (cx % 64);
        }
        grid
    }

    /// Records that `point` is no longer live. The point stays in the CSR
    /// arrays (callers filter dead indices themselves); what changes is
    /// that a cell whose last live point dies stops being visited by
    /// [`Self::ring_members`], so sweeps shrink as the live set does.
    pub fn mark_dead(&mut self, point: usize) {
        let c = self.point_cell[point] as usize;
        self.cell_live[c] -= 1;
        if self.cell_live[c] == 0 {
            let (cx, cy) = (c % self.nx, c / self.nx);
            self.occupied[cy * self.words_per_row + cx / 64] &= !(1_u64 << (cx % 64));
        }
    }

    /// Number of cells along one axis of extent `extent`.
    fn dimension(extent: f64, cell: f64) -> usize {
        if extent.is_finite() && extent > 0.0 {
            (extent / cell).floor() as usize + 1
        } else {
            1
        }
    }

    /// The side length of one cell (layout units).
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The cell containing `p`, clamped into the grid.
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let clamp = |v: f64, n: usize| -> usize {
            if v.is_finite() && v > 0.0 {
                (v as usize).min(n - 1)
            } else {
                0
            }
        };
        (
            clamp((p.x - self.origin.x) / self.cell, self.nx),
            clamp((p.y - self.origin.y) / self.cell, self.ny),
        )
    }

    /// Collects into `out` the indices of every point whose cell is at
    /// Chebyshev cell-distance exactly `ring` from `p`'s cell (`ring` 0 is
    /// `p`'s own cell) and still holds at least one live point. `out` is
    /// cleared first; indices come out in ascending order within each
    /// cell, cells scanned deterministically (top row, bottom row, then
    /// the side columns).
    pub fn ring_members(&self, p: Point, ring: usize, out: &mut Vec<u32>) {
        out.clear();
        let (cx, cy) = self.cell_of(p);
        let (cx, cy) = (cx as i64, cy as i64);
        let r = ring as i64;
        if r == 0 {
            self.visit_row(cy, cx, cx, out);
            return;
        }
        self.visit_row(cy - r, cx - r, cx + r, out);
        self.visit_row(cy + r, cx - r, cx + r, out);
        for iy in (cy - r + 1)..=(cy + r - 1) {
            self.visit_row(iy, cx - r, cx - r, out);
            self.visit_row(iy, cx + r, cx + r, out);
        }
    }

    /// Appends the members of every occupied cell of row `iy`, columns
    /// `x0..=x1` (clamped to the grid), walking only the set bits of the
    /// row's occupancy words.
    fn visit_row(&self, iy: i64, x0: i64, x1: i64, out: &mut Vec<u32>) {
        if iy < 0 || iy as usize >= self.ny || x1 < 0 {
            return;
        }
        let iy = iy as usize;
        let lo = x0.max(0) as usize;
        let hi = (x1 as usize).min(self.nx - 1);
        if lo > hi {
            return;
        }
        let words = &self.occupied[iy * self.words_per_row..(iy + 1) * self.words_per_row];
        let (w0, w1) = (lo / 64, hi / 64);
        for (w, &word) in words.iter().enumerate().take(w1 + 1).skip(w0) {
            let mut word = word;
            if w == w0 {
                word &= !0_u64 << (lo % 64);
            }
            if w == w1 {
                word &= !0_u64 >> (63 - hi % 64);
            }
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let c = iy * self.nx + w * 64 + bit;
                out.extend_from_slice(
                    &self.items[self.starts[c] as usize..self.starts[c + 1] as usize],
                );
            }
        }
    }

    /// The largest ring around `p`'s cell that still overlaps the grid;
    /// rings beyond it are empty forever.
    #[must_use]
    pub fn max_ring(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_of(p);
        (cx.max(self.nx - 1 - cx)).max(cy.max(self.ny - 1 - cy))
    }
}

/// The nearest-neighbor merge objective (Edahiro \[3\]): merge the two live
/// subtrees whose merging regions are geometrically closest.
///
/// This is the topology generator of the paper's buffered baseline (§5.1)
/// and the reference point for the switched-capacitance objective's
/// ablation.
#[derive(Clone, Debug)]
pub struct NearestNeighborObjective {
    /// Device assumed at the top of every edge as the tree is built
    /// (affects the electrical state seen by later merges), or `None` for
    /// a plain wire tree.
    edge_device: Option<Device>,
    /// Subtree states in struct-of-arrays form, pre-reserved for the full
    /// `2n - 1` nodes so merges never reallocate.
    arena: MergeArena,
}

impl NearestNeighborObjective {
    /// Creates the objective over `sinks`, assuming `edge_device` on every
    /// edge during construction.
    #[must_use]
    pub fn new(tech: &Technology, sinks: &[Sink], edge_device: Option<Device>) -> Self {
        let capacity = sinks.len().saturating_mul(2).saturating_sub(1);
        let mut arena = MergeArena::new(tech, capacity);
        for s in sinks {
            arena.push_leaf(s, edge_device);
        }
        Self { edge_device, arena }
    }
}

impl MergeObjective for NearestNeighborObjective {
    fn cost(&self, a: usize, b: usize) -> f64 {
        self.arena.distance(a, b)
    }

    // The cost *is* the region distance, so it is its own tightest
    // admissible bound; for a leaf (a point region), any partner at
    // Manhattan distance >= dist costs at least dist.
    fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
        self.cost(a, b)
    }

    // The bound is the region distance itself, so the batched kernel is
    // exactly the arena's columnar distance sweep.
    fn bound_batch(&self, center: usize, candidates: &[u32], out: &mut [f64]) {
        self.arena.distance_batch(center, candidates, out);
    }

    fn cost_lower_bound_at_distance(&self, _node: usize, dist: f64) -> f64 {
        dist
    }

    fn location(&self, node: usize) -> Point {
        self.arena.center(node)
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
        debug_assert_eq!(k, self.arena.len());
        self.arena.merge_push(a, b, self.edge_device)?;
        Ok(())
    }
}

/// Builds a clock-tree [`Topology`] with the nearest-neighbor heuristic.
///
/// `edge_device` is the device assumed at the top of every edge *during
/// construction* (it changes subtree caps and hence later merge
/// geometry); pass the technology's buffer for the buffered baseline.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `sinks` is empty.
pub fn nearest_neighbor_topology(
    tech: &Technology,
    sinks: &[Sink],
    edge_device: Option<Device>,
) -> Result<Topology, CtsError> {
    let mut objective = NearestNeighborObjective::new(tech, sinks, edge_device);
    run_greedy(sinks.len(), &mut objective)
}

/// Builds the paper's §5.1 baseline in one call: nearest-neighbor
/// topology, a buffer (half the AND-gate size) on every edge, zero-skew
/// embedding rooted toward `source`.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `sinks` is empty.
pub fn build_buffered_tree(
    tech: &Technology,
    sinks: &[Sink],
    source: Point,
) -> Result<ClockTree, CtsError> {
    let buffer = tech.buffer();
    let topology = nearest_neighbor_topology(tech, sinks, Some(buffer))?;
    let assignment = DeviceAssignment::everywhere(&topology, buffer);
    embed(&topology, sinks, tech, &assignment, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_sinks() -> Vec<Sink> {
        vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(50.0, 0.0), 0.05),
            Sink::new(Point::new(5000.0, 5000.0), 0.05),
            Sink::new(Point::new(5050.0, 5000.0), 0.05),
        ]
    }

    #[test]
    fn clusters_merge_first() {
        let tech = Technology::default();
        let topo = nearest_neighbor_topology(&tech, &clustered_sinks(), None).unwrap();
        assert_eq!(
            topo.node(4),
            crate::TopoNode::Internal { left: 0, right: 1 }
        );
        assert_eq!(
            topo.node(5),
            crate::TopoNode::Internal { left: 2, right: 3 }
        );
    }

    #[test]
    fn buffered_tree_is_zero_skew() {
        let tech = Technology::default();
        let tree =
            build_buffered_tree(&tech, &clustered_sinks(), Point::new(2500.0, 2500.0)).unwrap();
        assert!(tree.verify_skew(&tech) < 1e-6);
        // A buffer on every edge (7 nodes including the root stub).
        assert_eq!(tree.device_count(), 7);
        for (_, d) in tree.devices() {
            assert_eq!(d, tech.buffer());
        }
    }

    #[test]
    fn buffering_reduces_source_delay_on_spread_sinks() {
        // With widely spread, heavily loaded sinks, buffers decouple the
        // root from the full subtree capacitance.
        let tech = Technology::default();
        let sinks: Vec<Sink> = (0..16)
            .map(|i| {
                Sink::new(
                    Point::new(f64::from(i % 4) * 20_000.0, f64::from(i / 4) * 20_000.0),
                    0.2,
                )
            })
            .collect();
        let src = Point::new(30_000.0, 30_000.0);
        let buffered = build_buffered_tree(&tech, &sinks, src).unwrap();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let plain = embed(&topo, &sinks, &tech, &DeviceAssignment::none(&topo), src).unwrap();
        assert!(
            buffered.source_to_sink_delay(&tech) < plain.source_to_sink_delay(&tech),
            "buffered {} >= plain {}",
            buffered.source_to_sink_delay(&tech),
            plain.source_to_sink_delay(&tech)
        );
    }

    #[test]
    fn empty_sinks_error() {
        let tech = Technology::default();
        assert_eq!(
            nearest_neighbor_topology(&tech, &[], None).unwrap_err(),
            CtsError::NoSinks
        );
        assert!(build_buffered_tree(&tech, &[], Point::ORIGIN).is_err());
    }

    #[test]
    fn bucket_grid_rings_partition_all_points() {
        let points: Vec<Point> = (0..200)
            .map(|i| Point::new(f64::from(i * 131 % 1009), f64::from(i * 197 % 977)))
            .collect();
        let grid = BucketGrid::build(&points);
        let mut members = Vec::new();
        for &query in &points[..10] {
            let mut seen = vec![false; points.len()];
            for ring in 0..=grid.max_ring(query) {
                grid.ring_members(query, ring, &mut members);
                for &m in &members {
                    assert!(!seen[m as usize], "point {m} appeared in two rings");
                    seen[m as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "rings must cover every point");
        }
    }

    #[test]
    fn bucket_grid_distance_guarantee() {
        // Any point in ring r >= 1 of `query` must be farther than
        // (r - 1) * cell in Manhattan distance — the admissibility basis
        // of the pruned engine's expansion entries.
        let points: Vec<Point> = (0..150)
            .map(|i| Point::new(f64::from(i * 37 % 499), f64::from(i * 61 % 503)))
            .collect();
        let grid = BucketGrid::build(&points);
        let mut members = Vec::new();
        for &query in &points[..8] {
            for ring in 1..=grid.max_ring(query) {
                grid.ring_members(query, ring, &mut members);
                let floor = (ring - 1) as f64 * grid.cell_size();
                for &m in &members {
                    let d = query.manhattan(points[m as usize]);
                    assert!(
                        d >= floor,
                        "ring {ring}: point {m} at distance {d} < floor {floor}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_grid_handles_degenerate_point_sets() {
        // Coincident points: one bucket, ring 0 holds everything.
        let coincident = vec![Point::new(5.0, 5.0); 7];
        let grid = BucketGrid::build(&coincident);
        assert_eq!(grid.max_ring(coincident[0]), 0);
        let mut members = Vec::new();
        grid.ring_members(coincident[0], 0, &mut members);
        assert_eq!(members.len(), 7);
        // Collinear points still partition.
        let line: Vec<Point> = (0..30)
            .map(|i| Point::new(f64::from(i) * 10.0, 0.0))
            .collect();
        let grid = BucketGrid::build(&line);
        let mut count = 0;
        for ring in 0..=grid.max_ring(line[0]) {
            grid.ring_members(line[0], ring, &mut members);
            count += members.len();
        }
        assert_eq!(count, 30);
        // A single point.
        let one = BucketGrid::build(&[Point::ORIGIN]);
        assert_eq!(one.max_ring(Point::ORIGIN), 0);
    }

    /// A positive-but-tiny extent must not underflow the cell size to
    /// zero: pre-clamp, `extent / √n` on a subnormal spread rounded to
    /// `0.0`, `dimension()` divided by it and saturated the cell counts.
    /// Post-clamp the grid stays small, the cell positive, and rings
    /// still cover every point.
    #[test]
    fn bucket_grid_clamps_tiny_extents() {
        // Two x positions one subnormal ulp apart: the extent is positive,
        // but dividing it by √9 underflows to 0.0 without the clamp.
        let tiny = f64::from_bits(1);
        let points: Vec<Point> = (0..9)
            .map(|i| Point::new(if i < 5 { 0.0 } else { tiny }, 5.0))
            .collect();
        let grid = BucketGrid::build(&points);
        assert!(grid.cell_size() >= MIN_CELL, "cell {}", grid.cell_size());
        assert!(grid.max_ring(points[0]) <= 4, "grid blew up");
        let mut members = Vec::new();
        let mut count = 0;
        for ring in 0..=grid.max_ring(points[0]) {
            grid.ring_members(points[0], ring, &mut members);
            count += members.len();
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn single_sink_buffered_tree() {
        let tech = Technology::default();
        let sinks = vec![Sink::new(Point::new(3.0, 4.0), 0.02)];
        let tree = build_buffered_tree(&tech, &sinks, Point::ORIGIN).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.device_count(), 1); // source buffer on the root stub
    }
}
