use gcr_geometry::Point;
use gcr_rctree::{Device, Technology};

use crate::{
    embed, run_greedy, zero_skew_merge, ClockTree, CtsError, DeviceAssignment, MergeObjective,
    Sink, SubtreeState, Topology,
};

/// The nearest-neighbor merge objective (Edahiro \[3\]): merge the two live
/// subtrees whose merging regions are geometrically closest.
///
/// This is the topology generator of the paper's buffered baseline (§5.1)
/// and the reference point for the switched-capacitance objective's
/// ablation.
#[derive(Debug)]
pub struct NearestNeighborObjective<'a> {
    tech: &'a Technology,
    /// Device assumed at the top of every edge as the tree is built
    /// (affects the electrical state seen by later merges), or `None` for
    /// a plain wire tree.
    edge_device: Option<Device>,
    states: Vec<SubtreeState>,
}

impl<'a> NearestNeighborObjective<'a> {
    /// Creates the objective over `sinks`, assuming `edge_device` on every
    /// edge during construction.
    #[must_use]
    pub fn new(tech: &'a Technology, sinks: &[Sink], edge_device: Option<Device>) -> Self {
        Self {
            tech,
            edge_device,
            states: sinks
                .iter()
                .map(|s| SubtreeState::leaf_with_device(s, edge_device))
                .collect(),
        }
    }
}

impl MergeObjective for NearestNeighborObjective<'_> {
    fn cost(&self, a: usize, b: usize) -> f64 {
        self.states[a].distance(&self.states[b])
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) {
        debug_assert_eq!(k, self.states.len());
        let outcome = zero_skew_merge(self.tech, &self.states[a], &self.states[b]);
        self.states.push(outcome.gated_state(self.edge_device));
    }
}

/// Builds a clock-tree [`Topology`] with the nearest-neighbor heuristic.
///
/// `edge_device` is the device assumed at the top of every edge *during
/// construction* (it changes subtree caps and hence later merge
/// geometry); pass the technology's buffer for the buffered baseline.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `sinks` is empty.
pub fn nearest_neighbor_topology(
    tech: &Technology,
    sinks: &[Sink],
    edge_device: Option<Device>,
) -> Result<Topology, CtsError> {
    let mut objective = NearestNeighborObjective::new(tech, sinks, edge_device);
    run_greedy(sinks.len(), &mut objective)
}

/// Builds the paper's §5.1 baseline in one call: nearest-neighbor
/// topology, a buffer (half the AND-gate size) on every edge, zero-skew
/// embedding rooted toward `source`.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `sinks` is empty.
pub fn build_buffered_tree(
    tech: &Technology,
    sinks: &[Sink],
    source: Point,
) -> Result<ClockTree, CtsError> {
    let buffer = tech.buffer();
    let topology = nearest_neighbor_topology(tech, sinks, Some(buffer))?;
    let assignment = DeviceAssignment::everywhere(&topology, buffer);
    embed(&topology, sinks, tech, &assignment, source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_sinks() -> Vec<Sink> {
        vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(50.0, 0.0), 0.05),
            Sink::new(Point::new(5000.0, 5000.0), 0.05),
            Sink::new(Point::new(5050.0, 5000.0), 0.05),
        ]
    }

    #[test]
    fn clusters_merge_first() {
        let tech = Technology::default();
        let topo = nearest_neighbor_topology(&tech, &clustered_sinks(), None).unwrap();
        assert_eq!(
            topo.node(4),
            crate::TopoNode::Internal { left: 0, right: 1 }
        );
        assert_eq!(
            topo.node(5),
            crate::TopoNode::Internal { left: 2, right: 3 }
        );
    }

    #[test]
    fn buffered_tree_is_zero_skew() {
        let tech = Technology::default();
        let tree =
            build_buffered_tree(&tech, &clustered_sinks(), Point::new(2500.0, 2500.0)).unwrap();
        assert!(tree.verify_skew(&tech) < 1e-6);
        // A buffer on every edge (7 nodes including the root stub).
        assert_eq!(tree.device_count(), 7);
        for (_, d) in tree.devices() {
            assert_eq!(d, tech.buffer());
        }
    }

    #[test]
    fn buffering_reduces_source_delay_on_spread_sinks() {
        // With widely spread, heavily loaded sinks, buffers decouple the
        // root from the full subtree capacitance.
        let tech = Technology::default();
        let sinks: Vec<Sink> = (0..16)
            .map(|i| {
                Sink::new(
                    Point::new(f64::from(i % 4) * 20_000.0, f64::from(i / 4) * 20_000.0),
                    0.2,
                )
            })
            .collect();
        let src = Point::new(30_000.0, 30_000.0);
        let buffered = build_buffered_tree(&tech, &sinks, src).unwrap();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let plain = embed(&topo, &sinks, &tech, &DeviceAssignment::none(&topo), src).unwrap();
        assert!(
            buffered.source_to_sink_delay(&tech) < plain.source_to_sink_delay(&tech),
            "buffered {} >= plain {}",
            buffered.source_to_sink_delay(&tech),
            plain.source_to_sink_delay(&tech)
        );
    }

    #[test]
    fn empty_sinks_error() {
        let tech = Technology::default();
        assert_eq!(
            nearest_neighbor_topology(&tech, &[], None).unwrap_err(),
            CtsError::NoSinks
        );
        assert!(build_buffered_tree(&tech, &[], Point::ORIGIN).is_err());
    }

    #[test]
    fn single_sink_buffered_tree() {
        let tech = Technology::default();
        let sinks = vec![Sink::new(Point::new(3.0, 4.0), 0.02)];
        let tree = build_buffered_tree(&tech, &sinks, Point::ORIGIN).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.device_count(), 1); // source buffer on the root stub
    }
}
