use gcr_geometry::{Point, Trr, GEOM_EPS};
use gcr_rctree::{Device, Technology};

use crate::{CtsError, Sink};

/// The electrical summary of a subtree during bottom-up construction.
///
/// `delay` and `cap` describe the network *below* the subtree root `v_i`;
/// `edge_device` is the masking gate or buffer that will sit at the **top
/// of the edge `e_i`** connecting `v_i` to its future parent — the paper's
/// "gate on edge `e_i`", controlled by `EN_i`. The gate decouples the whole
/// edge + subtree from the parent: the parent sees only the gate input
/// capacitance, which is exactly how "inserting gates reduces the subtree
/// capacitance in the Elmore delay computation" (§4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubtreeState {
    /// Merging region: every point at which the subtree root can be placed.
    pub ms: Trr,
    /// Elmore delay (ps) from `v_i` to each sink of the subtree (equal for
    /// all sinks — the zero-skew invariant).
    pub delay: f64,
    /// Downstream capacitance (pF) at `v_i` (wires and loads below it).
    pub cap: f64,
    /// Gate or buffer at the top of the edge that will feed `v_i`.
    pub edge_device: Option<Device>,
}

impl SubtreeState {
    /// The state of a single sink with no gate on its edge.
    #[must_use]
    pub fn leaf(sink: &Sink) -> Self {
        Self::leaf_with_device(sink, None)
    }

    /// The state of a single sink whose feeding edge carries `device`.
    #[must_use]
    pub fn leaf_with_device(sink: &Sink, device: Option<Device>) -> Self {
        Self {
            ms: Trr::point(sink.location()),
            delay: 0.0,
            cap: sink.cap(),
            edge_device: device,
        }
    }

    /// Distance (layout units) between the merging regions of two states.
    #[must_use]
    pub fn distance(&self, other: &SubtreeState) -> f64 {
        self.ms.distance(&other.ms)
    }

    /// Capacitance this subtree presents to its parent when fed through an
    /// edge of electrical length `e`: the edge-gate input capacitance if
    /// the edge is gated, the full wire + subtree capacitance otherwise.
    #[must_use]
    pub fn presented_cap(&self, tech: &Technology, e: f64) -> f64 {
        match &self.edge_device {
            Some(d) => d.input_cap(),
            None => tech.unit_cap() * e + self.cap,
        }
    }

    /// Elmore delay from the parent's merge point down to this subtree's
    /// sinks through an edge of electrical length `e` (device stage
    /// included when the edge is gated).
    #[must_use]
    pub fn delay_through_edge(&self, tech: &Technology, e: f64) -> f64 {
        let (t0, alpha, beta) = self.delay_coefficients(tech);
        t0 + alpha * e + beta * e * e
    }

    /// Coefficients `(t0, α, β)` of the quadratic delay polynomial
    /// `D(e) = t0 + α·e + β·e²` for this subtree fed through an edge of
    /// length `e`:
    ///
    /// * ungated: `t0 = t`, `α = r·C`, `β = r·c/2`;
    /// * gated: `t0 = t + d_intrinsic + R_out·C`, `α = r·C + R_out·c`,
    ///   `β = r·c/2` (the gate's output resistance also drives the edge
    ///   wire capacitance).
    #[must_use]
    pub fn delay_coefficients(&self, tech: &Technology) -> (f64, f64, f64) {
        let r = tech.unit_res();
        let c = tech.unit_cap();
        let beta = r * c / 2.0;
        match &self.edge_device {
            Some(d) => (
                self.delay + d.intrinsic_delay() + d.output_res() * self.cap,
                r * self.cap + d.output_res() * c,
                beta,
            ),
            None => (self.delay, r * self.cap, beta),
        }
    }
}

/// The result of one zero-skew merge: the tap wire lengths to each child,
/// the merging region of the new node, and the electrical state at the
/// merge point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeOutcome {
    /// Electrical wire length (layout units) from the merge point to the
    /// first child. May exceed the geometric distance (wire snaking).
    pub ea: f64,
    /// Electrical wire length to the second child.
    pub eb: f64,
    /// Merging region of the new node.
    pub ms: Trr,
    /// Elmore delay (ps) from the merge point to every sink below it
    /// (both children's edge gates, if any, included).
    pub delay: f64,
    /// Capacitance (pF) at the merge point: each child contributes its
    /// gate input capacitance when its edge is gated, or its full
    /// wire + subtree capacitance otherwise.
    pub cap: f64,
}

impl MergeOutcome {
    /// The state of the merged node when its own (future) parent edge is
    /// not gated.
    #[must_use]
    pub fn unbuffered_state(&self) -> SubtreeState {
        self.gated_state(None)
    }

    /// The state of the merged node when `device` will sit at the top of
    /// its parent edge.
    #[must_use]
    pub fn gated_state(&self, device: Option<Device>) -> SubtreeState {
        SubtreeState {
            ms: self.ms,
            delay: self.delay,
            cap: self.cap,
            edge_device: device,
        }
    }
}

/// Computes the exact zero-skew merge of two subtrees under the Elmore
/// model, with per-edge masking gates (Tsay's formulation extended with
/// edge-top devices).
///
/// With `d = dist(ms_a, ms_b)` and per-child delay polynomials
/// `D_i(e) = t_i' + α_i·e + β·e²` (see
/// [`SubtreeState::delay_coefficients`]), the balanced split solves
/// `D_a(x) = D_b(d − x)`:
///
/// ```text
/// x = (t_b' − t_a' + α_b·d + β·d²) / (α_a + α_b + 2·β·d)
/// ```
///
/// If `x ∉ [0, d]`, the slower side is tapped directly (`e = 0`) and the
/// other wire is elongated (snaked) to the positive root of its delay
/// polynomial.
///
/// # Errors
///
/// Returns [`CtsError::MergeRegionDisjoint`] when the merging regions
/// cannot be intersected even after snaking — which happens exactly when
/// the subtree states carry non-finite delays, capacitances, or
/// coordinates. Finite inputs always succeed: the tap radii sum to at
/// least the region distance by construction.
pub fn zero_skew_merge(
    tech: &Technology,
    a: &SubtreeState,
    b: &SubtreeState,
) -> Result<MergeOutcome, CtsError> {
    let d = a.ms.distance(&b.ms);
    let (ta, alpha_a, beta) = a.delay_coefficients(tech);
    let (tb, alpha_b, _) = b.delay_coefficients(tech);

    let (ea, eb) = balanced_tap_split(d, ta, alpha_a, tb, alpha_b, beta);
    let ms = merge_region(&a.ms, &b.ms, d, ea, eb)?;

    // Delay measured down either side is identical in exact arithmetic;
    // average the two evaluations to symmetrize rounding.
    let da = a.delay_through_edge(tech, ea);
    let db = b.delay_through_edge(tech, eb);
    let delay = 0.5 * (da + db);
    let cap = a.presented_cap(tech, ea) + b.presented_cap(tech, eb);

    Ok(MergeOutcome {
        ea,
        eb,
        ms,
        delay,
        cap,
    })
}

/// The zero-skew tap split `(e_a, e_b)` from the per-child delay
/// polynomials: solves `D_a(x) = D_b(d − x)` and snakes the faster side
/// when the balance point falls outside `[0, d]`. Shared — with identical
/// operation order — by [`zero_skew_merge`] and the coefficient-caching
/// [`MergeArena`](crate::MergeArena) hot path, so both produce
/// bit-identical geometry.
pub(crate) fn balanced_tap_split(
    d: f64,
    ta: f64,
    alpha_a: f64,
    tb: f64,
    alpha_b: f64,
    beta: f64,
) -> (f64, f64) {
    let denom = alpha_a + alpha_b + 2.0 * beta * d;
    let x = if denom > 0.0 {
        (tb - ta + alpha_b * d + beta * d * d) / denom
    } else {
        0.0
    };

    if x < 0.0 {
        // Subtree a is already slower: tap it directly, snake the wire to b.
        (0.0, elongation(alpha_b, beta, ta - tb).max(d))
    } else if x > d {
        (elongation(alpha_a, beta, tb - ta).max(d), 0.0)
    } else {
        (x, d - x)
    }
}

/// Merge region of two subtrees tapped with wires of electrical length
/// `ea` / `eb`: the points reachable with exactly that much wire from each
/// child region. The radii sum to `>= d` in exact arithmetic; f64 rounding
/// is absorbed with a magnitude-scaled slack. Non-finite radii would trip
/// `Trr::expanded`'s assertion, so they are rejected up front.
pub(crate) fn merge_region(
    a_ms: &Trr,
    b_ms: &Trr,
    d: f64,
    ea: f64,
    eb: f64,
) -> Result<Trr, CtsError> {
    if !(d.is_finite() && ea.is_finite() && eb.is_finite() && ea >= 0.0 && eb >= 0.0) {
        return Err(CtsError::MergeRegionDisjoint {
            detail: format!(
                "non-finite tap geometry: d={d}, ea={ea}, eb={eb} (a at {}, b at {})",
                a_ms.center(),
                b_ms.center()
            ),
        });
    }
    let scale = 1.0
        + d
        + ea
        + eb
        + a_ms.center().manhattan(Point::ORIGIN)
        + b_ms.center().manhattan(Point::ORIGIN);
    let ta_r = a_ms.expanded(ea);
    let tb_r = b_ms.expanded(eb);
    ta_r.intersection_with_slack(&tb_r, GEOM_EPS * scale)
        .or_else(|| ta_r.intersection_with_slack(&tb_r, 1e-3 * scale))
        .ok_or_else(|| CtsError::MergeRegionDisjoint {
            detail: format!(
                "d={d}, ea={ea}, eb={eb} (a at {}, b at {})",
                a_ms.center(),
                b_ms.center()
            ),
        })
}

/// Positive root of `β·e² + α·e = dt` — the snaked wire length that adds
/// `dt` of Elmore delay through an edge with delay coefficients `(α, β)`.
///
/// Degenerate technologies collapse the polynomial: with zero unit
/// resistance or capacitance `β = 0` and the root is the linear `dt/α`;
/// with `α = 0` as well, no wire length changes the delay and the snake
/// stays at 0 rather than poisoning the geometry with NaN.
fn elongation(alpha: f64, beta: f64, dt: f64) -> f64 {
    if dt <= 0.0 {
        return 0.0;
    }
    if beta <= 0.0 {
        if alpha <= 0.0 {
            return 0.0;
        }
        return dt / alpha;
    }
    ((alpha * alpha + 4.0 * beta * dt).sqrt() - alpha) / (2.0 * beta)
}

/// Allowed device-size range for delay balancing.
///
/// "These gates also serve as buffers and can be sized to adjust the phase
/// delay of the clock signal" (§1): before resorting to wire snaking, the
/// embedder may scale an edge device within `[min, max]` of its nominal
/// size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizingLimits {
    /// Smallest allowed scale factor (≤ 1).
    pub min: f64,
    /// Largest allowed scale factor (≥ 1).
    pub max: f64,
}

impl Default for SizingLimits {
    /// Quarter-size to 8× nominal — the drive range of a small standard
    /// cell family.
    fn default() -> Self {
        Self {
            min: 0.25,
            max: 8.0,
        }
    }
}

impl SizingLimits {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min <= 1 <= max` and both are finite.
    #[must_use]
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min > 0.0 && min <= 1.0 && max >= 1.0,
            "sizing limits must satisfy 0 < min <= 1 <= max, got [{min}, {max}]"
        );
        Self { min, max }
    }
}

/// Resizes the edge devices of two subtrees about to merge so that the
/// zero-skew balance point falls inside the connecting segment, avoiding
/// wire snaking where gate sizing suffices (§1's "sized to adjust the
/// phase delay").
///
/// The slow side's gate is upsized (lower output resistance → faster) and,
/// if that is not enough, the fast side's gate is downsized (slower, and
/// cheaper). Residual imbalance is left for [`zero_skew_merge`]'s snaking.
/// Returns `true` when any device was resized.
pub fn balance_devices(
    tech: &Technology,
    a: &mut SubtreeState,
    b: &mut SubtreeState,
    limits: &SizingLimits,
) -> bool {
    let mut changed = false;
    // Up to two passes: fixing one side can overshoot into the other
    // regime when both sides carry devices.
    for _ in 0..2 {
        let d = a.ms.distance(&b.ms);
        let (ta, alpha_a, beta) = a.delay_coefficients(tech);
        let (tb, alpha_b, _) = b.delay_coefficients(tech);
        let denom = alpha_a + alpha_b + 2.0 * beta * d;
        if denom <= 0.0 {
            return changed;
        }
        let x = (tb - ta + alpha_b * d + beta * d * d) / denom;
        if x < 0.0 {
            changed |= fix_slow_side(tech, a, b, d, limits);
        } else if x > d {
            changed |= fix_slow_side(tech, b, a, d, limits);
        } else {
            break;
        }
        if !changed {
            break;
        }
    }
    changed
}

/// `slow` is the subtree whose delay exceeds what the other side can match
/// across distance `d`. Upsize `slow`'s gate toward the balance, then
/// downsize `fast`'s gate if needed.
fn fix_slow_side(
    tech: &Technology,
    slow: &mut SubtreeState,
    fast: &mut SubtreeState,
    d: f64,
    limits: &SizingLimits,
) -> bool {
    let mut changed = false;

    if let Some(dev) = slow.edge_device {
        // Want t_slow + intrinsic + R/f·C == fast_at_d  =>  f = R·C / Δ.
        let fast_at_d = fast.delay_through_edge(tech, d);
        let delta = fast_at_d - slow.delay - dev.intrinsic_delay();
        if delta > 0.0 {
            let needed = dev.output_res() * slow.cap / delta;
            if needed > 1.0 {
                let f = needed.min(limits.max);
                slow.edge_device = Some(dev.scaled(f));
                changed = true;
            }
        }
    }

    // Recheck from the *current* states — the upsizing above changed
    // `slow`'s delay polynomial, so neither side's delay may be carried
    // over from before it. If the slow side still cannot be caught, slow
    // the fast side down by shrinking its gate.
    let slow_at_0 = slow.delay_through_edge(tech, 0.0);
    if slow_at_0 > fast.delay_through_edge(tech, d) {
        if let Some(dev) = fast.edge_device {
            let r = tech.unit_res();
            let c = tech.unit_cap();
            let wire_delay = r * d * (c * d / 2.0 + fast.cap);
            let load = c * d + fast.cap;
            if load > 0.0 {
                let r_target = (slow_at_0 - fast.delay - dev.intrinsic_delay() - wire_delay) / load;
                if r_target > dev.output_res() {
                    let f = (dev.output_res() / r_target).max(limits.min);
                    if f < 1.0 {
                        fast.edge_device = Some(dev.scaled(f));
                        changed = true;
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_geometry::Point;

    fn tech() -> Technology {
        Technology::default()
    }

    fn leaf(x: f64, y: f64, cap: f64) -> SubtreeState {
        SubtreeState::leaf(&Sink::new(Point::new(x, y), cap))
    }

    #[test]
    fn symmetric_merge_splits_evenly() {
        let t = tech();
        let a = leaf(0.0, 0.0, 0.05);
        let b = leaf(1000.0, 0.0, 0.05);
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        assert!((m.ea - 500.0).abs() < 1e-9, "ea = {}", m.ea);
        assert!((m.eb - 500.0).abs() < 1e-9);
        assert!((m.ea + m.eb - 1000.0).abs() < 1e-9);
        // Merge region is equidistant from both sinks.
        let p = m.ms.center();
        assert!((p.manhattan(Point::new(0.0, 0.0)) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn heavier_side_gets_shorter_wire() {
        let t = tech();
        let light = leaf(0.0, 0.0, 0.01);
        let heavy = leaf(1000.0, 0.0, 0.50);
        let m = zero_skew_merge(&t, &light, &heavy).unwrap();
        // ea is the wire toward `light`; balancing pushes the tap point
        // toward the heavy side.
        assert!(m.ea > m.eb, "ea {} <= eb {}", m.ea, m.eb);
        assert!((m.ea + m.eb - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn gated_edges_decouple_caps() {
        let t = tech();
        let gate = t.and_gate();
        let a = SubtreeState::leaf_with_device(&Sink::new(Point::new(0.0, 0.0), 0.4), Some(gate));
        let b = SubtreeState::leaf_with_device(&Sink::new(Point::new(800.0, 0.0), 0.4), Some(gate));
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        // Each child presents only the gate input capacitance.
        assert!((m.cap - 2.0 * gate.input_cap()).abs() < 1e-12);
        // Gate stage delay is included.
        assert!(m.delay > gate.intrinsic_delay());
    }

    #[test]
    fn slower_subtree_gets_tapped_directly_with_snaking() {
        let t = tech();
        // Subtree a has a huge accumulated delay.
        let mut a = leaf(0.0, 0.0, 0.05);
        a.delay = 1.0e4;
        let b = leaf(100.0, 0.0, 0.05);
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        assert_eq!(m.ea, 0.0);
        assert!(m.eb > 100.0, "wire to b must be snaked, got {}", m.eb);
        // Delay balance holds.
        let db = b.delay_through_edge(&t, m.eb);
        assert!((db - a.delay).abs() / a.delay < 1e-9);
    }

    #[test]
    fn merge_delay_is_balanced_with_and_without_gates() {
        let t = tech();
        for gated in [false, true] {
            let dev = gated.then(|| t.and_gate());
            let a = SubtreeState::leaf_with_device(&Sink::new(Point::new(0.0, 0.0), 0.02), dev);
            let b = SubtreeState::leaf_with_device(&Sink::new(Point::new(750.0, 330.0), 0.11), dev);
            let m = zero_skew_merge(&t, &a, &b).unwrap();
            let da = a.delay_through_edge(&t, m.ea);
            let db = b.delay_through_edge(&t, m.eb);
            assert!(
                (da - db).abs() < 1e-9 * da.max(1.0),
                "gated={gated}: {da} vs {db}"
            );
            assert!((m.delay - da).abs() < 1e-9 * da.max(1.0));
        }
    }

    #[test]
    fn ungated_cap_accounts_wires_and_children() {
        let t = tech();
        let a = leaf(0.0, 0.0, 0.02);
        let b = leaf(400.0, 0.0, 0.03);
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        let expect = t.unit_cap() * (m.ea + m.eb) + 0.05;
        assert!((m.cap - expect).abs() < 1e-12);
    }

    #[test]
    fn gated_state_carries_device() {
        let t = tech();
        let a = leaf(0.0, 0.0, 0.05);
        let b = leaf(600.0, 0.0, 0.05);
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        let gate = t.and_gate();
        let s = m.gated_state(Some(gate));
        assert_eq!(s.edge_device, Some(gate));
        assert_eq!(s.cap, m.cap);
        assert_eq!(s.delay, m.delay);
        let u = m.unbuffered_state();
        assert_eq!(u.edge_device, None);
    }

    #[test]
    fn presented_cap_and_delay_through_edge() {
        let t = tech();
        let gate = t.and_gate();
        let plain = leaf(0.0, 0.0, 0.1);
        let gated = SubtreeState::leaf_with_device(&Sink::new(Point::ORIGIN, 0.1), Some(gate));
        // Plain: wire + subtree; gated: only the gate input cap.
        assert!((plain.presented_cap(&t, 1000.0) - (t.unit_cap() * 1000.0 + 0.1)).abs() < 1e-12);
        assert_eq!(gated.presented_cap(&t, 1000.0), gate.input_cap());
        // Delay: the gated edge includes the device stage.
        let dp = plain.delay_through_edge(&t, 1000.0);
        let dg = gated.delay_through_edge(&t, 1000.0);
        let stage = gate.intrinsic_delay() + gate.output_res() * (t.unit_cap() * 1000.0 + 0.1);
        assert!((dg - (dp + stage)).abs() < 1e-9);
    }

    #[test]
    fn coincident_points_merge_to_point() {
        let t = tech();
        let a = leaf(5.0, 5.0, 0.05);
        let b = leaf(5.0, 5.0, 0.05);
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        assert_eq!(m.ea, 0.0);
        assert_eq!(m.eb, 0.0);
        assert!(m.ms.is_point());
    }

    #[test]
    fn coincident_points_unequal_delay_snake() {
        let t = tech();
        let mut a = leaf(5.0, 5.0, 0.05);
        a.delay = 100.0;
        let b = leaf(5.0, 5.0, 0.05);
        let m = zero_skew_merge(&t, &a, &b).unwrap();
        assert_eq!(m.ea, 0.0);
        assert!(m.eb > 0.0, "must snake to equalize, got {}", m.eb);
        let db = b.delay_through_edge(&t, m.eb);
        assert!((db - 100.0).abs() < 1e-9 * 100.0);
    }

    #[test]
    fn elongation_zero_for_nonpositive_dt() {
        assert_eq!(elongation(0.01, 1e-6, 0.0), 0.0);
        assert_eq!(elongation(0.01, 1e-6, -5.0), 0.0);
    }

    #[test]
    fn elongation_solves_quadratic() {
        let (alpha, beta) = (0.0045, 3.75e-7);
        let dt = 123.0;
        let e = elongation(alpha, beta, dt);
        let check = beta * e * e + alpha * e;
        assert!((check - dt).abs() < 1e-9 * dt);
    }

    /// Regression: β = 0 (zero unit R or C) used to divide by zero and
    /// return NaN; the fallback is the linear root `dt/α`, and 0 when the
    /// polynomial is entirely flat (α = 0 too).
    #[test]
    fn elongation_degenerate_coefficients_are_finite() {
        let e = elongation(0.0045, 0.0, 90.0);
        assert!((e - 90.0 / 0.0045).abs() < 1e-9, "linear fallback, got {e}");
        assert_eq!(elongation(0.0, 0.0, 90.0), 0.0);
        assert_eq!(elongation(0.0045, 0.0, -1.0), 0.0);
        // And the quadratic path still dominates when β > 0.
        assert!(elongation(0.0045, 1e-7, 90.0).is_finite());
    }

    /// Regression: non-finite subtree state used to panic inside
    /// `Trr::expanded`; it must surface as `MergeRegionDisjoint`.
    #[test]
    fn non_finite_inputs_yield_disjoint_error() {
        let t = tech();
        let mut a = leaf(0.0, 0.0, 0.05);
        a.delay = f64::NAN;
        let b = leaf(1000.0, 0.0, 0.05);
        let err = zero_skew_merge(&t, &a, &b).unwrap_err();
        assert!(matches!(err, CtsError::MergeRegionDisjoint { .. }), "{err}");

        // An infinite delay demands an infinite snake on the other wire.
        let mut c = leaf(0.0, 0.0, 0.05);
        c.delay = f64::INFINITY;
        let err = zero_skew_merge(&t, &c, &b).unwrap_err();
        assert!(matches!(err, CtsError::MergeRegionDisjoint { .. }), "{err}");
    }

    /// Regression for `fix_slow_side`: with devices on **both** sides the
    /// fast gate's downsizing must be judged against the slow side's
    /// *post-upsizing* delay, never a stale capture.
    #[test]
    fn balance_devices_with_devices_on_both_sides() {
        let t = tech();
        let gate = t.and_gate();
        let d = 2_000.0;
        let mut a =
            SubtreeState::leaf_with_device(&Sink::new(Point::new(0.0, 0.0), 0.9), Some(gate));
        a.delay = 150.0;
        let mut b =
            SubtreeState::leaf_with_device(&Sink::new(Point::new(d, 0.0), 0.02), Some(gate));
        let limits = SizingLimits::default();
        let snake_before = {
            let m = zero_skew_merge(&t, &a, &b).unwrap();
            m.ea + m.eb - d
        };
        assert!(snake_before > 0.0, "test premise: unsized merge must snake");

        let changed = balance_devices(&t, &mut a, &mut b, &limits);
        assert!(changed, "sizing must engage when one side lags");
        let fa = a.edge_device.unwrap().input_cap() / gate.input_cap();
        let fb = b.edge_device.unwrap().input_cap() / gate.input_cap();
        assert!(
            fa > 1.0 && fa <= limits.max + 1e-9,
            "slow side must be upsized within limits, got {fa}"
        );
        assert!(
            (limits.min - 1e-9..=1.0 + 1e-9).contains(&fb),
            "fast side may only shrink within limits, got {fb}"
        );

        let m = zero_skew_merge(&t, &a, &b).unwrap();
        let snake_after = m.ea + m.eb - d;
        assert!(
            snake_after < snake_before - 1e-9,
            "sizing must reduce snaking: before {snake_before}, after {snake_after}"
        );
        // The merge stays exactly delay-balanced after sizing.
        let da = a.delay_through_edge(&t, m.ea);
        let db = b.delay_through_edge(&t, m.eb);
        assert!((da - db).abs() < 1e-9 * da.max(1.0));
    }
}
