use std::fmt;

use gcr_geometry::Point;

/// A clock sink: the clock pin of one module, at a fixed location with a
/// fixed load capacitance.
///
/// In the paper "the sinks correspond to the locations of modules"; each
/// sink index doubles as the module index used by the activity model.
///
/// ```
/// use gcr_cts::Sink;
/// use gcr_geometry::Point;
///
/// let s = Sink::new(Point::new(10.0, 20.0), 0.05);
/// assert_eq!(s.cap(), 0.05);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sink {
    location: Point,
    cap: f64,
}

impl Sink {
    /// Creates a sink at `location` with load capacitance `cap` (pF).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or non-finite.
    #[must_use]
    pub fn new(location: Point, cap: f64) -> Self {
        assert!(
            cap.is_finite() && cap >= 0.0,
            "sink load must be finite and >= 0, got {cap}"
        );
        Self { location, cap }
    }

    /// The sink's layout location.
    #[must_use]
    pub fn location(&self) -> Point {
        self.location
    }

    /// The sink's load capacitance (pF).
    #[must_use]
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

impl fmt::Display for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sink@{} {}pF", self.location, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Sink::new(Point::new(1.0, 2.0), 0.1);
        assert_eq!(s.location(), Point::new(1.0, 2.0));
        assert_eq!(s.cap(), 0.1);
    }

    #[test]
    #[should_panic(expected = "sink load")]
    fn negative_cap_rejected() {
        let _ = Sink::new(Point::ORIGIN, -0.1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", Sink::new(Point::ORIGIN, 0.0)).contains("pF"));
    }
}
